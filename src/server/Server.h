//===----------------------------------------------------------------------===//
///
/// \file
/// tccd — the compile-server daemon.
///
/// One process holds a driver::CompilerSession (parsed catalogs, the
/// shared analysis pool), a HotCache of optimized function bodies, and a
/// support/WorkerPool TaskQueue admitting requests.  Clients connect
/// over a local Unix socket and speak the length-prefixed JSON protocol
/// (Protocol.h); each request is compiled through exactly the same
/// driver::runToolInvocation() a direct `tcc` run uses, into string
/// sinks, so responses are byte-identical to local compilation.
///
/// Failure model (see DESIGN.md "Compile server"):
///  - A crashing pass is contained per request by the PR 4 pass sandbox,
///    exactly as in `tcc`; the (pass, function) pair quarantines and the
///    response still carries correct output.
///  - A request that dies outside the sandbox (e.g. an injected
///    `server:` site fault) is contained by the handler: that client
///    gets an exit-2 error response, every other in-flight request is
///    untouched, and the single-flight hot cache promotes a waiter if
///    the dead request owned a computation.
///  - A client disconnect mid-compile wastes at most one compile; the
///    result still publishes to the hot cache for the next request.
///  - kill -9 loses only in-memory state: the flock-guarded manifest
///    write-back keeps `.tcc-cache` consistent, so a restarted daemon
///    recovers from disk.
///
/// Cache ownership: the daemon's manifest is the daemon's.  A request's
/// `-cache=` flag is overridden with the daemon's own CacheFile — two
/// compilers racing on one client-named manifest file is exactly the
/// interleaving the server exists to remove.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_SERVER_H
#define TCC_SERVER_SERVER_H

#include "driver/Compiler.h"
#include "server/HotCache.h"
#include "server/Protocol.h"
#include "support/WorkerPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace tcc {
namespace server {

struct ServerOptions {
  std::string SocketPath = ".tccd.sock";
  /// The daemon-owned manifest; every request compiles against it.
  /// Empty disables persistence (hot cache only).
  std::string CacheFile = ".tcc-cache";
  unsigned Workers = 0; ///< 0 = hardware concurrency.
  bool Verbose = false; ///< Per-request log lines on stderr.
  /// LRU cap on hot-cache entries (-hot-cache-max=; 0 = unbounded).
  size_t HotCacheMax = HotCache::DefaultMaxEntries;
};

struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Errors = 0;  ///< Responses with nonzero exit.
  uint64_t Faulted = 0; ///< Requests contained by the handler guard.
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds and listens on the socket.  A stale socket file (left by a
  /// kill -9) is detected by probing it: if nothing accepts, the file is
  /// unlinked and the address rebound; if a live daemon answers, start
  /// fails with a diagnostic.  Also starts the worker pool.
  bool start(DiagnosticEngine &Diags);

  /// Blocking accept loop; returns after stop().  Connections are
  /// admitted through the worker pool, so at most Workers requests
  /// compile concurrently and the rest queue.
  void run();

  /// Unblocks run().  Async-signal-safe: callable from a SIGINT/SIGTERM
  /// handler.
  void stop();

  /// Compiles one request exactly as `tcc` would, rendering stdout /
  /// stderr into the response.  Public for tests and single-process
  /// benchmarking — no socket required.
  Response handleRequest(const Request &Req);

  const ServerOptions &options() const { return Opts; }
  ServerStats stats() const;
  driver::CompilerSession &session() { return Session; }
  HotCache &hotCache() { return Hot; }

private:
  void handleConnection(int Fd);

  ServerOptions Opts;
  driver::CompilerSession Session;
  HotCache Hot;
  std::unique_ptr<TaskQueue> Queue;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  mutable std::mutex StatsMutex;
  ServerStats S;
};

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_SERVER_H
