//===----------------------------------------------------------------------===//
///
/// \file
/// tccd — the compile-server daemon.
///
/// One process holds a driver::CompilerSession (parsed catalogs, the
/// shared analysis pool), a HotCache of optimized function bodies, and a
/// support/WorkerPool TaskQueue admitting requests.  Clients connect
/// over a local Unix socket and speak the length-prefixed JSON protocol
/// (Protocol.h); each request is compiled through exactly the same
/// driver::runToolInvocation() a direct `tcc` run uses, into string
/// sinks, so responses are byte-identical to local compilation.
///
/// Failure model (see DESIGN.md "Compile server"):
///  - A crashing pass is contained per request by the PR 4 pass sandbox,
///    exactly as in `tcc`; the (pass, function) pair quarantines and the
///    response still carries correct output.
///  - A request that dies outside the sandbox (e.g. an injected
///    `server:` site fault) is contained by the handler: that client
///    gets an exit-2 error response, every other in-flight request is
///    untouched, and the single-flight hot cache promotes a waiter if
///    the dead request owned a computation.
///  - A request that *wedges* (neither crashes nor finishes) is killed
///    by a per-request deadline watchdog: its client gets an exit-2
///    error response after RequestDeadlineMs, its worker thread is
///    abandoned to finish in the background (joined at shutdown), and —
///    as with a crash — hot-cache abandonment promotes any waiter.
///  - Overload is shed at admission: when the queue holds MaxQueue
///    pending connections, new ones are answered with a complete `busy`
///    response (exit BusyExit + a retry-after-ms hint) before their
///    request is even read, so a saturated daemon degrades into fast
///    explicit refusals instead of unbounded latency.
///  - SIGTERM drains gracefully: the listener closes, idle connections
///    are dropped, in-flight requests finish (or deadline out), the
///    manifest flushes, and the daemon exits 0.  SIGINT remains the
///    fast stop.
///  - A client disconnect mid-compile wastes at most one compile; the
///    result still publishes to the hot cache for the next request.
///  - kill -9 loses only in-memory state: the flock-guarded manifest
///    write-back keeps `.tcc-cache` consistent, so a restarted daemon
///    recovers from disk.
///
/// Cache ownership: the daemon's manifest is the daemon's.  A request's
/// `-cache=` flag is overridden with the daemon's own CacheFile — two
/// compilers racing on one client-named manifest file is exactly the
/// interleaving the server exists to remove.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_SERVER_H
#define TCC_SERVER_SERVER_H

#include "driver/Compiler.h"
#include "server/HotCache.h"
#include "server/Protocol.h"
#include "support/FaultInjection.h"
#include "support/WorkerPool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tcc {
namespace server {

struct ServerOptions {
  std::string SocketPath = ".tccd.sock";
  /// The daemon-owned manifest; every request compiles against it.
  /// Empty disables persistence (hot cache only).
  std::string CacheFile = ".tcc-cache";
  unsigned Workers = 0; ///< 0 = hardware concurrency.
  bool Verbose = false; ///< Per-request log lines on stderr.
  /// LRU cap on hot-cache entries (-hot-cache-max=; 0 = unbounded).
  size_t HotCacheMax = HotCache::DefaultMaxEntries;
  /// Admission bound: connections accepted while this many are already
  /// queued get a `busy` response instead (-max-queue=; 0 = unbounded).
  size_t MaxQueue = 256;
  /// Wall-clock deadline per request, after which the watchdog turns it
  /// into an exit-2 error response (-request-deadline-ms=; 0 = off).
  int RequestDeadlineMs = 30000;
  /// Daemon-side fault specs (-fault-inject=).  The `server-accept`
  /// site fires at admission, before any request is read — the one
  /// place request-carried specs cannot reach (unit = the 1-based
  /// connection ordinal, `*` matches any).
  std::string FaultInject;
};

struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Errors = 0;  ///< Responses with nonzero exit.
  uint64_t Faulted = 0; ///< Requests contained by the handler guard.
  uint64_t Shed = 0;    ///< Connections refused with a busy response.
  uint64_t DeadlineKilled = 0; ///< Requests killed by the watchdog.
  uint64_t AcceptFaults = 0;   ///< `server-accept` faults fired.
  uint64_t Pings = 0;          ///< Health probes served.
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds and listens on the socket.  A stale socket file (left by a
  /// kill -9) is detected by probing it: if nothing accepts, the file is
  /// unlinked and the address rebound; if a live daemon answers, start
  /// fails with a diagnostic.  Also starts the worker pool and arms any
  /// daemon-side fault specs (a malformed spec fails start).
  bool start(DiagnosticEngine &Diags);

  /// Blocking accept loop; returns after stop().  Connections are
  /// admitted through the worker pool, so at most Workers requests
  /// compile concurrently and the rest queue — up to MaxQueue, beyond
  /// which they are shed with a busy response.
  void run();

  /// Unblocks run().  Async-signal-safe: callable from a SIGINT/SIGTERM
  /// handler.
  void stop();

  /// Graceful-drain variant of stop(): also sets the draining flag, so
  /// connection handlers finish the frame they hold (instead of closing
  /// immediately) and then hang up.  Async-signal-safe.
  void requestDrain();

  /// True once requestDrain() ran; health responses report it.
  bool draining() const { return Draining.load(); }

  /// Completes shutdown after run() returns: drains the worker queue,
  /// cancels and joins any watchdog-abandoned request threads, and
  /// leaves the object safe to destroy.  Idempotent.
  void shutdown();

  /// Compiles one request exactly as `tcc` would, rendering stdout /
  /// stderr into the response; a "ping" request returns health JSON
  /// instead.  Public for tests and single-process benchmarking — no
  /// socket required.  \p Cancelled, when set, is the watchdog's kill
  /// switch: injected `stall` faults park on it.
  Response handleRequest(const Request &Req,
                         const std::atomic<bool> *Cancelled = nullptr);

  /// The one-line health JSON served to `ping` requests.
  Response healthResponse();

  /// The human-readable stats line tccd prints at exit.  Shares every
  /// counter (including hot-cache evictions) with healthResponse(), so
  /// the two can never disagree.
  std::string statsLine();

  const ServerOptions &options() const { return Opts; }
  ServerStats stats() const;
  driver::CompilerSession &session() { return Session; }
  HotCache &hotCache() { return Hot; }

private:
  void handleConnection(int Fd);

  /// Runs handleRequest on a dedicated thread and waits at most
  /// RequestDeadlineMs.  On deadline the thread is cancelled (stall
  /// faults notice promptly; a genuinely wedged compile is abandoned to
  /// the zombie list) and a synthesized exit-2 response returns.
  Response dispatchRequest(const Request &Req);

  /// Writes a busy response to \p Fd and closes it.  The retry hint
  /// scales with queue depth so a deeper backlog pushes clients further
  /// away.
  void shedConnection(int Fd);

  ServerOptions Opts;
  driver::CompilerSession Session;
  HotCache Hot;
  std::unique_ptr<TaskQueue> Queue;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Draining{false};
  std::chrono::steady_clock::time_point StartedAt;
  uint64_t ConnOrdinal = 0; ///< Accept-loop only; no lock needed.
  FaultInjector AcceptInjector;

  /// Watchdog-abandoned request threads.  Each holds a shared cancel
  /// token (set on abandonment); shutdown() joins them all.
  struct Zombie {
    std::thread T;
    std::shared_ptr<std::atomic<bool>> Cancelled;
  };
  std::mutex ZombiesMutex;
  std::vector<Zombie> Zombies;

  mutable std::mutex StatsMutex;
  ServerStats S;
};

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_SERVER_H
