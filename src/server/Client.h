//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the tccd protocol: connect, send one request, read the
/// response.  Used by tcc-client, bench_server, bench_soak, and the
/// server tests.
///
/// Two survivability layers live here:
///
///  - Per-call deadlines.  Every blocking step (connect, frame write,
///    frame read) is poll-based and bounded by ClientOptions::TimeoutMs,
///    so a wedged or half-dead daemon can never hang a client past its
///    deadline.
///
///  - Classified failure + bounded retry.  Every failure is tagged with
///    a TransportError, and retrySafe() says whether re-sending the
///    request can possibly duplicate work.  Only three failures are
///    retry-safe — connect refused (daemon not yet up / restarting),
///    clean EOF before any response byte (daemon died pre-admission),
///    and an explicit busy response — because each proves the daemon
///    never started compiling.  A timeout or partial response proves
///    nothing, so runRequestWithRetry never retries those.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_CLIENT_H
#define TCC_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <string>
#include <vector>

namespace tcc {
namespace server {

/// Why a transport operation failed.  The distinction that matters is
/// retry safety: a failure is retry-safe iff it proves the daemon never
/// began processing the request.
enum class TransportError {
  None,            ///< No failure recorded.
  ConnectFailed,   ///< socket()/path/connect failure (not refusal).
  ConnectRefused,  ///< ECONNREFUSED/ENOENT — daemon down; retry-safe.
  SendFailed,      ///< Request write failed mid-frame (not EPIPE).
  PeerClosed,      ///< Clean close before any response byte; retry-safe.
  PartialResponse, ///< Response truncated after bytes arrived.
  Timeout,         ///< A deadline expired; the daemon may be working.
  Protocol,        ///< Undecodable response frame.
};

/// Spec-token name for a TransportError ("none", "connect-failed", ...);
/// used by diagnostics and the soak bench's failure histogram.
const char *transportErrorName(TransportError E);

/// Knobs for deadline and retry behaviour.  Defaults are generous but
/// finite: a minute-long compile still fits, a wedged daemon does not.
struct ClientOptions {
  /// Bounds each connect and each whole-frame read/write, in ms.
  /// <= 0 waits forever (the pre-deadline behaviour).
  int TimeoutMs = 60000;
  /// Extra attempts after the first (0 == single-shot).
  unsigned Retries = 0;
  /// Total wall-clock budget for retries + backoff, in ms.  The first
  /// attempt is always allowed; later attempts are skipped once the
  /// budget is spent.
  int RetryBudgetMs = 2000;
};

/// A connected client.  Wraps the socket fd; reusable for several
/// sequential requests on one connection.
class Client {
public:
  Client() = default;
  explicit Client(int TimeoutMs) : TimeoutMs(TimeoutMs) {}
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon, bounded by the client's deadline.  On
  /// failure \p Error names the phase that died (path check, socket
  /// creation, connect) and the errno — a clean message, never a hang.
  bool connect(const std::string &SocketPath, std::string &Error);

  /// One round trip.  Returns false with \p Error set when the daemon
  /// vanished mid-request (EOF / truncated frame), sent garbage, or a
  /// deadline expired.  lastError()/retrySafe() classify the failure.
  /// A send failure with a response already parked on the socket (the
  /// shed path: busy frame, then close, without reading the request)
  /// still succeeds, returning that response.
  bool roundTrip(const Request &Req, Response &Resp, std::string &Error);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Classification of the most recent connect/roundTrip failure.
  TransportError lastError() const { return LastError; }

  /// True iff the last failure proves the daemon never began processing
  /// the request, so re-sending it cannot duplicate work.
  bool retrySafe() const {
    return LastError == TransportError::ConnectRefused ||
           LastError == TransportError::PeerClosed;
  }

  void setTimeoutMs(int Ms) { TimeoutMs = Ms; }

private:
  int Fd = -1;
  int TimeoutMs = 0; ///< <= 0: wait forever.
  TransportError LastError = TransportError::None;
};

/// Convenience: connect + one request + close.  Single-shot, infinite
/// deadline — the original tcc-client behaviour.
bool runRequest(const std::string &SocketPath, const Request &Req,
                Response &Resp, std::string &Error);

/// What a retrying call did, beyond the response itself.
struct CallOutcome {
  bool Ok = false;       ///< A response was decoded (any exit code).
  unsigned Attempts = 0; ///< Round trips performed (>= 1).
  TransportError Failure = TransportError::None; ///< Last failure if !Ok.
};

/// Connect + request + close, with deadlines and bounded retry.
///
/// Retries fire only for retry-safe failures (see TransportError) and
/// for busy responses, with exponential backoff + jitter between
/// attempts (a busy response's RetryAfterMs hint overrides the backoff
/// floor).  Attempts stop when one succeeds, Opts.Retries extra
/// attempts are spent, or Opts.RetryBudgetMs of wall clock is gone.
/// On Ok, \p Resp holds the final response — which may still be a
/// busy response if the budget ran out while the daemon was shedding.
CallOutcome runRequestWithRetry(const std::string &SocketPath,
                                const Request &Req,
                                const ClientOptions &Opts, Response &Resp,
                                std::string &Error);

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_CLIENT_H
