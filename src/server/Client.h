//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the tccd protocol: connect, send one request, read the
/// response.  Used by tcc-client, bench_server, and the server tests.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_CLIENT_H
#define TCC_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <string>
#include <vector>

namespace tcc {
namespace server {

/// A connected client.  Wraps the socket fd; reusable for several
/// sequential requests on one connection.
class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon.  On failure \p Error says why (no daemon,
  /// stale socket, path too long) — a clean message, never a hang.
  bool connect(const std::string &SocketPath, std::string &Error);

  /// One round trip.  Returns false with \p Error set when the daemon
  /// vanished mid-request (EOF / truncated frame) or sent garbage.
  bool roundTrip(const Request &Req, Response &Resp, std::string &Error);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
};

/// Convenience: connect + one request + close.
bool runRequest(const std::string &SocketPath, const Request &Req,
                Response &Resp, std::string &Error);

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_CLIENT_H
