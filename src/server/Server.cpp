#include "server/Server.h"

#include "driver/ToolMain.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

namespace {

/// Fills a sockaddr_un, rejecting paths longer than the kernel limit.
bool makeAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' exceeds the " +
            std::to_string(sizeof(Addr.sun_path) - 1) + "-byte limit";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// True when something is accepting connections on \p Path.
bool socketIsLive(const std::string &Path) {
  sockaddr_un Addr;
  std::string Ignored;
  if (!makeAddress(Path, Addr, Ignored))
    return false;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  bool Live = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)) == 0;
  ::close(Fd);
  return Live;
}

/// Splits a fault-inject spec into `server:`-site entries (fired by the
/// request handler) and everything else (passed through to the compile).
void splitServerFaults(const std::string &Spec, std::string &ServerSpec,
                       std::string &CompileSpec) {
  std::string Token;
  auto Flush = [&] {
    size_t B = Token.find_first_not_of(" \t");
    if (B != std::string::npos) {
      size_t E = Token.find_last_not_of(" \t");
      std::string T = Token.substr(B, E - B + 1);
      std::string &Dst =
          T.rfind("server:", 0) == 0 ? ServerSpec : CompileSpec;
      if (!Dst.empty())
        Dst += ',';
      Dst += T;
    }
    Token.clear();
  };
  for (char C : Spec) {
    if (C == ',')
      Flush();
    else
      Token += C;
  }
  Flush();
}

} // namespace

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Hot(this->Opts.HotCacheMax) {
  Session.setResultCache(&Hot);
}

Server::~Server() {
  stop();
  if (Queue)
    Queue->shutdown();
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

bool Server::start(DiagnosticEngine &Diags) {
  sockaddr_un Addr;
  std::string Error;
  if (!makeAddress(Opts.SocketPath, Addr, Error)) {
    Diags.error(SourceLoc(), Error);
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Diags.error(SourceLoc(),
                std::string("cannot create socket: ") + std::strerror(errno));
    return false;
  }

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (errno != EADDRINUSE) {
      Diags.error(SourceLoc(), "cannot bind '" + Opts.SocketPath +
                                   "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    // The address is taken: either a live daemon (refuse to fight it) or
    // a stale file left by a kill -9 (reclaim it).
    if (socketIsLive(Opts.SocketPath)) {
      Diags.error(SourceLoc(), "a daemon is already serving '" +
                                   Opts.SocketPath + "'");
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Diags.error(SourceLoc(), "cannot rebind stale socket '" +
                                   Opts.SocketPath +
                                   "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }

  if (::listen(ListenFd, 64) < 0) {
    Diags.error(SourceLoc(), "cannot listen on '" + Opts.SocketPath +
                                 "': " + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }

  Queue = std::make_unique<TaskQueue>(
      resolveWorkerCount(Opts.Workers, /*JobCount=*/SIZE_MAX));
  return true;
}

void Server::run() {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // stop() closed the listening socket.
    }
    if (!Queue->submit([this, Fd] { handleConnection(Fd); }))
      ::close(Fd); // Shutting down: refuse politely.
  }
}

void Server::stop() {
  Stopping.store(true);
  if (ListenFd >= 0) {
    // shutdown() unblocks a concurrent accept(); close() releases the fd.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::handleConnection(int Fd) {
  // A connection carries a sequence of request frames; EOF ends it.  A
  // framing error also ends it — after a best-effort error response, so
  // a confused client fails fast instead of hanging on a silent close.
  while (true) {
    std::string Payload, Error;
    if (!readFrame(Fd, Payload, Error)) {
      if (!Error.empty())
        writeFrame(Fd, encodeResponse(
                           {2, "", "tccd: protocol error: " + Error + "\n"}));
      break;
    }
    Request Req;
    Response Resp;
    if (!decodeRequest(Payload, Req, Error)) {
      Resp = {2, "", "tccd: malformed request: " + Error + "\n"};
    } else {
      Resp = handleRequest(Req);
    }
    if (!writeFrame(Fd, encodeResponse(Resp)))
      break; // Client vanished; the compile already benefited the caches.
  }
  ::close(Fd);
}

Response Server::handleRequest(const Request &Req) {
  Response Resp;
  std::ostringstream Out, Err;
  const auto Start = std::chrono::steady_clock::now();

  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(Req.Args, Inv, Error)) {
    // Same parser, same message, as `tcc` itself (entry-point prefix
    // aside) — the shared-flag-parsing invariant.
    Err << "tcc: " << Error << "\n" << driver::toolUsage("tcc");
    Resp.Exit = 2;
  } else if (!Inv.ReplayPath.empty()) {
    Err << "tccd: -replay= is not served by the daemon (reproducer "
           "bundles replay locally; run tcc -replay= instead)\n";
    Resp.Exit = 2;
  } else if (Inv.InputPath.empty()) {
    Err << driver::toolUsage("tcc");
    Resp.Exit = 2;
  } else {
    // Cache ownership: the daemon's manifest replaces whatever -cache=
    // the request named.  Two processes racing on a client-named
    // manifest is the interleaving this server exists to remove.
    Inv.Opts.CacheFile = Opts.CacheFile;

    // `server:` fault sites fire here, in the handler, under its
    // containment — proving a request that dies outside the pass
    // sandbox still cannot take other in-flight requests with it.
    std::string ServerSpec, CompileSpec;
    splitServerFaults(Inv.Opts.FaultInject, ServerSpec, CompileSpec);
    Inv.Opts.FaultInject = CompileSpec;

    try {
      if (!ServerSpec.empty()) {
        FaultInjector Injector;
        DiagnosticEngine FaultDiags;
        if (!Injector.addSpecs(ServerSpec, FaultDiags)) {
          for (const auto &D : FaultDiags.diagnostics())
            Err << Inv.InputPath << ": " << D.str() << "\n";
          Resp.Exit = 2;
        } else if (const FaultSpec *F =
                       Injector.arm("server", Inv.InputPath)) {
          if (F->Kind == FaultKind::Slow)
            // Slowness is containment too: the request occupies its
            // worker, every other in-flight request proceeds.
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
          else if (F->Kind == FaultKind::CorruptIL)
            throw std::runtime_error(
                "injected corrupt-il fault at server site");
          else
            throwInjectedFault(*F);
        }
      }
      if (Resp.Exit == 0)
        Resp.Exit =
            driver::runToolInvocation(Inv, Req.Source, Session, Out, Err);
    } catch (const std::exception &E) {
      Err << "tccd: request for '" << Inv.InputPath
          << "' failed: " << E.what()
          << " (contained; other requests unaffected)\n";
      Resp.Exit = 2;
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++S.Faulted;
    } catch (...) {
      Err << "tccd: request for '" << Inv.InputPath
          << "' failed with an unknown exception (contained; other "
             "requests unaffected)\n";
      Resp.Exit = 2;
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++S.Faulted;
    }
  }

  Resp.Out = Out.str();
  Resp.Err = Err.str();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++S.Requests;
    if (Resp.Exit != 0)
      ++S.Errors;
  }
  if (Opts.Verbose) {
    double Millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    HotCacheStats HS = Hot.stats();
    std::fprintf(stderr,
                 "[tccd] '%s' exit=%d %.1fms (hot: %llu hit / %llu miss)\n",
                 Inv.InputPath.c_str(), Resp.Exit, Millis,
                 static_cast<unsigned long long>(HS.Hits),
                 static_cast<unsigned long long>(HS.Misses));
  }
  return Resp;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return S;
}
