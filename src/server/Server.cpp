#include "server/Server.h"

#include "driver/ToolMain.h"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

namespace {

/// Fills a sockaddr_un, rejecting paths longer than the kernel limit.
bool makeAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' exceeds the " +
            std::to_string(sizeof(Addr.sun_path) - 1) + "-byte limit";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// True when something is accepting connections on \p Path.
bool socketIsLive(const std::string &Path) {
  sockaddr_un Addr;
  std::string Ignored;
  if (!makeAddress(Path, Addr, Ignored))
    return false;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  bool Live = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)) == 0;
  ::close(Fd);
  return Live;
}

/// Splits a fault-inject spec into `server:`-site entries (fired by the
/// request handler) and everything else (passed through to the compile).
void splitServerFaults(const std::string &Spec, std::string &ServerSpec,
                       std::string &CompileSpec) {
  std::string Token;
  auto Flush = [&] {
    size_t B = Token.find_first_not_of(" \t");
    if (B != std::string::npos) {
      size_t E = Token.find_last_not_of(" \t");
      std::string T = Token.substr(B, E - B + 1);
      std::string &Dst =
          T.rfind("server:", 0) == 0 ? ServerSpec : CompileSpec;
      if (!Dst.empty())
        Dst += ',';
      Dst += T;
    }
    Token.clear();
  };
  for (char C : Spec) {
    if (C == ',')
      Flush();
    else
      Token += C;
  }
  Flush();
}

/// How long each connection handler sleeps between readability polls.
/// Small enough that stop/drain is observed promptly; large enough that
/// an idle connection costs ~5 wakeups a second.
constexpr int ConnPollSliceMs = 200;

/// Per-frame deadline once bytes start arriving: a client that dribbles
/// a frame one byte at a time cannot hold a worker past this.
constexpr int FrameDeadlineMs = 10000;

} // namespace

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Hot(this->Opts.HotCacheMax) {
  Session.setResultCache(&Hot);
}

Server::~Server() {
  shutdown();
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

bool Server::start(DiagnosticEngine &Diags) {
  if (!Opts.FaultInject.empty() &&
      !AcceptInjector.addSpecs(Opts.FaultInject, Diags))
    return false;

  sockaddr_un Addr;
  std::string Error;
  if (!makeAddress(Opts.SocketPath, Addr, Error)) {
    Diags.error(SourceLoc(), Error);
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Diags.error(SourceLoc(),
                std::string("cannot create socket: ") + std::strerror(errno));
    return false;
  }

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (errno != EADDRINUSE) {
      Diags.error(SourceLoc(), "cannot bind '" + Opts.SocketPath +
                                   "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    // The address is taken: either a live daemon (refuse to fight it) or
    // a stale file left by a kill -9 (reclaim it).
    if (socketIsLive(Opts.SocketPath)) {
      Diags.error(SourceLoc(), "a daemon is already serving '" +
                                   Opts.SocketPath + "'");
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0) {
      Diags.error(SourceLoc(), "cannot rebind stale socket '" +
                                   Opts.SocketPath +
                                   "': " + std::strerror(errno));
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }

  if (::listen(ListenFd, 64) < 0) {
    Diags.error(SourceLoc(), "cannot listen on '" + Opts.SocketPath +
                                 "': " + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }

  Queue = std::make_unique<TaskQueue>(
      resolveWorkerCount(Opts.Workers, /*JobCount=*/SIZE_MAX));
  StartedAt = std::chrono::steady_clock::now();
  return true;
}

void Server::run() {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // stop() closed the listening socket.
    }
    ++ConnOrdinal;

    // The `server-accept` site models admission-time deaths — the one
    // window request-carried fault specs cannot reach because no
    // request has been read yet.  Unit is the connection ordinal.
    if (!AcceptInjector.empty()) {
      if (const FaultSpec *F = AcceptInjector.arm(
              "server-accept", std::to_string(ConnOrdinal))) {
        {
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++S.AcceptFaults;
        }
        if (F->Kind == FaultKind::Slow) {
          // Admission lag: the connection stalls briefly, then proceeds.
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        } else {
          // Every other kind drops the connection before a single
          // response byte — the clean-EOF shape a daemon crash at
          // admission produces, which clients may safely retry.
          ::close(Fd);
          continue;
        }
      }
    }

    // Load shedding: a full admission queue answers with an explicit
    // busy response instead of queueing unbounded latency.
    if (Opts.MaxQueue != 0 && Queue->pending() >= Opts.MaxQueue) {
      shedConnection(Fd);
      continue;
    }

    if (!Queue->submit([this, Fd] { handleConnection(Fd); }))
      ::close(Fd); // Shutting down: refuse politely.
  }
}

void Server::stop() {
  Stopping.store(true);
  if (ListenFd >= 0) {
    // shutdown() unblocks a concurrent accept(); close() releases the fd.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::requestDrain() {
  // Order matters for the connection handlers: once they observe
  // Stopping they re-check Draining, so Draining must already be set.
  Draining.store(true);
  stop();
}

void Server::shutdown() {
  stop();
  if (Queue) {
    Queue->shutdown(); // Drains queued connections; handlers see Stopping.
    Queue.reset();
  }
  std::vector<Zombie> Zs;
  {
    std::lock_guard<std::mutex> Lock(ZombiesMutex);
    Zs.swap(Zombies);
  }
  for (Zombie &Z : Zs) {
    Z.Cancelled->store(true);
    if (Z.T.joinable())
      Z.T.join();
  }
}

void Server::shedConnection(int Fd) {
  size_t Pending = Queue->pending();
  unsigned W = Queue->workerCount();
  // Deeper backlog pushes clients further away; capped so a retrying
  // client never waits absurdly long to learn the daemon recovered.
  long long Hint = 50 * (1 + static_cast<long long>(Pending) /
                                 (W == 0 ? 1 : W));
  if (Hint > 2000)
    Hint = 2000;

  Response Busy;
  Busy.Exit = BusyExit;
  Busy.RetryAfterMs = static_cast<int>(Hint);
  Busy.Err = "tccd: busy (" + std::to_string(Pending) +
             " connections queued); retry after " + std::to_string(Hint) +
             " ms\n";
  // Count before notifying: the shed happened the moment we decided,
  // and a client that reads the busy frame must already see it in a
  // health probe.  The write is best-effort either way.
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++S.Shed;
  }
  std::string Ignored;
  writeFrameDeadline(Fd, encodeResponse(Busy), /*TimeoutMs=*/2000, Ignored);
  ::close(Fd);
}

void Server::handleConnection(int Fd) {
  // A connection carries a sequence of request frames; EOF ends it.  A
  // framing error also ends it — after a best-effort error response, so
  // a confused client fails fast instead of hanging on a silent close.
  // The loop is poll-sliced so stop/drain is observed within a slice:
  // fast stop closes mid-anything, drain closes idle connections but
  // lets an arrived frame be served first.
  while (true) {
    if (Stopping.load() && !Draining.load())
      break; // Fast stop: hang up now.
    int Ready = pollReadable(Fd, ConnPollSliceMs);
    if (Ready < 0)
      break;
    if (Ready == 0) {
      if (Stopping.load())
        break; // Draining and the connection is idle: hang up.
      continue;
    }

    std::string Payload, Error;
    FrameIO R = readFrameDeadline(Fd, Payload, FrameDeadlineMs, Error);
    if (R != FrameIO::Ok) {
      if (R != FrameIO::CleanEof)
        writeFrameDeadline(
            Fd,
            encodeResponse(
                {2, "", "tccd: protocol error: " + Error + "\n"}),
            FrameDeadlineMs, Error);
      break;
    }

    Request Req;
    Response Resp;
    if (!decodeRequest(Payload, Req, Error)) {
      Resp = {2, "", "tccd: malformed request: " + Error + "\n"};
    } else {
      Resp = dispatchRequest(Req);
    }
    if (writeFrameDeadline(Fd, encodeResponse(Resp), FrameDeadlineMs,
                           Error) != FrameIO::Ok)
      break; // Client vanished; the compile already benefited the caches.
    if (Stopping.load())
      break; // Draining: this frame was in flight; serve it, then out.
  }
  ::close(Fd);
}

Response Server::dispatchRequest(const Request &Req) {
  // Health probes answer inline: they must work even when every worker
  // is wedged, and they can never wedge themselves.
  if (Req.Kind == "ping")
    return handleRequest(Req);
  if (Opts.RequestDeadlineMs <= 0)
    return handleRequest(Req);

  // Run the request on its own thread so this (worker) thread can be
  // the watchdog.  On deadline the request thread is cancelled —
  // injected stalls notice within ~20 ms; a genuinely wedged compile is
  // abandoned to the zombie list and joined at shutdown.  Either way
  // the hot cache's abandon path promotes any waiter (PR 4 machinery).
  struct Pending {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    Response Resp;
    std::shared_ptr<std::atomic<bool>> Cancelled =
        std::make_shared<std::atomic<bool>>(false);
  };
  auto P = std::make_shared<Pending>();
  std::thread T([this, Req, P] {
    Response R = handleRequest(Req, P->Cancelled.get());
    std::lock_guard<std::mutex> Lock(P->M);
    P->Resp = std::move(R);
    P->Done = true;
    P->CV.notify_all();
  });

  std::unique_lock<std::mutex> Lock(P->M);
  if (P->CV.wait_for(Lock, std::chrono::milliseconds(Opts.RequestDeadlineMs),
                     [&] { return P->Done; })) {
    Lock.unlock();
    T.join();
    return std::move(P->Resp);
  }

  // Deadline expired: kill the request from the client's point of view.
  P->Cancelled->store(true);
  Lock.unlock();
  {
    std::lock_guard<std::mutex> Lock2(ZombiesMutex);
    Zombies.push_back({std::move(T), P->Cancelled});
  }
  {
    std::lock_guard<std::mutex> Lock2(StatsMutex);
    ++S.DeadlineKilled;
  }
  Response Killed;
  Killed.Exit = 2;
  Killed.Err = "tccd: request exceeded the " +
               std::to_string(Opts.RequestDeadlineMs) +
               " ms deadline and was killed (contained; other requests "
               "unaffected)\n";
  return Killed;
}

Response Server::handleRequest(const Request &Req,
                               const std::atomic<bool> *Cancelled) {
  if (Req.Kind == "ping") {
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++S.Pings;
    }
    return healthResponse();
  }
  if (!Req.Kind.empty() && Req.Kind != "compile")
    return {2, "",
            "tccd: unknown request kind '" + Req.Kind + "'\n"};

  Response Resp;
  std::ostringstream Out, Err;
  const auto Start = std::chrono::steady_clock::now();

  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(Req.Args, Inv, Error)) {
    // Same parser, same message, as `tcc` itself (entry-point prefix
    // aside) — the shared-flag-parsing invariant.
    Err << "tcc: " << Error << "\n" << driver::toolUsage("tcc");
    Resp.Exit = 2;
  } else if (!Inv.ReplayPath.empty()) {
    Err << "tccd: -replay= is not served by the daemon (reproducer "
           "bundles replay locally; run tcc -replay= instead)\n";
    Resp.Exit = 2;
  } else if (Inv.InputPath.empty()) {
    Err << driver::toolUsage("tcc");
    Resp.Exit = 2;
  } else {
    // Cache ownership: the daemon's manifest replaces whatever -cache=
    // the request named.  Two processes racing on a client-named
    // manifest is the interleaving this server exists to remove.
    Inv.Opts.CacheFile = Opts.CacheFile;

    // `server:` fault sites fire here, in the handler, under its
    // containment — proving a request that dies outside the pass
    // sandbox still cannot take other in-flight requests with it.
    std::string ServerSpec, CompileSpec;
    splitServerFaults(Inv.Opts.FaultInject, ServerSpec, CompileSpec);
    Inv.Opts.FaultInject = CompileSpec;

    try {
      if (!ServerSpec.empty()) {
        FaultInjector Injector;
        DiagnosticEngine FaultDiags;
        if (!Injector.addSpecs(ServerSpec, FaultDiags)) {
          for (const auto &D : FaultDiags.diagnostics())
            Err << Inv.InputPath << ": " << D.str() << "\n";
          Resp.Exit = 2;
        } else if (const FaultSpec *F =
                       Injector.arm("server", Inv.InputPath)) {
          if (F->Kind == FaultKind::Slow) {
            // Slowness is containment too: the request occupies its
            // worker, every other in-flight request proceeds.
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
          } else if (F->Kind == FaultKind::Stall) {
            // The deterministic "stuck request": park until the
            // deadline watchdog cancels us, polling the kill switch so
            // the zombie exits promptly.  A 30 s cap keeps a daemon
            // running without a deadline from wedging a worker forever.
            const auto Cap = std::chrono::steady_clock::now() +
                             std::chrono::seconds(30);
            while (std::chrono::steady_clock::now() < Cap &&
                   !(Cancelled && Cancelled->load()))
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
            Err << "tccd: request for '" << Inv.InputPath
                << "' stalled and was cancelled\n";
            Resp.Exit = 2;
          } else if (F->Kind == FaultKind::CorruptIL) {
            throw std::runtime_error(
                "injected corrupt-il fault at server site");
          } else {
            throwInjectedFault(*F);
          }
        }
      }
      if (Resp.Exit == 0)
        Resp.Exit =
            driver::runToolInvocation(Inv, Req.Source, Session, Out, Err);
    } catch (const std::exception &E) {
      Err << "tccd: request for '" << Inv.InputPath
          << "' failed: " << E.what()
          << " (contained; other requests unaffected)\n";
      Resp.Exit = 2;
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++S.Faulted;
    } catch (...) {
      Err << "tccd: request for '" << Inv.InputPath
          << "' failed with an unknown exception (contained; other "
             "requests unaffected)\n";
      Resp.Exit = 2;
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++S.Faulted;
    }
  }

  Resp.Out = Out.str();
  Resp.Err = Err.str();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++S.Requests;
    if (Resp.Exit != 0)
      ++S.Errors;
  }
  if (Opts.Verbose) {
    double Millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    HotCacheStats HS = Hot.stats();
    std::fprintf(stderr,
                 "[tccd] '%s' exit=%d %.1fms (hot: %llu hit / %llu miss)\n",
                 Inv.InputPath.c_str(), Resp.Exit, Millis,
                 static_cast<unsigned long long>(HS.Hits),
                 static_cast<unsigned long long>(HS.Misses));
  }
  return Resp;
}

Response Server::healthResponse() {
  ServerStats St = stats();
  HotCacheStats HS = Hot.stats();
  uint64_t UptimeSec = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - StartedAt)
          .count());
  size_t QueueDepth = Queue ? Queue->pending() : 0;
  unsigned Active = Queue ? Queue->active() : 0;
  unsigned Workers = Queue ? Queue->workerCount() : 0;

  // Every key is a fixed token and every value a number or bool, so the
  // line is hand-assembled — no escaping needed.
  std::ostringstream J;
  J << "{\"uptimeSec\":" << UptimeSec << ",\"workers\":" << Workers
    << ",\"queueDepth\":" << QueueDepth << ",\"active\":" << Active
    << ",\"requests\":" << St.Requests << ",\"errors\":" << St.Errors
    << ",\"faulted\":" << St.Faulted << ",\"shed\":" << St.Shed
    << ",\"deadlineKilled\":" << St.DeadlineKilled
    << ",\"acceptFaults\":" << St.AcceptFaults
    << ",\"pings\":" << St.Pings << ",\"hotSize\":" << Hot.size()
    << ",\"hotHits\":" << HS.Hits << ",\"hotMisses\":" << HS.Misses
    << ",\"hotEvictions\":" << HS.Evictions
    << ",\"draining\":" << (Draining.load() ? "true" : "false") << "}";

  Response Resp;
  Resp.Out = J.str() + "\n";
  return Resp;
}

std::string Server::statsLine() {
  // Same counters, same accessors, as healthResponse() — most notably
  // the hot-cache eviction count comes from Hot.stats() in both, so the
  // exit line and a health probe can never disagree.
  ServerStats St = stats();
  HotCacheStats HS = Hot.stats();
  std::ostringstream L;
  L << "[tccd] served " << St.Requests << " requests (" << St.Errors
    << " errors, " << St.Faulted << " faulted), shed " << St.Shed
    << ", deadline-killed " << St.DeadlineKilled << ", accept-faults "
    << St.AcceptFaults << ", pings " << St.Pings << ", hot cache "
    << Hot.size() << " entries (" << HS.Hits << " hits / " << HS.Misses
    << " misses / " << HS.Evictions << " evictions)";
  return L.str();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return S;
}
