//===----------------------------------------------------------------------===//
///
/// \file
/// The tccd wire protocol: length-prefixed JSON frames over a local Unix
/// socket.
///
/// Every message is one frame — a 4-byte little-endian payload length
/// followed by that many bytes of UTF-8 JSON.  A request carries the tcc
/// argv (minus the program name) and the input file's text; clients own
/// file IO, so the daemon never resolves paths relative to a client's
/// working directory.  A response carries the exit code plus the exact
/// stdout/stderr bytes a direct `tcc` run would have produced — the
/// client replays them verbatim, which is what makes daemon-compiled
/// output byte-identical by construction.
///
/// The JSON reader accepts exactly the subset the writer emits (objects,
/// arrays, strings with standard escapes, integers, booleans, null);
/// anything else is a framing error, answered with a clean error
/// response rather than a dropped connection.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_PROTOCOL_H
#define TCC_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace tcc {
namespace server {

/// Frames larger than this are rejected before allocation, so a garbage
/// length prefix (a non-protocol client) fails fast instead of OOMing
/// the daemon.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// One compile request.
struct Request {
  std::vector<std::string> Args; ///< tcc argv without the program name.
  std::string Source;            ///< Input file text (client-read).
};

/// One compile response: what `tcc` would have printed, and how it would
/// have exited.
struct Response {
  int Exit = 0;
  std::string Out;
  std::string Err;
};

std::string encodeRequest(const Request &R);
std::string encodeResponse(const Response &R);

/// Decoders validate shape as well as syntax; on failure \p Error names
/// what was malformed and the output struct is unspecified.
bool decodeRequest(const std::string &Payload, Request &R,
                   std::string &Error);
bool decodeResponse(const std::string &Payload, Response &R,
                    std::string &Error);

/// Writes one frame to a connected socket, handling short writes.
/// Returns false on I/O error (EPIPE when the peer vanished).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame.  Returns false with an empty \p Error on clean EOF
/// (peer closed between frames) and a non-empty \p Error on a protocol
/// or I/O failure.
bool readFrame(int Fd, std::string &Payload, std::string &Error);

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_PROTOCOL_H
