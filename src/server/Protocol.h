//===----------------------------------------------------------------------===//
///
/// \file
/// The tccd wire protocol: length-prefixed JSON frames over a local Unix
/// socket.
///
/// Every message is one frame — a 4-byte little-endian payload length
/// followed by that many bytes of UTF-8 JSON.  A request carries the tcc
/// argv (minus the program name) and the input file's text; clients own
/// file IO, so the daemon never resolves paths relative to a client's
/// working directory.  A response carries the exit code plus the exact
/// stdout/stderr bytes a direct `tcc` run would have produced — the
/// client replays them verbatim, which is what makes daemon-compiled
/// output byte-identical by construction.
///
/// The JSON reader accepts exactly the subset the writer emits (objects,
/// arrays, strings with standard escapes, integers, booleans, null);
/// anything else is a framing error, answered with a clean error
/// response rather than a dropped connection.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_PROTOCOL_H
#define TCC_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace tcc {
namespace server {

/// Frames larger than this are rejected before allocation, so a garbage
/// length prefix (a non-protocol client) fails fast instead of OOMing
/// the daemon.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// The well-known exit code for "the daemon shed this request under
/// load" (a `busy` response).  Distinct from tcc's own codes (0/1/2) and
/// from the client's transport code (3).  A busy response is complete
/// and proves the request was never admitted, so it is always safe to
/// retry — the response carries a `retry-after-ms` hint.
constexpr int BusyExit = 4;

/// One request.  Kind selects what the daemon does with it:
///   ""/"compile"  compile Args+Source exactly as `tcc` would
///   "ping"        answer with one line of daemon health JSON (uptime,
///                 queue depth, hot-cache size/evictions, fault
///                 counters) without compiling anything
struct Request {
  std::vector<std::string> Args; ///< tcc argv without the program name.
  std::string Source;            ///< Input file text (client-read).
  std::string Kind;              ///< "" == "compile"; "ping" == health.
};

/// One response: what `tcc` would have printed, and how it would have
/// exited.  A busy (shed) response has Exit == BusyExit and a
/// non-negative RetryAfterMs backoff hint.
struct Response {
  int Exit = 0;
  std::string Out;
  std::string Err;
  int RetryAfterMs = -1; ///< >= 0 only on busy responses.
};

std::string encodeRequest(const Request &R);
std::string encodeResponse(const Response &R);

/// Decoders validate shape as well as syntax; on failure \p Error names
/// what was malformed and the output struct is unspecified.
bool decodeRequest(const std::string &Payload, Request &R,
                   std::string &Error);
bool decodeResponse(const std::string &Payload, Response &R,
                    std::string &Error);

/// Writes one frame to a connected socket, handling short writes.
/// Returns false on I/O error (EPIPE when the peer vanished; writes use
/// MSG_NOSIGNAL, so a dead peer sets errno instead of raising SIGPIPE).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame.  Returns false with an empty \p Error on clean EOF
/// (peer closed between frames) and a non-empty \p Error on a protocol
/// or I/O failure.
bool readFrame(int Fd, std::string &Payload, std::string &Error);

/// How a deadline-aware frame operation ended.
enum class FrameIO {
  Ok,       ///< The whole frame moved.
  CleanEof, ///< Peer closed before the first byte (reads only).
  Timeout,  ///< The deadline expired; the frame may be half-moved.
  Error,    ///< I/O or protocol failure; errno/Error say why.
};

/// Deadline-aware variants.  \p TimeoutMs bounds the *whole* frame, not
/// each syscall (poll-based; <= 0 waits forever).  On Timeout and Error
/// \p Error says which phase died and how many bytes had moved —
/// callers must treat a partially read frame as poison, never decode
/// it.  On Error, errno is preserved from the failing syscall.
FrameIO writeFrameDeadline(int Fd, const std::string &Payload,
                           int TimeoutMs, std::string &Error);
FrameIO readFrameDeadline(int Fd, std::string &Payload, int TimeoutMs,
                          std::string &Error);

/// Polls \p Fd for readability: 1 ready (data or EOF), 0 timeout,
/// -1 error.  The daemon's connection loop uses this to wake for
/// shutdown/drain checks without consuming bytes.
int pollReadable(int Fd, int TimeoutMs);

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_PROTOCOL_H
