//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the supported C subset.
///
/// The AST is deliberately syntactic: names are unresolved strings and
/// expressions are untyped.  Name resolution, type checking and the
/// side-effect explication described in the paper (Section 4) all happen in
/// the front-end lowering to IL, mirroring the paper's "quick and simple"
/// front end that leaves cleanup to later phases.
///
/// Node classes use LLVM-style RTTI: each node stores a Kind tag and
/// provides a classof() predicate for isa/dyn_cast-style dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_AST_AST_H
#define TCC_AST_AST_H

#include "support/SourceLoc.h"
#include "types/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace ast {

class AstContext;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp { Plus, Neg, LogNot, BitNot, Deref, AddrOf };
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitXor,
  BitOr,
  LogAnd,
  LogOr,
};

/// Spelling of an operator for printing ("+", "&&", ...).
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);

class Expr {
public:
  enum ExprKind {
    IntLiteralKind,
    FloatLiteralKind,
    VarRefKind,
    UnaryKind,
    BinaryKind,
    AssignKind,
    CompoundAssignKind,
    IncDecKind,
    ConditionalKind,
    CommaKind,
    CallKind,
    IndexKind,
    CastKind,
  };

  virtual ~Expr() = default;

  ExprKind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(ExprKind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  ExprKind TheKind;
  SourceLoc Loc;
};

/// Integer literal; `IsFloatTyped` distinguishes nothing here — the value is
/// an int or char constant.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, int64_t Value)
      : Expr(IntLiteralKind, Loc), Value(Value) {}
  int64_t getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == IntLiteralKind; }

private:
  int64_t Value;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLoc Loc, double Value)
      : Expr(FloatLiteralKind, Loc), Value(Value) {}
  double getValue() const { return Value; }
  static bool classof(const Expr *E) {
    return E->getKind() == FloatLiteralKind;
  }

private:
  double Value;
};

/// A reference to a named variable (or function, in call position).
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(VarRefKind, Loc), Name(std::move(Name)) {}
  const std::string &getName() const { return Name; }
  static bool classof(const Expr *E) { return E->getKind() == VarRefKind; }

private:
  std::string Name;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Operand)
      : Expr(UnaryKind, Loc), Op(Op), Operand(Operand) {}
  UnaryOp getOp() const { return Op; }
  Expr *getOperand() const { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == UnaryKind; }

private:
  UnaryOp Op;
  Expr *Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(BinaryKind, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Expr *E) { return E->getKind() == BinaryKind; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// Simple assignment `lhs = rhs` appearing as an expression.  The front end
/// explicates this into an assignment statement plus a temporary.
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, Expr *LHS, Expr *RHS)
      : Expr(AssignKind, Loc), LHS(LHS), RHS(RHS) {}
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Expr *E) { return E->getKind() == AssignKind; }

private:
  Expr *LHS;
  Expr *RHS;
};

/// Compound assignment `lhs op= rhs`.
class CompoundAssignExpr : public Expr {
public:
  CompoundAssignExpr(SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(CompoundAssignKind, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Expr *E) {
    return E->getKind() == CompoundAssignKind;
  }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// Pre/post increment/decrement.
class IncDecExpr : public Expr {
public:
  IncDecExpr(SourceLoc Loc, bool IsIncrement, bool IsPrefix, Expr *Operand)
      : Expr(IncDecKind, Loc), IsIncrement(IsIncrement), IsPrefix(IsPrefix),
        Operand(Operand) {}
  bool isIncrement() const { return IsIncrement; }
  bool isPrefix() const { return IsPrefix; }
  Expr *getOperand() const { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == IncDecKind; }

private:
  bool IsIncrement;
  bool IsPrefix;
  Expr *Operand;
};

/// The conditional operator `c ? t : f`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, Expr *Cond, Expr *TrueExpr, Expr *FalseExpr)
      : Expr(ConditionalKind, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}
  Expr *getCond() const { return Cond; }
  Expr *getTrueExpr() const { return TrueExpr; }
  Expr *getFalseExpr() const { return FalseExpr; }
  static bool classof(const Expr *E) { return E->getKind() == ConditionalKind; }

private:
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
};

class CommaExpr : public Expr {
public:
  CommaExpr(SourceLoc Loc, Expr *LHS, Expr *RHS)
      : Expr(CommaKind, Loc), LHS(LHS), RHS(RHS) {}
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Expr *E) { return E->getKind() == CommaKind; }

private:
  Expr *LHS;
  Expr *RHS;
};

/// A call `f(args...)`.  Only direct calls by name are supported.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<Expr *> Args)
      : Expr(CallKind, Loc), Callee(std::move(Callee)), Args(std::move(Args)) {
  }
  const std::string &getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  static bool classof(const Expr *E) { return E->getKind() == CallKind; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
};

/// Subscript `base[index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Index)
      : Expr(IndexKind, Loc), Base(Base), Index(Index) {}
  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }
  static bool classof(const Expr *E) { return E->getKind() == IndexKind; }

private:
  Expr *Base;
  Expr *Index;
};

/// An explicit cast `(type)expr`.
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, const Type *TargetType, Expr *Operand)
      : Expr(CastKind, Loc), TargetType(TargetType), Operand(Operand) {}
  const Type *getTargetType() const { return TargetType; }
  Expr *getOperand() const { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == CastKind; }

private:
  const Type *TargetType;
  Expr *Operand;
};

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum StmtKind {
    ExprStmtKind,
    DeclStmtKind,
    BlockKind,
    IfKind,
    WhileKind,
    DoWhileKind,
    ForKind,
    ReturnKind,
    BreakKind,
    ContinueKind,
    GotoKind,
    LabeledKind,
    EmptyKind,
  };

  virtual ~Stmt() = default;
  StmtKind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(StmtKind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  StmtKind TheKind;
  SourceLoc Loc;
};

/// Storage class of a declared variable.
enum class StorageClass { Auto, Static, Extern, Register };

/// One declared variable: local, parameter, or global.
struct VarDecl {
  SourceLoc Loc;
  std::string Name;
  const Type *DeclType = nullptr;
  StorageClass Storage = StorageClass::Auto;
  bool IsVolatile = false;
  Expr *Init = nullptr; // may be null
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, Expr *E) : Stmt(ExprStmtKind, Loc), E(E) {}
  Expr *getExpr() const { return E; }
  static bool classof(const Stmt *S) { return S->getKind() == ExprStmtKind; }

private:
  Expr *E;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, std::vector<VarDecl> Decls)
      : Stmt(DeclStmtKind, Loc), Decls(std::move(Decls)) {}
  const std::vector<VarDecl> &getDecls() const { return Decls; }
  static bool classof(const Stmt *S) { return S->getKind() == DeclStmtKind; }

private:
  std::vector<VarDecl> Decls;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<Stmt *> Body)
      : Stmt(BlockKind, Loc), Body(std::move(Body)) {}
  const std::vector<Stmt *> &getBody() const { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == BlockKind; }

private:
  std::vector<Stmt *> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(IfKind, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; } // may be null
  static bool classof(const Stmt *S) { return S->getKind() == IfKind; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body, bool SafeVector)
      : Stmt(WhileKind, Loc), Cond(Cond), Body(Body), SafeVector(SafeVector) {}
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }
  /// True when a `#pragma safe` preceded the loop (paper Section 9).
  bool hasSafeVectorPragma() const { return SafeVector; }
  static bool classof(const Stmt *S) { return S->getKind() == WhileKind; }

private:
  Expr *Cond;
  Stmt *Body;
  bool SafeVector;
};

class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLoc Loc, Stmt *Body, Expr *Cond)
      : Stmt(DoWhileKind, Loc), Body(Body), Cond(Cond) {}
  Stmt *getBody() const { return Body; }
  Expr *getCond() const { return Cond; }
  static bool classof(const Stmt *S) { return S->getKind() == DoWhileKind; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body,
          bool SafeVector)
      : Stmt(ForKind, Loc), Init(Init), Cond(Cond), Inc(Inc), Body(Body),
        SafeVector(SafeVector) {}
  Stmt *getInit() const { return Init; } // may be null
  Expr *getCond() const { return Cond; } // may be null
  Expr *getInc() const { return Inc; }   // may be null
  Stmt *getBody() const { return Body; }
  bool hasSafeVectorPragma() const { return SafeVector; }
  static bool classof(const Stmt *S) { return S->getKind() == ForKind; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Inc;
  Stmt *Body;
  bool SafeVector;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(ReturnKind, Loc), Value(Value) {}
  Expr *getValue() const { return Value; } // may be null
  static bool classof(const Stmt *S) { return S->getKind() == ReturnKind; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(BreakKind, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == BreakKind; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(ContinueKind, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == ContinueKind; }
};

class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, std::string Label)
      : Stmt(GotoKind, Loc), Label(std::move(Label)) {}
  const std::string &getLabel() const { return Label; }
  static bool classof(const Stmt *S) { return S->getKind() == GotoKind; }

private:
  std::string Label;
};

class LabeledStmt : public Stmt {
public:
  LabeledStmt(SourceLoc Loc, std::string Label, Stmt *Sub)
      : Stmt(LabeledKind, Loc), Label(std::move(Label)), Sub(Sub) {}
  const std::string &getLabel() const { return Label; }
  Stmt *getSub() const { return Sub; }
  static bool classof(const Stmt *S) { return S->getKind() == LabeledKind; }

private:
  std::string Label;
  Stmt *Sub;
};

class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(EmptyKind, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == EmptyKind; }
};

/// One function definition or prototype.
struct FunctionDecl {
  SourceLoc Loc;
  std::string Name;
  const Type *ReturnType = nullptr;
  std::vector<VarDecl> Params;
  BlockStmt *Body = nullptr; // null for a prototype
  bool IsStatic = false;
  /// True when `#pragma fortran_pointers` was in effect: pointer parameters
  /// are assumed not to alias each other (paper Section 9).
  bool FortranPointerSemantics = false;
};

/// A whole translation unit: globals and functions in source order.
struct TranslationUnit {
  std::vector<VarDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

/// Owns every AST node created during one parse.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    T *Ptr = new T(std::forward<Args>(CtorArgs)...);
    Nodes.emplace_back(Ptr, [](void *P) { delete static_cast<T *>(P); });
    return Ptr;
  }

private:
  std::vector<std::unique_ptr<void, void (*)(void *)>> Nodes;
};

} // namespace ast
} // namespace tcc

#endif // TCC_AST_AST_H
