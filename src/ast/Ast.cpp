#include "ast/Ast.h"

using namespace tcc;
using namespace tcc::ast;

const char *ast::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  }
  return "?";
}

const char *ast::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Plus:
    return "+";
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  }
  return "?";
}
