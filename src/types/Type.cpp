#include "types/Type.h"

using namespace tcc;

int64_t Type::getSizeInBytes() const {
  switch (TheKind) {
  case VoidKind:
  case FunctionKind:
    assert(false && "type has no size");
    return 0;
  case CharKind:
    return 1;
  case IntKind:
  case FloatKind:
  case PointerKind:
    return 4;
  case DoubleKind:
    return 8;
  case ArrayKind:
    return ArraySize * Element->getSizeInBytes();
  }
  return 0;
}

std::string Type::str() const {
  switch (TheKind) {
  case VoidKind:
    return "void";
  case CharKind:
    return "char";
  case IntKind:
    return "int";
  case FloatKind:
    return "float";
  case DoubleKind:
    return "double";
  case PointerKind:
    return Element->str() + "*";
  case ArrayKind: {
    // Collect the base type, then append all dimensions in source order.
    const Type *Base = this;
    std::string Dims;
    while (Base->isArray()) {
      Dims += "[" + std::to_string(Base->ArraySize) + "]";
      Base = Base->Element;
    }
    return Base->str() + Dims;
  }
  case FunctionKind: {
    std::string Out = Element->str() + "(";
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Params[I]->str();
    }
    Out += ")";
    return Out;
  }
  }
  return "<bad-type>";
}

TypeContext::TypeContext() {
  VoidTy = make(Type::VoidKind);
  CharTy = make(Type::CharKind);
  IntTy = make(Type::IntKind);
  FloatTy = make(Type::FloatKind);
  DoubleTy = make(Type::DoubleKind);
}

Type *TypeContext::make(Type::Kind K) {
  AllTypes.push_back(std::unique_ptr<Type>(new Type(K)));
  return AllTypes.back().get();
}

const Type *TypeContext::getPointerType(const Type *Pointee) {
  for (const auto &T : AllTypes)
    if (T->getKind() == Type::PointerKind && T->Element == Pointee)
      return T.get();
  Type *T = make(Type::PointerKind);
  T->Element = Pointee;
  return T;
}

const Type *TypeContext::getArrayType(const Type *Element, int64_t Size) {
  for (const auto &T : AllTypes)
    if (T->getKind() == Type::ArrayKind && T->Element == Element &&
        T->ArraySize == Size)
      return T.get();
  Type *T = make(Type::ArrayKind);
  T->Element = Element;
  T->ArraySize = Size;
  return T;
}

const Type *TypeContext::getFunctionType(const Type *Ret,
                                         std::vector<const Type *> Params) {
  for (const auto &T : AllTypes)
    if (T->getKind() == Type::FunctionKind && T->Element == Ret &&
        T->Params == Params)
      return T.get();
  Type *T = make(Type::FunctionKind);
  T->Element = Ret;
  T->Params = std::move(Params);
  return T;
}

const Type *TypeContext::getCommonArithmeticType(const Type *LHS,
                                                 const Type *RHS) {
  assert(LHS->isArithmetic() && RHS->isArithmetic() &&
         "common type of non-arithmetic operands");
  if (LHS->isDouble() || RHS->isDouble())
    return DoubleTy;
  if (LHS->isFloat() || RHS->isFloat())
    return FloatTy;
  // char promotes to int.
  return IntTy;
}

const Type *TypeContext::decay(const Type *Ty) {
  if (Ty->isArray())
    return getPointerType(Ty->getElementType());
  return Ty;
}
