//===----------------------------------------------------------------------===//
///
/// \file
/// The type system shared by the C front end and the intermediate language.
/// The paper notes that the type system is part of the common code between
/// the C and Fortran environments; here it is a standalone module that both
/// the AST and the IL depend on.
///
/// Types are interned in a TypeContext: two structurally identical types are
/// the same pointer, so type equality is pointer equality.  The machine
/// model is the 1988 Titan: char is 1 byte, int/float/pointers are 4 bytes,
/// double is 8 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_TYPES_TYPE_H
#define TCC_TYPES_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tcc {

class TypeContext;

/// Structural type for C values and IL expressions.
class Type {
public:
  enum Kind : uint8_t {
    VoidKind,
    CharKind,
    IntKind,
    FloatKind,
    DoubleKind,
    PointerKind,
    ArrayKind,
    FunctionKind,
  };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == VoidKind; }
  bool isChar() const { return TheKind == CharKind; }
  bool isInt() const { return TheKind == IntKind; }
  bool isFloat() const { return TheKind == FloatKind; }
  bool isDouble() const { return TheKind == DoubleKind; }
  bool isPointer() const { return TheKind == PointerKind; }
  bool isArray() const { return TheKind == ArrayKind; }
  bool isFunction() const { return TheKind == FunctionKind; }

  bool isInteger() const { return isChar() || isInt(); }
  bool isFloating() const { return isFloat() || isDouble(); }
  bool isArithmetic() const { return isInteger() || isFloating(); }
  bool isScalar() const { return isArithmetic() || isPointer(); }

  /// For pointers the pointee, for arrays the element type, for functions
  /// the return type; null otherwise.
  const Type *getElementType() const { return Element; }

  /// For arrays, the declared element count (0 for unsized `[]`).
  int64_t getArraySize() const {
    assert(isArray() && "getArraySize() on non-array type");
    return ArraySize;
  }

  /// For function types, the parameter types in order.
  const std::vector<const Type *> &getParamTypes() const {
    assert(isFunction() && "getParamTypes() on non-function type");
    return Params;
  }

  /// Size in bytes on the simulated Titan.  Arrays are element-size times
  /// count; functions and void have no size (asserts).
  int64_t getSizeInBytes() const;

  /// Renders a C-like spelling, e.g. "float*" or "int[10][4]".
  std::string str() const;

private:
  friend class TypeContext;
  Type(Kind K) : TheKind(K) {}

  Kind TheKind;
  const Type *Element = nullptr;
  int64_t ArraySize = 0;
  std::vector<const Type *> Params;
};

/// Owns and interns all types for one compilation.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *getVoidType() const { return VoidTy; }
  const Type *getCharType() const { return CharTy; }
  const Type *getIntType() const { return IntTy; }
  const Type *getFloatType() const { return FloatTy; }
  const Type *getDoubleType() const { return DoubleTy; }

  const Type *getPointerType(const Type *Pointee);
  const Type *getArrayType(const Type *Element, int64_t Size);
  const Type *getFunctionType(const Type *Ret,
                              std::vector<const Type *> Params);

  /// The usual C arithmetic conversion result for a binary operation on
  /// \p LHS and \p RHS (char promotes to int; float+double gives double...).
  const Type *getCommonArithmeticType(const Type *LHS, const Type *RHS);

  /// If \p Ty is an array, the pointer type it decays to in expression
  /// context; otherwise \p Ty itself.
  const Type *decay(const Type *Ty);

private:
  Type *make(Type::Kind K);

  std::vector<std::unique_ptr<Type>> AllTypes;
  const Type *VoidTy;
  const Type *CharTy;
  const Type *IntTy;
  const Type *FloatTy;
  const Type *DoubleTy;
};

} // namespace tcc

#endif // TCC_TYPES_TYPE_H
