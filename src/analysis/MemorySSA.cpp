#include "analysis/MemorySSA.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

namespace {

PointsToSet unknownSet() {
  PointsToSet S;
  S.Unknown = true;
  return S;
}

/// Union of contents of every object in \p Targets (the value loaded
/// through an address that resolves to \p Targets).
PointsToSet loadedFrom(const PointsToSet &Targets, const PointsToInfo &PT) {
  if (Targets.Unknown)
    return unknownSet();
  PointsToSet Out;
  for (const Symbol *O : Targets.Objects)
    Out.merge(PT.pointsTo(O));
  return Out;
}

} // namespace

PointsToSet MemorySSA::resolveAddress(const Expr *Addr,
                                      const PointsToInfo &PT) {
  switch (Addr->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::TripletKind:
    return {}; // no nameable object; proves nothing either way
  case Expr::VarRefKind: {
    const Symbol *Sym = static_cast<const VarRefExpr *>(Addr)->getSymbol();
    if (Sym->getType()->isArray()) {
      PointsToSet S;
      S.Objects.insert(Sym);
      return S;
    }
    if (Sym->getType()->isFloating())
      return {};
    return PT.pointsTo(Sym); // copy
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<const BinaryExpr *>(Addr);
    if (B->getOp() == OpCode::Add || B->getOp() == OpCode::Sub) {
      PointsToSet L = resolveAddress(B->getLHS(), PT);
      L.merge(resolveAddress(B->getRHS(), PT));
      return L;
    }
    PointsToSet L = resolveAddress(B->getLHS(), PT);
    PointsToSet R = resolveAddress(B->getRHS(), PT);
    if (L.empty() && R.empty())
      return {};
    return unknownSet();
  }
  case Expr::UnaryKind: {
    auto *U = static_cast<const UnaryExpr *>(Addr);
    PointsToSet Op = resolveAddress(U->getOperand(), PT);
    if (U->getOp() == OpCode::Neg || Op.empty())
      return Op;
    return unknownSet();
  }
  case Expr::CastKind:
    return resolveAddress(static_cast<const CastExpr *>(Addr)->getOperand(),
                          PT);
  case Expr::DerefKind:
    return loadedFrom(
        resolveAddress(static_cast<const DerefExpr *>(Addr)->getAddr(), PT),
        PT);
  case Expr::IndexKind: {
    auto *I = static_cast<const IndexExpr *>(Addr);
    const Expr *Base = I->getBase();
    if (Base->getKind() == Expr::VarRefKind && Base->getType()->isArray()) {
      const Symbol *Arr = static_cast<const VarRefExpr *>(Base)->getSymbol();
      return PT.pointsTo(Arr); // pointer loaded out of the array
    }
    if (Base->getKind() == Expr::DerefKind)
      return loadedFrom(
          resolveAddress(static_cast<const DerefExpr *>(Base)->getAddr(),
                         PT),
          PT);
    return unknownSet();
  }
  case Expr::AddrOfKind: {
    const Expr *LV = static_cast<const AddrOfExpr *>(Addr)->getLValue();
    if (LV->getKind() == Expr::VarRefKind) {
      PointsToSet S;
      S.Objects.insert(static_cast<const VarRefExpr *>(LV)->getSymbol());
      return S;
    }
    if (LV->getKind() == Expr::IndexKind) {
      const Expr *Base = static_cast<const IndexExpr *>(LV)->getBase();
      if (Base->getKind() == Expr::VarRefKind &&
          Base->getType()->isArray()) {
        PointsToSet S;
        S.Objects.insert(static_cast<const VarRefExpr *>(Base)->getSymbol());
        return S;
      }
      if (Base->getKind() == Expr::DerefKind)
        return resolveAddress(
            static_cast<const DerefExpr *>(Base)->getAddr(), PT);
    }
    if (LV->getKind() == Expr::DerefKind) // &*p == p
      return resolveAddress(static_cast<const DerefExpr *>(LV)->getAddr(),
                            PT);
    return unknownSet();
  }
  }
  return unknownSet();
}

void MemorySSA::collectFromExpr(const Stmt *S, const Expr *E,
                                bool IsStoreTarget, const PointsToInfo &PT) {
  switch (E->getKind()) {
  case Expr::DerefKind: {
    auto *D = static_cast<const DerefExpr *>(E);
    collectFromExpr(S, D->getAddr(), false, PT);
    if (D->getType()->isArray())
      return; // row address, not an element access
    Access A;
    A.S = S;
    A.Site = E;
    A.IsWrite = IsStoreTarget;
    A.MayTouch = resolveAddress(D->getAddr(), PT);
    if (A.MayTouch.empty())
      A.MayTouch.Unknown = true; // unresolved address touches anything
    BySite[{E, IsStoreTarget}] = static_cast<unsigned>(Accesses.size());
    Accesses.push_back(std::move(A));
    return;
  }
  case Expr::IndexKind: {
    auto *I = static_cast<const IndexExpr *>(E);
    for (const Expr *Sub : I->getSubscripts())
      collectFromExpr(S, Sub, false, PT);
    const Expr *Base = I->getBase();
    if (Base->getKind() == Expr::DerefKind)
      collectFromExpr(S, static_cast<const DerefExpr *>(Base)->getAddr(),
                      false, PT);
    Access A;
    A.S = S;
    A.Site = E;
    A.IsWrite = IsStoreTarget;
    if (Base->getKind() == Expr::VarRefKind && Base->getType()->isArray())
      A.MayTouch.Objects.insert(
          static_cast<const VarRefExpr *>(Base)->getSymbol());
    else if (Base->getKind() == Expr::DerefKind)
      A.MayTouch = resolveAddress(
          static_cast<const DerefExpr *>(Base)->getAddr(), PT);
    else
      A.MayTouch.Unknown = true;
    if (A.MayTouch.empty())
      A.MayTouch.Unknown = true;
    BySite[{E, IsStoreTarget}] = static_cast<unsigned>(Accesses.size());
    Accesses.push_back(std::move(A));
    return;
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<const BinaryExpr *>(E);
    collectFromExpr(S, B->getLHS(), false, PT);
    collectFromExpr(S, B->getRHS(), false, PT);
    return;
  }
  case Expr::UnaryKind:
    collectFromExpr(S, static_cast<const UnaryExpr *>(E)->getOperand(),
                    false, PT);
    return;
  case Expr::CastKind:
    collectFromExpr(S, static_cast<const CastExpr *>(E)->getOperand(),
                    false, PT);
    return;
  case Expr::AddrOfKind: {
    // Taking an address is not an access, but subscripts inside are reads.
    const Expr *LV = static_cast<const AddrOfExpr *>(E)->getLValue();
    if (LV->getKind() == Expr::IndexKind)
      for (const Expr *Sub :
           static_cast<const IndexExpr *>(LV)->getSubscripts())
        collectFromExpr(S, Sub, false, PT);
    return;
  }
  case Expr::TripletKind: {
    auto *T = static_cast<const TripletExpr *>(E);
    collectFromExpr(S, T->getLo(), false, PT);
    collectFromExpr(S, T->getHi(), false, PT);
    collectFromExpr(S, T->getStride(), false, PT);
    return;
  }
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::VarRefKind:
    return;
  }
}

MemorySSA::MemorySSA(const Function &F, const PointsToInfo &PT) {
  forEachStmt(F.getBody(), [&](const Stmt *S) {
    if (S->getKind() == Stmt::AssignKind) {
      auto *A = static_cast<const AssignStmt *>(S);
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        collectFromExpr(S, A->getLHS(), /*IsStoreTarget=*/true, PT);
      collectFromExpr(S, A->getRHS(), false, PT);
    } else {
      forEachExprSlot(const_cast<Stmt *>(S), [&](Expr *&Slot) {
        collectFromExpr(S, Slot, false, PT);
      });
    }
  });

  // Def-use and def-def edges: every store connects to every access it
  // may overlap.  Flow-insensitive — an edge means "these can touch the
  // same object", exactly what the dependence tester needs to rule pairs
  // in or out.
  for (unsigned I = 0; I < Accesses.size(); ++I) {
    for (unsigned J = I + 1; J < Accesses.size(); ++J) {
      const Access &A = Accesses[I];
      const Access &B = Accesses[J];
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (PointsToSet::provablyDisjoint(A.MayTouch, B.MayTouch)) {
        ++DisjointPairs;
        continue;
      }
      Edge E;
      E.Def = A.IsWrite ? I : J;
      E.Use = A.IsWrite ? J : I;
      Edges.push_back(E);
    }
  }
}

const MemorySSA::Access *MemorySSA::accessAt(const Expr *Site,
                                             bool IsWrite) const {
  auto It = BySite.find({Site, IsWrite});
  return It == BySite.end() ? nullptr : &Accesses[It->second];
}
