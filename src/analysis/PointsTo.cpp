#include "analysis/PointsTo.h"

#include <algorithm>
#include <deque>
#include <utility>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

//===----------------------------------------------------------------------===//
// PointsToSet
//===----------------------------------------------------------------------===//

bool PointsToSet::merge(const PointsToSet &RHS) {
  bool Changed = false;
  if (RHS.Unknown && !Unknown) {
    Unknown = true;
    Changed = true;
  }
  for (const Symbol *O : RHS.Objects)
    if (Objects.insert(O).second)
      Changed = true;
  return Changed;
}

bool PointsToSet::provablyDisjoint(const PointsToSet &A, const PointsToSet &B) {
  if (A.Unknown || B.Unknown)
    return false;
  // An empty set means no address was ever observed flowing here (dead or
  // externally-entered code): it proves nothing.
  if (A.Objects.empty() || B.Objects.empty())
    return false;
  for (const Symbol *O : A.Objects)
    if (B.Objects.count(O))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// PointsToInfo
//===----------------------------------------------------------------------===//

const PointsToSet &PointsToInfo::pointsTo(const Symbol *P) const {
  auto It = Sets.find(P);
  return It == Sets.end() ? UnknownSet : It->second;
}

bool PointsToInfo::mayAlias(const Symbol *P, const Symbol *Q) const {
  if (P == Q)
    return true;
  return !PointsToSet::provablyDisjoint(pointsTo(P), pointsTo(Q));
}

bool PointsToInfo::mayPointTo(const Symbol *P, const Symbol *Obj) const {
  const PointsToSet &S = pointsTo(P);
  if (S.Unknown || S.Objects.empty())
    return true;
  return S.contains(Obj);
}

unsigned PointsToInfo::resolvedPointers() const {
  unsigned N = 0;
  for (const auto &[Sym, Set] : Sets)
    if (Sym->getType()->isPointer() && !Set.Unknown && !Set.Objects.empty())
      ++N;
  return N;
}

std::string PointsToInfo::str() const {
  std::string Out;
  for (const auto &[Sym, Set] : Sets) {
    if (Set.empty())
      continue;
    Out += Sym->getName();
    Out += " -> {";
    bool First = true;
    for (const Symbol *O : Set.Objects) {
      if (!First)
        Out += ' ';
      First = false;
      Out += O->getName();
    }
    if (Set.Unknown) {
      if (!First)
        Out += ' ';
      Out += "unknown";
    }
    Out += "}\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Constraint solver
//===----------------------------------------------------------------------===//

namespace {

/// The syntactic value of an expression, reduced to constraint operands:
/// object addresses it produces directly, nodes whose contents flow into
/// it, and whether it may be an unmodeled pointer.
struct RVal {
  std::vector<const Symbol *> Objects;
  std::vector<unsigned> Copies;
  bool Unknown = false;

  bool empty() const { return Objects.empty() && Copies.empty() && !Unknown; }
};

class Solver {
public:
  explicit Solver(const Program &P) : Prog(P) {}

  void run();

  /// The solved per-symbol sets (valid after run()).
  const std::map<const Symbol *, unsigned, SymbolOrder> &nodes() const {
    return NodeOf;
  }
  const PointsToSet &contentsOf(unsigned N) const { return C[N]; }

private:
  // -- Node management ----------------------------------------------------
  unsigned nodeOf(const Symbol *S) {
    auto It = NodeOf.find(S);
    if (It != NodeOf.end())
      return It->second;
    unsigned N = freshNode();
    NodeOf.emplace(S, N);
    return N;
  }
  unsigned freshNode() {
    unsigned N = static_cast<unsigned>(C.size());
    C.emplace_back();
    Succ.emplace_back();
    LoadTo.emplace_back();
    StoreFrom.emplace_back();
    Escaped.push_back(false);
    return N;
  }

  // -- Constraint registration --------------------------------------------
  /// Registers \p Obj as a pointed-to object and returns its node.  Once
  /// a store through an unknown pointer has been seen, every object's
  /// contents are unknown — including objects discovered afterwards.
  unsigned noteObject(const Symbol *Obj) {
    unsigned N = nodeOf(Obj);
    if (ObjectNodes.insert(N).second && GlobalStoreUnknownApplied)
      addUnknown(N);
    return N;
  }
  void addObject(unsigned Dst, const Symbol *Obj) {
    noteObject(Obj);
    if (C[Dst].Objects.insert(Obj).second)
      push(Dst);
  }
  void addUnknown(unsigned Dst) {
    if (!C[Dst].Unknown) {
      C[Dst].Unknown = true;
      push(Dst);
    }
  }
  bool addCopy(unsigned Src, unsigned Dst) {
    if (Src == Dst || !EdgeSeen.insert({Src, Dst}).second)
      return false;
    Succ[Src].push_back(Dst);
    if (C[Dst].merge(C[Src]))
      push(Dst);
    return true;
  }
  void addLoad(unsigned Ptr, unsigned Dst) {
    LoadTo[Ptr].push_back(Dst);
    push(Ptr);
  }
  void addStore(unsigned Ptr, unsigned Src) {
    StoreFrom[Ptr].push_back(Src);
    push(Ptr);
  }
  void markEscaped(unsigned N) {
    if (Escaped[N])
      return;
    Escaped[N] = true;
    push(N);
  }
  void escapeObject(const Symbol *Obj) {
    unsigned N = noteObject(Obj);
    addUnknown(N);
    markEscaped(N);
  }

  // -- Expression harvest -------------------------------------------------
  RVal evalExpr(Expr *E);
  RVal loadFrom(const RVal &Addr);
  void assignInto(unsigned Dst, const RVal &V);
  void storeThrough(const RVal &Addr, const RVal &V);
  void escapeRVal(const RVal &V);
  void harvestStmt(Stmt *S);

  // -- Fixpoint -----------------------------------------------------------
  void push(unsigned N) {
    if (N < InWork.size() && InWork[N])
      return;
    if (N >= InWork.size())
      InWork.resize(C.size(), false);
    InWork[N] = true;
    Work.push_back(N);
  }
  void applyGlobalStoreUnknown() {
    // A store went through a pointer that may point anywhere: every
    // nameable object's contents may have been overwritten with it.
    if (GlobalStoreUnknownApplied)
      return;
    GlobalStoreUnknownApplied = true;
    for (unsigned N : ObjectNodes)
      addUnknown(N);
  }
  void process(unsigned N);

  const Program &Prog;
  std::map<const Symbol *, unsigned, SymbolOrder> NodeOf;
  std::vector<PointsToSet> C;
  std::vector<std::vector<unsigned>> Succ;
  std::vector<std::vector<unsigned>> LoadTo;
  std::vector<std::vector<unsigned>> StoreFrom;
  std::vector<bool> Escaped;
  std::set<std::pair<unsigned, unsigned>> EdgeSeen;
  std::set<unsigned> ObjectNodes;
  std::deque<unsigned> Work;
  std::vector<bool> InWork;
  bool PendingGlobalStoreUnknown = false;
  bool GlobalStoreUnknownApplied = false;
};

RVal Solver::evalExpr(Expr *E) {
  // A floating value can never carry an address.
  if (E->getType() && E->getType()->isFloating())
    return {};
  switch (E->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::TripletKind:
    return {};
  case Expr::VarRefKind: {
    Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
    RVal V;
    if (Sym->getType()->isArray()) {
      V.Objects.push_back(Sym); // array decay names the object
      return V;
    }
    if (Sym->getType()->isFloating())
      return {};
    // Integers are tracked too: addresses may round-trip through them.
    V.Copies.push_back(nodeOf(Sym));
    return V;
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(E);
    RVal L = evalExpr(B->getLHS());
    RVal R = evalExpr(B->getRHS());
    if (B->getOp() == OpCode::Add || B->getOp() == OpCode::Sub) {
      // Pointer arithmetic stays within the pointed-to object.
      L.Objects.insert(L.Objects.end(), R.Objects.begin(), R.Objects.end());
      L.Copies.insert(L.Copies.end(), R.Copies.begin(), R.Copies.end());
      L.Unknown |= R.Unknown;
      return L;
    }
    // Any other operator mangles an address beyond tracking.
    if (L.empty() && R.empty())
      return {};
    RVal V;
    V.Unknown = true;
    return V;
  }
  case Expr::UnaryKind: {
    auto *U = static_cast<UnaryExpr *>(E);
    RVal Op = evalExpr(U->getOperand());
    if (U->getOp() == OpCode::Neg || Op.empty())
      return Op;
    RVal V;
    V.Unknown = true;
    return V;
  }
  case Expr::CastKind:
    return evalExpr(static_cast<CastExpr *>(E)->getOperand());
  case Expr::DerefKind:
    return loadFrom(evalExpr(static_cast<DerefExpr *>(E)->getAddr()));
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(E);
    Expr *Base = I->getBase();
    if (Base->getKind() == Expr::VarRefKind &&
        Base->getType()->isArray()) {
      // a[i] reads object a's contents.
      Symbol *Arr = static_cast<VarRefExpr *>(Base)->getSymbol();
      RVal V;
      V.Copies.push_back(noteObject(Arr));
      return V;
    }
    if (Base->getKind() == Expr::DerefKind)
      return loadFrom(
          evalExpr(static_cast<DerefExpr *>(Base)->getAddr()));
    RVal V;
    V.Unknown = true;
    return V;
  }
  case Expr::AddrOfKind: {
    Expr *LV = static_cast<AddrOfExpr *>(E)->getLValue();
    if (LV->getKind() == Expr::VarRefKind) {
      RVal V;
      V.Objects.push_back(static_cast<VarRefExpr *>(LV)->getSymbol());
      return V;
    }
    if (LV->getKind() == Expr::IndexKind) {
      Expr *Base = static_cast<IndexExpr *>(LV)->getBase();
      if (Base->getKind() == Expr::VarRefKind &&
          Base->getType()->isArray()) {
        RVal V;
        V.Objects.push_back(static_cast<VarRefExpr *>(Base)->getSymbol());
        return V;
      }
      if (Base->getKind() == Expr::DerefKind)
        return evalExpr(static_cast<DerefExpr *>(Base)->getAddr());
    }
    if (LV->getKind() == Expr::DerefKind) // &*p == p
      return evalExpr(static_cast<DerefExpr *>(LV)->getAddr());
    RVal V;
    V.Unknown = true;
    return V;
  }
  }
  RVal V;
  V.Unknown = true;
  return V;
}

RVal Solver::loadFrom(const RVal &Addr) {
  if (Addr.empty())
    return {};
  unsigned T = freshNode();
  for (const Symbol *O : Addr.Objects)
    addCopy(noteObject(O), T);
  for (unsigned Ptr : Addr.Copies)
    addLoad(Ptr, T);
  if (Addr.Unknown)
    addUnknown(T);
  RVal V;
  V.Copies.push_back(T);
  return V;
}

void Solver::assignInto(unsigned Dst, const RVal &V) {
  for (const Symbol *O : V.Objects)
    addObject(Dst, O);
  for (unsigned Src : V.Copies)
    addCopy(Src, Dst);
  if (V.Unknown)
    addUnknown(Dst);
}

void Solver::storeThrough(const RVal &Addr, const RVal &V) {
  if (V.empty() || Addr.empty())
    return;
  unsigned Val = freshNode();
  assignInto(Val, V);
  for (const Symbol *O : Addr.Objects)
    addCopy(Val, noteObject(O));
  for (unsigned Ptr : Addr.Copies)
    addStore(Ptr, Val);
  if (Addr.Unknown)
    PendingGlobalStoreUnknown = true;
}

void Solver::escapeRVal(const RVal &V) {
  for (const Symbol *O : V.Objects)
    escapeObject(O);
  for (unsigned N : V.Copies)
    markEscaped(N);
}

void Solver::harvestStmt(Stmt *S) {
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    auto *A = static_cast<AssignStmt *>(S);
    RVal V = evalExpr(A->getRHS());
    Expr *LHS = A->getLHS();
    switch (LHS->getKind()) {
    case Expr::VarRefKind: {
      Symbol *Dst = static_cast<VarRefExpr *>(LHS)->getSymbol();
      if (!Dst->getType()->isFloating())
        assignInto(nodeOf(Dst), V);
      break;
    }
    case Expr::DerefKind:
      storeThrough(evalExpr(static_cast<DerefExpr *>(LHS)->getAddr()), V);
      break;
    case Expr::IndexKind: {
      Expr *Base = static_cast<IndexExpr *>(LHS)->getBase();
      RVal Addr;
      if (Base->getKind() == Expr::VarRefKind &&
          Base->getType()->isArray())
        Addr.Objects.push_back(static_cast<VarRefExpr *>(Base)->getSymbol());
      else if (Base->getKind() == Expr::DerefKind)
        Addr = evalExpr(static_cast<DerefExpr *>(Base)->getAddr());
      else
        Addr.Unknown = true;
      storeThrough(Addr, V);
      break;
    }
    default:
      break;
    }
    break;
  }
  case Stmt::CallKind: {
    auto *Call = static_cast<CallStmt *>(S);
    const Function *Callee = Prog.findFunction(Call->getCallee());
    if (Callee && Callee->getParams().size() == Call->getArgs().size()) {
      // Closed-world call: bind arguments to parameters, returns to the
      // result.
      for (size_t I = 0; I < Call->getArgs().size(); ++I) {
        Symbol *Param = Callee->getParams()[I];
        if (!Param->getType()->isFloating())
          assignInto(nodeOf(Param), evalExpr(Call->getArgs()[I]));
      }
      if (Symbol *Result = Call->getResult()) {
        if (!Result->getType()->isFloating()) {
          forEachStmt(Callee->getBody(), [&](const Stmt *Sub) {
            if (Sub->getKind() != Stmt::ReturnKind)
              return;
            Expr *Value =
                static_cast<const ReturnStmt *>(Sub)->getValue();
            if (Value)
              assignInto(nodeOf(Result), evalExpr(Value));
          });
        }
      }
    } else {
      // External (or mismatched) call: every pointed-to object escapes
      // and the result may be any pointer.
      for (Expr *Arg : Call->getArgs())
        escapeRVal(evalExpr(Arg));
      if (Symbol *Result = Call->getResult())
        if (!Result->getType()->isFloating())
          addUnknown(nodeOf(Result));
    }
    break;
  }
  default:
    break; // conditions and bounds are pure reads: no pointer flow
  }
}

void Solver::process(unsigned N) {
  // Snapshot: nodeOf() can mint nodes (reallocating every per-node vector)
  // and addCopy() can grow this node's own lists mid-iteration.
  const std::vector<unsigned> SuccList = Succ[N];
  const std::vector<unsigned> Loads = LoadTo[N];
  const std::vector<unsigned> Stores = StoreFrom[N];
  const PointsToSet Cur = C[N];

  for (unsigned Dst : SuccList)
    if (C[Dst].merge(Cur))
      push(Dst);
  for (unsigned Dst : Loads) {
    if (Cur.Unknown)
      addUnknown(Dst);
    for (const Symbol *O : Cur.Objects)
      addCopy(noteObject(O), Dst);
  }
  for (unsigned Src : Stores) {
    if (Cur.Unknown)
      applyGlobalStoreUnknown();
    for (const Symbol *O : Cur.Objects)
      addCopy(Src, noteObject(O));
  }
  if (Escaped[N])
    for (const Symbol *O : Cur.Objects)
      escapeObject(O);
}

void Solver::run() {
  // Harvest constraints from every function.  Symbols are unique across
  // the program, so one constraint graph covers all of it.
  for (const auto &F : Prog.getFunctions()) {
    if (F->getName() == "main")
      for (Symbol *Param : F->getParams())
        if (!Param->getType()->isFloating())
          addUnknown(nodeOf(Param));
    forEachStmt(const_cast<Function &>(*F).getBody(),
                [this](Stmt *S) { harvestStmt(S); });
  }
  if (PendingGlobalStoreUnknown)
    applyGlobalStoreUnknown();

  // Seed the worklist with everything once: constraints registered before
  // their operands had contents still need a first pass.
  for (unsigned N = 0; N < C.size(); ++N)
    push(N);

  while (!Work.empty()) {
    unsigned N = Work.front();
    Work.pop_front();
    InWork[N] = false;
    process(N);
  }
}

} // namespace

PointsToInfo analysis::computePointsTo(const Program &P) {
  Solver S(P);
  S.run();
  PointsToInfo Info;
  for (const auto &[Sym, N] : S.nodes())
    Info.Sets.emplace(Sym, S.contentsOf(N));
  Info.UnknownSet.Unknown = true;
  return Info;
}
