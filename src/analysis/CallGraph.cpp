#include "analysis/CallGraph.h"

#include <functional>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

const std::set<std::string> CallGraph::Empty;

CallGraph::CallGraph(const Program &P) {
  for (const auto &F : P.getFunctions()) {
    std::set<std::string> &Out = Callees[F->getName()];
    forEachStmt(F->getBody(), [&Out](const Stmt *S) {
      if (S->getKind() == Stmt::CallKind)
        Out.insert(static_cast<const CallStmt *>(S)->getCallee());
    });
  }
}

const std::set<std::string> &
CallGraph::calleesOf(const std::string &Caller) const {
  auto It = Callees.find(Caller);
  return It == Callees.end() ? Empty : It->second;
}

bool CallGraph::isRecursive(const std::string &Name) const {
  // DFS from Name looking for a path back to Name.
  std::set<std::string> Visited;
  std::function<bool(const std::string &)> Walk =
      [&](const std::string &Cur) -> bool {
    for (const std::string &Callee : calleesOf(Cur)) {
      if (Callee == Name)
        return true;
      if (Visited.insert(Callee).second && Walk(Callee))
        return true;
    }
    return false;
  };
  return Walk(Name);
}

std::vector<std::string> CallGraph::bottomUpOrder() const {
  std::vector<std::string> Order;
  std::set<std::string> Done;
  std::set<std::string> OnStack;
  std::function<void(const std::string &)> Visit =
      [&](const std::string &Name) {
        if (Done.count(Name) || OnStack.count(Name))
          return;
        OnStack.insert(Name);
        for (const std::string &Callee : calleesOf(Name))
          if (Callees.count(Callee)) // only functions with bodies
            Visit(Callee);
        OnStack.erase(Name);
        Done.insert(Name);
        Order.push_back(Name);
      };
  for (const auto &[Name, _] : Callees)
    Visit(Name);
  return Order;
}
