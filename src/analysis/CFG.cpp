#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

CFG::CFG(Function &F) {
  // Entry and exit nodes first.
  Nodes.emplace_back();
  Nodes.emplace_back();

  // Pass 1: a node per statement, and the label name map.
  forEachStmt(F.getBody(), [this](Stmt *S) {
    unsigned Id = static_cast<unsigned>(Nodes.size());
    Nodes.emplace_back();
    Nodes.back().S = S;
    NodeOf[S] = Id;
    if (S->getKind() == Stmt::LabelKind)
      LabelNodes[static_cast<LabelStmt *>(S)->getName()] = Id;
  });

  // Pass 2: wire edges.
  unsigned First = wireList(F.getBody().Stmts, ExitId);
  addEdge(EntryId, First);
}

void CFG::addEdge(unsigned From, unsigned To) {
  if (std::find(Nodes[From].Succs.begin(), Nodes[From].Succs.end(), To) !=
      Nodes[From].Succs.end())
    return;
  Nodes[From].Succs.push_back(To);
  Nodes[To].Preds.push_back(From);
}

unsigned CFG::wireList(const std::vector<Stmt *> &Stmts, unsigned Follow) {
  unsigned Cur = Follow;
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
    Cur = wire(*It, Cur);
  return Cur;
}

unsigned CFG::wire(Stmt *S, unsigned Follow) {
  unsigned Id = NodeOf.at(S);
  switch (S->getKind()) {
  case Stmt::AssignKind:
  case Stmt::CallKind:
  case Stmt::LabelKind:
    addEdge(Id, Follow);
    return Id;
  case Stmt::GotoKind: {
    auto *G = static_cast<GotoStmt *>(S);
    auto It = LabelNodes.find(G->getTarget());
    // An unresolved goto (malformed input) conservatively exits.
    addEdge(Id, It != LabelNodes.end() ? It->second : ExitId);
    return Id;
  }
  case Stmt::ReturnKind:
    addEdge(Id, ExitId);
    return Id;
  case Stmt::IfKind: {
    auto *I = static_cast<IfStmt *>(S);
    unsigned ThenEntry = wireList(I->getThen().Stmts, Follow);
    unsigned ElseEntry = wireList(I->getElse().Stmts, Follow);
    addEdge(Id, ThenEntry);
    addEdge(Id, ElseEntry);
    return Id;
  }
  case Stmt::WhileKind: {
    auto *W = static_cast<WhileStmt *>(S);
    unsigned BodyEntry = wireList(W->getBody().Stmts, Id);
    addEdge(Id, BodyEntry);
    addEdge(Id, Follow);
    return Id;
  }
  case Stmt::DoLoopKind: {
    auto *D = static_cast<DoLoopStmt *>(S);
    unsigned BodyEntry = wireList(D->getBody().Stmts, Id);
    addEdge(Id, BodyEntry);
    addEdge(Id, Follow);
    return Id;
  }
  }
  assert(false && "unknown statement kind in CFG wiring");
  return Follow;
}

unsigned CFG::idOf(const Stmt *S) const {
  auto It = NodeOf.find(S);
  assert(It != NodeOf.end() && "statement is not in the CFG");
  return It->second;
}

bool CFG::hasBranchIntoBlock(Function &F, const Block &Body) {
  std::set<std::string> InnerLabels;
  forEachStmt(Body, [&InnerLabels](const Stmt *S) {
    if (S->getKind() == Stmt::LabelKind)
      InnerLabels.insert(static_cast<const LabelStmt *>(S)->getName());
  });
  if (InnerLabels.empty())
    return false;

  // Collect gotos inside the body; any other goto targeting an inner label
  // is a branch into the loop.
  std::set<const Stmt *> InnerStmts;
  forEachStmt(Body, [&InnerStmts](const Stmt *S) { InnerStmts.insert(S); });

  bool Found = false;
  forEachStmt(F.getBody(), [&](const Stmt *S) {
    if (Found || S->getKind() != Stmt::GotoKind)
      return;
    if (InnerStmts.count(S))
      return;
    const auto *G = static_cast<const GotoStmt *>(S);
    if (InnerLabels.count(G->getTarget()))
      Found = true;
  });
  return Found;
}
