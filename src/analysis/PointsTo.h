//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive Andersen-style points-to analysis over the IL.
///
/// The abstract objects are the program's named storage locations: global
/// and static symbols, arrays, and any local whose address is taken.  A
/// pointer-typed symbol accumulates a set of objects it may point to; the
/// analysis iterates subset constraints harvested from every function to a
/// fixpoint:
///
///     p = &x / p = a (array decay)      pts(p) ⊇ {x}
///     p = q / p = q + e / p = (T)q      pts(p) ⊇ pts(q)
///     p = *q / p = a[i]                 pts(p) ⊇ contents(o), o ∈ pts(q)
///     *p = q / a[i] = q                 contents(o) ⊇ pts(q), o ∈ pts(p)
///     f(..., q, ...)  (f in-program)    pts(param_i(f)) ⊇ pts(q)
///     r = f(...)      (f in-program)    pts(r) ⊇ returns(f)
///
/// Calls to functions outside the program (simulator intrinsics, absent
/// externs) and functions whose address context is invisible (never called
/// from inside the program, other than main) are modeled with the
/// distinguished Unknown element: a set containing Unknown may point
/// anywhere, and clients must treat it as aliasing everything.  The
/// analysis is sound because it only ever *adds* to points-to sets — it
/// never prunes a may-point relation the IL can realize.
///
/// This is the bottom layer of the precise memory-dependence stack
/// (DESIGN.md §11): MemorySSA consumes the object sets to give every
/// memory access a may-touch set, and the MemSSA DependenceAnalysisImpl
/// turns disjoint may-touch sets into NoAlias verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ANALYSIS_POINTSTO_H
#define TCC_ANALYSIS_POINTSTO_H

#include "il/IL.h"

#include <map>
#include <set>
#include <string>

namespace tcc {
namespace analysis {

/// A may-point-to set: a set of named objects plus an Unknown flag.  When
/// \c Unknown is set the pointer may additionally point at storage the
/// analysis cannot name (externally supplied memory, unmodeled values),
/// and every alias query against it must answer "may alias".
struct PointsToSet {
  std::set<const il::Symbol *, il::SymbolOrder> Objects;
  bool Unknown = false;

  bool empty() const { return Objects.empty() && !Unknown; }
  bool contains(const il::Symbol *S) const { return Objects.count(S) != 0; }

  /// Adds \p RHS into this set; true if anything changed.
  bool merge(const PointsToSet &RHS);

  /// True when the two sets cannot name a common object.  A set with the
  /// Unknown flag — or an *empty* set, which means "no address was ever
  /// observed flowing here" and typically marks dead or external code —
  /// never proves disjointness.
  static bool provablyDisjoint(const PointsToSet &A, const PointsToSet &B);
};

/// The fixpoint result for one whole program.
class PointsToInfo {
public:
  /// The may-point-to set of pointer symbol \p P.  Symbols the analysis
  /// never saw (or non-pointers) come back as Unknown.
  const PointsToSet &pointsTo(const il::Symbol *P) const;

  /// True unless the two pointers provably point into disjoint object
  /// sets.
  bool mayAlias(const il::Symbol *P, const il::Symbol *Q) const;

  /// True unless pointer \p P provably never points at object \p Obj.
  bool mayPointTo(const il::Symbol *P, const il::Symbol *Obj) const;

  /// Number of pointer symbols with a resolved (non-empty, non-Unknown)
  /// points-to set — the analysis' precision yield, surfaced in stats.
  unsigned resolvedPointers() const;
  unsigned trackedPointers() const { return static_cast<unsigned>(Sets.size()); }

  /// Debug rendering: "p -> {a b}", "q -> {unknown}" per line.
  std::string str() const;

private:
  friend PointsToInfo computePointsTo(const il::Program &P);

  std::map<const il::Symbol *, PointsToSet, il::SymbolOrder> Sets;
  PointsToSet UnknownSet; ///< Returned for untracked symbols.
};

/// Runs the constraint harvest and worklist fixpoint over \p P.
PointsToInfo computePointsTo(const il::Program &P);

} // namespace analysis
} // namespace tcc

#endif // TCC_ANALYSIS_POINTSTO_H
