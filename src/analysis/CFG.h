//===----------------------------------------------------------------------===//
///
/// \file
/// Statement-level control flow graph over the IL.
///
/// The paper builds a control flow graph for scalar analysis and uses it to
/// decide, among other things, whether branches enter a loop (a condition
/// for while→DO conversion).  Because the IL keeps loops structured, nodes
/// are IL statements: leaf statements are nodes, and structured statements
/// (If/While/DoLoop) contribute a header node for their condition.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ANALYSIS_CFG_H
#define TCC_ANALYSIS_CFG_H

#include "il/IL.h"

#include <map>
#include <vector>

namespace tcc {
namespace analysis {

class CFG {
public:
  static constexpr unsigned EntryId = 0;
  static constexpr unsigned ExitId = 1;

  struct Node {
    il::Stmt *S = nullptr; ///< Null for entry/exit.
    std::vector<unsigned> Succs;
    std::vector<unsigned> Preds;
  };

  /// Builds the CFG for \p F's current body.
  explicit CFG(il::Function &F);

  const std::vector<Node> &nodes() const { return Nodes; }
  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }

  /// Node id for a statement; asserts that the statement is in the graph.
  unsigned idOf(const il::Stmt *S) const;
  bool contains(const il::Stmt *S) const { return NodeOf.count(S) != 0; }

  const Node &node(unsigned Id) const { return Nodes[Id]; }

  /// True if any goto outside \p Body targets a label inside \p Body — the
  /// "branch into loop" condition that blocks while→DO conversion.
  static bool hasBranchIntoBlock(il::Function &F, const il::Block &Body);

private:
  void addEdge(unsigned From, unsigned To);
  unsigned wireList(const std::vector<il::Stmt *> &Stmts, unsigned Follow);
  unsigned wire(il::Stmt *S, unsigned Follow);

  std::vector<Node> Nodes;
  std::map<const il::Stmt *, unsigned> NodeOf;
  std::map<std::string, unsigned> LabelNodes;
};

} // namespace analysis
} // namespace tcc

#endif // TCC_ANALYSIS_CFG_H
