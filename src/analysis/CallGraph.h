//===----------------------------------------------------------------------===//
///
/// \file
/// Program call graph, used by the inliner to order expansion bottom-up
/// and to guard against infinite inlining of recursion (paper Section 7:
/// "since C permits recursion ... order is very important").
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ANALYSIS_CALLGRAPH_H
#define TCC_ANALYSIS_CALLGRAPH_H

#include "il/IL.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tcc {
namespace analysis {

class CallGraph {
public:
  explicit CallGraph(const il::Program &P);

  /// Callee names invoked (directly) by \p Caller.
  const std::set<std::string> &calleesOf(const std::string &Caller) const;

  /// True if \p Name can transitively reach itself (participates in
  /// recursion).
  bool isRecursive(const std::string &Name) const;

  /// Functions in bottom-up order: callees before callers.  Functions in
  /// recursive cycles appear in an arbitrary relative order within the
  /// cycle.
  std::vector<std::string> bottomUpOrder() const;

private:
  std::map<std::string, std::set<std::string>> Callees;
  static const std::set<std::string> Empty;
};

} // namespace analysis
} // namespace tcc

#endif // TCC_ANALYSIS_CALLGRAPH_H
