//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching definitions and use-def chains over scalar symbols.
///
/// The paper drives "a number of optimizations off the use-def graph":
/// while→DO conversion, induction-variable substitution, constant
/// propagation, and dead-code elimination.  This module computes classic
/// iterative reaching definitions over the statement CFG and exposes
/// per-use chains, plus the incremental patching entry point that the
/// while→DO transformation requires (paper Section 5.2).
///
/// Conservatism:
///  - A call may define every global/static and every address-taken local.
///  - A store through a pointer (Deref/Index lvalue) may define every
///    address-taken scalar and every global scalar.
///  - A use of a symbol whose reaching definitions include the function
///    entry is represented by a null definition statement.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ANALYSIS_USEDEF_H
#define TCC_ANALYSIS_USEDEF_H

#include "analysis/CFG.h"
#include "il/IL.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

namespace tcc {
namespace analysis {

/// Symbols whose address is taken with `&` (scalars only; arrays are
/// always memory objects).
std::set<il::Symbol *> computeAddressTakenScalars(il::Function &F);

/// The scalar symbols a statement strongly defines (assignment to a
/// VarRef; a call's result; a DO loop's index at its header).
std::vector<il::Symbol *> strongDefs(const il::Stmt *S);

/// The scalar symbols whose values a statement uses (all VarRefs in rvalue
/// position, including address computations of stores, conditions and loop
/// bounds).
std::vector<il::Symbol *> usedScalars(const il::Stmt *S);

/// A position-independent snapshot of one function's use-def chains —
/// the shareable/immutable form the compile server keeps hot across
/// requests.  Statements are named by pre-order traversal ordinal and
/// symbols by local-symbol index (globals by name), so an export taken
/// from one il::Function can be imported into a *different* Function
/// object whose serialized IL is byte-identical: identical text implies
/// identical statement traversal and symbol order, which is exactly the
/// content-hash key the caches use.
struct UseDefExport {
  /// A symbol reference: a local's index in Function::getSymbols(), or a
  /// global's name (globals are unique by name per program).
  struct SymKey {
    int32_t LocalIndex = -1; ///< -1 when the symbol is a global.
    std::string GlobalName;
  };
  /// One (user statement, symbol) chain.
  struct Chain {
    uint32_t User = 0; ///< Statement ordinal of the use site.
    uint32_t Sym = 0;  ///< Index into Syms.
    /// Reaching definitions: statement ordinals; -1 encodes the null
    /// "value on entry" definition.
    std::vector<int32_t> Defs;
  };
  std::vector<SymKey> Syms;
  std::vector<Chain> Chains;
};

/// Use-def chains for one function body snapshot.
class UseDefChains {
public:
  /// Builds chains for \p F (constructs a CFG internally).
  explicit UseDefChains(il::Function &F);

  /// Renders the chains position-independently (see UseDefExport).
  /// Returns false — leaving \p Out unspecified — when any chain
  /// references a statement or symbol that cannot be named relative to
  /// \p F (never the case for freshly built chains).
  bool exportChains(const il::Function &F, UseDefExport &Out) const;

  /// Rebuilds chains over \p F from an export taken on a function with
  /// byte-identical serialized IL.  Returns null when \p E does not
  /// resolve against \p F (ordinal out of range, unknown global) — the
  /// caller falls back to a fresh build.
  static std::unique_ptr<UseDefChains> importChains(il::Function &F,
                                                    const UseDefExport &E);

  /// The definitions of \p Sym that reach the use in \p User.  A null
  /// element means "value on entry to the function" (parameter, global, or
  /// uninitialized local).  Returns an empty vector when \p Sym is not
  /// used by \p User.
  const std::vector<const il::Stmt *> &defsReaching(const il::Stmt *User,
                                                    il::Symbol *Sym) const;

  /// All (user statement, symbol) pairs whose chains include \p Def.
  std::vector<std::pair<const il::Stmt *, il::Symbol *>>
  usesOf(const il::Stmt *Def) const;

  /// True if the only definition of \p Sym reaching \p User is \p Def.
  bool isOnlyReachingDef(const il::Stmt *User, il::Symbol *Sym,
                         const il::Stmt *Def) const;

  /// Incremental patch for while→DO conversion (paper Section 5.2): the
  /// new DO statement \p NewDo replaced \p OldWhile.  Chains attached to
  /// the while condition transfer to the DO header (its init/limit/step
  /// use the same reaching definitions), and the DO's index definition is
  /// registered for uses inside the body.
  void patchAfterWhileConversion(const il::WhileStmt *OldWhile,
                                 il::DoLoopStmt *NewDo);

  /// Removes a (deleted) statement from every chain: it disappears as a
  /// definition from all uses, and its own uses are dropped.  Returns the
  /// (user, symbol) pairs that lost a definition — the paper's Section 8
  /// heuristic re-queues constant assignments reaching those users.
  /// Removing an unreachable definition only shrinks reaching sets, so the
  /// chains stay sound without recomputation.
  std::vector<std::pair<const il::Stmt *, il::Symbol *>>
  removeStmt(const il::Stmt *S);

  /// Full recomputation (used by tests to validate incremental patching).
  void recompute(il::Function &F);

private:
  UseDefChains() = default; ///< importChains fills the chains directly.

  void build(il::Function &F);

  std::map<const il::Stmt *, std::map<il::Symbol *,
                                      std::vector<const il::Stmt *>>>
      Chains;
  static const std::vector<const il::Stmt *> Empty;
};

/// Structural loop nesting (While and DO statements).
class LoopInfo {
public:
  struct LoopNode {
    il::Stmt *LoopStmt = nullptr; ///< WhileStmt or DoLoopStmt.
    LoopNode *Parent = nullptr;
    std::vector<LoopNode *> Children;
    unsigned Depth = 0; ///< 1 for outermost loops.
  };

  explicit LoopInfo(il::Function &F);

  const std::vector<std::unique_ptr<LoopNode>> &loops() const {
    return AllLoops;
  }
  /// Loops with no children (innermost), in program order.
  std::vector<LoopNode *> innermost() const;
  /// Top-level loops in program order.
  const std::vector<LoopNode *> &topLevel() const { return Roots; }

  /// Loop body of a loop statement.
  static il::Block &bodyOf(il::Stmt *LoopStmt);

private:
  void visitBlock(il::Block &B, LoopNode *Parent);

  std::vector<std::unique_ptr<LoopNode>> AllLoops;
  std::vector<LoopNode *> Roots;
};

} // namespace analysis
} // namespace tcc

#endif // TCC_ANALYSIS_USEDEF_H
