#include "analysis/UseDef.h"

#include <algorithm>
#include <cassert>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

const std::vector<const Stmt *> UseDefChains::Empty;

std::set<Symbol *> analysis::computeAddressTakenScalars(Function &F) {
  std::set<Symbol *> Out;
  forEachStmt(F.getBody(), [&Out](Stmt *S) {
    forEachExprSlot(S, [&Out](Expr *&Slot) {
      forEachSubExprSlot(Slot, [&Out](Expr *&Sub) {
        if (Sub->getKind() != Expr::AddrOfKind)
          return;
        Expr *LV = static_cast<AddrOfExpr *>(Sub)->getLValue();
        if (LV->getKind() == Expr::VarRefKind) {
          Symbol *Sym = static_cast<VarRefExpr *>(LV)->getSymbol();
          if (Sym->getType()->isScalar())
            Out.insert(Sym);
        }
      });
    });
  });
  return Out;
}

std::vector<Symbol *> analysis::strongDefs(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    const auto *A = static_cast<const AssignStmt *>(S);
    if (A->getLHS()->getKind() == Expr::VarRefKind)
      return {static_cast<VarRefExpr *>(A->getLHS())->getSymbol()};
    return {};
  }
  case Stmt::CallKind: {
    const auto *C = static_cast<const CallStmt *>(S);
    if (C->getResult())
      return {C->getResult()};
    return {};
  }
  case Stmt::DoLoopKind:
    return {static_cast<const DoLoopStmt *>(S)->getIndexVar()};
  default:
    return {};
  }
}

namespace {

void collectUses(Expr *E, std::vector<Symbol *> &Out) {
  Expr *Slot = E;
  forEachSubExprSlot(Slot, [&Out](Expr *&Sub) {
    if (Sub->getKind() == Expr::VarRefKind) {
      Symbol *Sym = static_cast<VarRefExpr *>(Sub)->getSymbol();
      if (Sym->getType()->isScalar())
        Out.push_back(Sym);
    }
  });
}

} // namespace

std::vector<Symbol *> analysis::usedScalars(const Stmt *S) {
  std::vector<Symbol *> Out;
  auto *MS = const_cast<Stmt *>(S);
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    auto *A = static_cast<AssignStmt *>(MS);
    // The LHS is a def if it's a VarRef; otherwise its address computation
    // reads scalars.
    if (A->getLHS()->getKind() != Expr::VarRefKind)
      collectUses(A->getLHS(), Out);
    collectUses(A->getRHS(), Out);
    break;
  }
  default:
    forEachExprSlot(MS, [&Out](Expr *&Slot) { collectUses(Slot, Out); });
    break;
  }
  // Deduplicate, preserving order.
  std::vector<Symbol *> Unique;
  for (Symbol *Sym : Out)
    if (std::find(Unique.begin(), Unique.end(), Sym) == Unique.end())
      Unique.push_back(Sym);
  return Unique;
}

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

namespace {

/// One definition point: a statement defining a symbol (Def null = value on
/// function entry).
struct DefPoint {
  const Stmt *Def;
  Symbol *Sym;
};

/// Dense bitset sized at construction.
class BitSet {
public:
  explicit BitSet(size_t N) : Bits((N + 63) / 64, 0) {}
  void set(size_t I) { Bits[I / 64] |= uint64_t(1) << (I % 64); }
  bool test(size_t I) const {
    return (Bits[I / 64] >> (I % 64)) & 1;
  }
  /// this |= RHS; returns true if changed.
  bool unionWith(const BitSet &RHS) {
    bool Changed = false;
    for (size_t I = 0; I < Bits.size(); ++I) {
      uint64_t Old = Bits[I];
      Bits[I] |= RHS.Bits[I];
      Changed |= Bits[I] != Old;
    }
    return Changed;
  }
  void reset(size_t I) { Bits[I / 64] &= ~(uint64_t(1) << (I % 64)); }

private:
  std::vector<uint64_t> Bits;
};

} // namespace

UseDefChains::UseDefChains(Function &F) { build(F); }

namespace {

/// Pre-order statement ordinals — the statement naming scheme of
/// UseDefExport.  Identical serialized IL implies identical traversal.
std::vector<const Stmt *> stmtsInOrder(const Function &F) {
  std::vector<const Stmt *> Out;
  forEachStmt(F.getBody(), [&Out](const Stmt *S) { Out.push_back(S); });
  return Out;
}

} // namespace

bool UseDefChains::exportChains(const Function &F, UseDefExport &Out) const {
  Out = UseDefExport();

  std::map<const Stmt *, uint32_t> StmtIdx;
  {
    uint32_t N = 0;
    for (const Stmt *S : stmtsInOrder(F))
      StmtIdx[S] = N++;
  }
  std::map<const Symbol *, int32_t> LocalIdx;
  {
    int32_t N = 0;
    for (const auto &S : F.getSymbols())
      LocalIdx[S.get()] = N++;
  }
  std::map<const Symbol *, uint32_t> SymSlot;
  auto symKey = [&](Symbol *Sym, uint32_t &Slot) {
    auto It = SymSlot.find(Sym);
    if (It != SymSlot.end()) {
      Slot = It->second;
      return true;
    }
    UseDefExport::SymKey Key;
    if (auto LI = LocalIdx.find(Sym); LI != LocalIdx.end()) {
      Key.LocalIndex = LI->second;
    } else if (F.getProgram().findGlobal(Sym->getName()) == Sym) {
      Key.GlobalName = Sym->getName();
    } else {
      return false; // Not nameable relative to F.
    }
    Slot = static_cast<uint32_t>(Out.Syms.size());
    Out.Syms.push_back(std::move(Key));
    SymSlot[Sym] = Slot;
    return true;
  };

  for (const auto &[User, PerSym] : Chains) {
    auto UI = StmtIdx.find(User);
    if (UI == StmtIdx.end())
      return false;
    for (const auto &[Sym, Defs] : PerSym) {
      UseDefExport::Chain C;
      C.User = UI->second;
      if (!symKey(Sym, C.Sym))
        return false;
      C.Defs.reserve(Defs.size());
      for (const Stmt *D : Defs) {
        if (!D) {
          C.Defs.push_back(-1); // Value on entry.
          continue;
        }
        auto DI = StmtIdx.find(D);
        if (DI == StmtIdx.end())
          return false;
        C.Defs.push_back(static_cast<int32_t>(DI->second));
      }
      Out.Chains.push_back(std::move(C));
    }
  }
  return true;
}

std::unique_ptr<UseDefChains> UseDefChains::importChains(Function &F,
                                                         const UseDefExport &E) {
  const std::vector<const Stmt *> Stmts = stmtsInOrder(F);
  const auto &Locals = F.getSymbols();

  // Resolve the export's symbol table against F up front.
  std::vector<Symbol *> Syms;
  Syms.reserve(E.Syms.size());
  for (const UseDefExport::SymKey &Key : E.Syms) {
    Symbol *Sym = nullptr;
    if (Key.LocalIndex >= 0) {
      if (static_cast<size_t>(Key.LocalIndex) >= Locals.size())
        return nullptr;
      Sym = Locals[static_cast<size_t>(Key.LocalIndex)].get();
    } else {
      Sym = F.getProgram().findGlobal(Key.GlobalName);
      if (!Sym)
        return nullptr;
    }
    Syms.push_back(Sym);
  }

  std::unique_ptr<UseDefChains> Out(new UseDefChains());
  for (const UseDefExport::Chain &C : E.Chains) {
    if (C.User >= Stmts.size() || C.Sym >= Syms.size())
      return nullptr;
    std::vector<const Stmt *> Defs;
    Defs.reserve(C.Defs.size());
    for (int32_t D : C.Defs) {
      if (D < 0) {
        Defs.push_back(nullptr);
        continue;
      }
      if (static_cast<size_t>(D) >= Stmts.size())
        return nullptr;
      Defs.push_back(Stmts[static_cast<size_t>(D)]);
    }
    Out->Chains[Stmts[C.User]][Syms[C.Sym]] = std::move(Defs);
  }
  return Out;
}

void UseDefChains::recompute(Function &F) {
  Chains.clear();
  build(F);
}

void UseDefChains::build(Function &F) {
  CFG Graph(F);
  std::set<Symbol *> AddrTaken = computeAddressTakenScalars(F);

  // Gather every scalar symbol mentioned in the function (locals, params,
  // globals).
  std::set<Symbol *> AllScalars;
  for (const auto &S : F.getSymbols())
    if (S->getType()->isScalar())
      AllScalars.insert(S.get());
  forEachStmt(F.getBody(), [&AllScalars](Stmt *S) {
    for (Symbol *Sym : usedScalars(S))
      AllScalars.insert(Sym);
    for (Symbol *Sym : strongDefs(S))
      AllScalars.insert(Sym);
  });

  // Globals and statics a call could modify.
  std::set<Symbol *> CallClobbered = AddrTaken;
  for (Symbol *Sym : AllScalars)
    if (Sym->isGlobal())
      CallClobbered.insert(Sym);

  // Pointer stores may touch address-taken scalars and global scalars.
  const std::set<Symbol *> &StoreClobbered = CallClobbered;

  // Build the def-point table: entry defs first, then per-node defs.
  std::vector<DefPoint> Points;
  std::map<Symbol *, std::vector<size_t>> PointsOf;
  std::map<Symbol *, size_t> EntryPoint;
  for (Symbol *Sym : AllScalars) {
    EntryPoint[Sym] = Points.size();
    PointsOf[Sym].push_back(Points.size());
    Points.push_back({nullptr, Sym});
  }

  unsigned N = Graph.size();
  std::vector<std::vector<size_t>> NodeGen(N);
  std::vector<std::vector<Symbol *>> NodeKill(N);

  auto addDef = [&](unsigned NodeId, const Stmt *S, Symbol *Sym,
                    bool Strong) {
    PointsOf[Sym].push_back(Points.size());
    NodeGen[NodeId].push_back(Points.size());
    Points.push_back({S, Sym});
    if (Strong)
      NodeKill[NodeId].push_back(Sym);
  };

  for (unsigned Id = 2; Id < N; ++Id) {
    const Stmt *S = Graph.node(Id).S;
    for (Symbol *Sym : strongDefs(S))
      addDef(Id, S, Sym, /*Strong=*/!Sym->isVolatile());
    // May-defs.
    if (S->getKind() == Stmt::CallKind) {
      const auto *C = static_cast<const CallStmt *>(S);
      for (Symbol *Sym : CallClobbered)
        if (Sym != C->getResult())
          addDef(Id, S, Sym, /*Strong=*/false);
    } else if (S->getKind() == Stmt::AssignKind) {
      const auto *A = static_cast<const AssignStmt *>(S);
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        for (Symbol *Sym : StoreClobbered)
          addDef(Id, S, Sym, /*Strong=*/false);
    }
  }

  size_t NumPoints = Points.size();
  std::vector<BitSet> In(N, BitSet(NumPoints));
  std::vector<BitSet> Out(N, BitSet(NumPoints));

  // Entry node generates the entry defs.
  for (const auto &[Sym, Idx] : EntryPoint)
    Out[CFG::EntryId].set(Idx);

  // Precompute per-node transfer: OUT = gen ∪ (IN − kill).
  auto transfer = [&](unsigned Id) {
    BitSet NewOut = In[Id];
    for (Symbol *Killed : NodeKill[Id])
      for (size_t P : PointsOf[Killed])
        NewOut.reset(P);
    for (size_t P : NodeGen[Id])
      NewOut.set(P);
    return NewOut;
  };

  // Round-robin to fixpoint (bodies are function-sized; this is fast).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Id = 0; Id < N; ++Id) {
      for (unsigned Pred : Graph.node(Id).Preds)
        Changed |= In[Id].unionWith(Out[Pred]);
      BitSet NewOut = Id == CFG::EntryId ? Out[Id] : transfer(Id);
      if (Id != CFG::EntryId) {
        // Compare by union trick: changed iff Out != NewOut; NewOut ⊇ Out
        // is not guaranteed under kill, so detect via both directions.
        BitSet Tmp = Out[Id];
        bool Grew = Tmp.unionWith(NewOut);
        BitSet Tmp2 = NewOut;
        bool Shrunk = Tmp2.unionWith(Out[Id]);
        if (Grew || Shrunk) {
          Out[Id] = NewOut;
          Changed = true;
        }
      }
    }
  }

  // Build per-use chains from IN sets.  DO-loop bounds are evaluated once
  // on entry, so their uses see only definitions arriving from outside the
  // loop body (the preheader IN), not loop-carried ones.
  for (unsigned Id = 2; Id < N; ++Id) {
    const Stmt *S = Graph.node(Id).S;
    if (S->getKind() == Stmt::DoLoopKind) {
      const auto *D = static_cast<const DoLoopStmt *>(S);
      std::set<const Stmt *> BodyStmts;
      forEachStmt(D->getBody(),
                  [&BodyStmts](const Stmt *Sub) { BodyStmts.insert(Sub); });
      BitSet InPre(NumPoints);
      for (unsigned Pred : Graph.node(Id).Preds) {
        const Stmt *PredStmt = Graph.node(Pred).S;
        if (PredStmt && BodyStmts.count(PredStmt))
          continue; // back edge
        InPre.unionWith(Out[Pred]);
      }
      for (Symbol *Sym : usedScalars(S)) {
        std::vector<const Stmt *> &Defs = Chains[S][Sym];
        for (size_t P : PointsOf[Sym])
          if (InPre.test(P))
            Defs.push_back(Points[P].Def);
      }
      continue;
    }
    for (Symbol *Sym : usedScalars(S)) {
      std::vector<const Stmt *> &Defs = Chains[S][Sym];
      for (size_t P : PointsOf[Sym])
        if (In[Id].test(P))
          Defs.push_back(Points[P].Def);
    }
  }
}

const std::vector<const Stmt *> &
UseDefChains::defsReaching(const Stmt *User, Symbol *Sym) const {
  auto It = Chains.find(User);
  if (It == Chains.end())
    return Empty;
  auto SymIt = It->second.find(Sym);
  if (SymIt == It->second.end())
    return Empty;
  return SymIt->second;
}

std::vector<std::pair<const Stmt *, Symbol *>>
UseDefChains::usesOf(const Stmt *Def) const {
  std::vector<std::pair<const Stmt *, Symbol *>> Out;
  for (const auto &[User, SymMap] : Chains)
    for (const auto &[Sym, Defs] : SymMap)
      if (std::find(Defs.begin(), Defs.end(), Def) != Defs.end())
        Out.push_back({User, Sym});
  return Out;
}

bool UseDefChains::isOnlyReachingDef(const Stmt *User, Symbol *Sym,
                                     const Stmt *Def) const {
  const auto &Defs = defsReaching(User, Sym);
  return Defs.size() == 1 && Defs[0] == Def;
}

std::vector<std::pair<const Stmt *, Symbol *>>
UseDefChains::removeStmt(const Stmt *S) {
  std::vector<std::pair<const Stmt *, Symbol *>> Affected;
  Chains.erase(S);
  for (auto &[User, SymMap] : Chains) {
    for (auto &[Sym, Defs] : SymMap) {
      auto It = std::find(Defs.begin(), Defs.end(), S);
      if (It != Defs.end()) {
        Defs.erase(It);
        Affected.push_back({User, Sym});
      }
    }
  }
  return Affected;
}

void UseDefChains::patchAfterWhileConversion(const WhileStmt *OldWhile,
                                             DoLoopStmt *NewDo) {
  // The DO header's init/limit/step were built from values that reached the
  // while condition, so its chains transfer wholesale.
  auto It = Chains.find(OldWhile);
  if (It != Chains.end()) {
    Chains[NewDo] = It->second;
    Chains.erase(It);
  }
  // The fresh index variable's only definition is the DO itself; record the
  // def under the header so later phases (induction-variable substitution)
  // see a complete chain when they introduce uses of the index.
  Chains[NewDo][NewDo->getIndexVar()] = {NewDo};
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

LoopInfo::LoopInfo(Function &F) { visitBlock(F.getBody(), nullptr); }

void LoopInfo::visitBlock(Block &B, LoopNode *Parent) {
  for (Stmt *S : B.Stmts) {
    switch (S->getKind()) {
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(S);
      visitBlock(I->getThen(), Parent);
      visitBlock(I->getElse(), Parent);
      break;
    }
    case Stmt::WhileKind:
    case Stmt::DoLoopKind: {
      AllLoops.push_back(std::make_unique<LoopNode>());
      LoopNode *Node = AllLoops.back().get();
      Node->LoopStmt = S;
      Node->Parent = Parent;
      Node->Depth = Parent ? Parent->Depth + 1 : 1;
      if (Parent)
        Parent->Children.push_back(Node);
      else
        Roots.push_back(Node);
      visitBlock(bodyOf(S), Node);
      break;
    }
    default:
      break;
    }
  }
}

std::vector<LoopInfo::LoopNode *> LoopInfo::innermost() const {
  std::vector<LoopNode *> Out;
  for (const auto &L : AllLoops)
    if (L->Children.empty())
      Out.push_back(L.get());
  return Out;
}

Block &LoopInfo::bodyOf(Stmt *LoopStmt) {
  if (LoopStmt->getKind() == Stmt::WhileKind)
    return static_cast<WhileStmt *>(LoopStmt)->getBody();
  assert(LoopStmt->getKind() == Stmt::DoLoopKind && "not a loop statement");
  return static_cast<DoLoopStmt *>(LoopStmt)->getBody();
}
