//===----------------------------------------------------------------------===//
///
/// \file
/// A per-function memory read/write graph built on the points-to result —
/// the middle layer of the precise memory-dependence stack (DESIGN.md
/// §11), structured after dg's MemorySSA/ReadWriteGraph.
///
/// Every Deref and Index in the function becomes an *access* node carrying
/// a may-touch object set resolved through \c PointsToInfo (an array base
/// touches exactly its array; a pointer base touches its points-to set; an
/// unresolvable address touches everything).  Def-use edges connect each
/// store to every access whose may-touch set it can overlap.  The MemSSA
/// dependence implementation answers alias queries from these sets, so a
/// pair of accesses with provably disjoint may-touch sets never produces
/// a dependence edge — where the baseline reaching-defs tester would give
/// up on any non-identical base.
///
/// The graph copies every resolved set out of the points-to result, so a
/// cached MemorySSA stays valid after the program-scoped PointsTo analysis
/// is invalidated and rebuilt.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ANALYSIS_MEMORYSSA_H
#define TCC_ANALYSIS_MEMORYSSA_H

#include "analysis/PointsTo.h"
#include "il/IL.h"

#include <map>
#include <vector>

namespace tcc {
namespace analysis {

class MemorySSA {
public:
  /// One memory access: the statement and expression it occurs at, its
  /// direction, and the objects it may touch.
  struct Access {
    const il::Stmt *S = nullptr;
    const il::Expr *Site = nullptr; ///< The Deref/Index expression itself.
    bool IsWrite = false;
    PointsToSet MayTouch; ///< Self-contained copy; Unknown ⇒ touches all.
  };

  /// A def-use (or def-def) edge between two accesses that may touch a
  /// common object.  \c Def is always a write.
  struct Edge {
    unsigned Def = 0;
    unsigned Use = 0;
  };

  MemorySSA(const il::Function &F, const PointsToInfo &PT);

  const std::vector<Access> &accesses() const { return Accesses; }
  const std::vector<Edge> &edges() const { return Edges; }

  /// The access at \p Site (the Deref/Index expression collected by the
  /// dependence layer's MemRef walk), or null when unseen.
  const Access *accessAt(const il::Expr *Site, bool IsWrite) const;

  /// Resolves the objects an address expression may point at, through the
  /// same rules the access walk uses.
  static PointsToSet resolveAddress(const il::Expr *Addr,
                                    const PointsToInfo &PT);

  /// Pairs involving a write that were proven overlap-free — the graph's
  /// precision yield over "everything conflicts".
  unsigned disjointPairs() const { return DisjointPairs; }

private:
  void collectFromExpr(const il::Stmt *S, const il::Expr *E,
                       bool IsStoreTarget, const PointsToInfo &PT);

  std::vector<Access> Accesses;
  std::vector<Edge> Edges;
  std::map<std::pair<const il::Expr *, bool>, unsigned> BySite;
  unsigned DisjointPairs = 0;
};

} // namespace analysis
} // namespace tcc

#endif // TCC_ANALYSIS_MEMORYSSA_H
