//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the supported C subset, producing the
/// syntactic AST.  The grammar follows K&R/ANSI C restricted to the subset
/// in DESIGN.md Section 4: scalar types, pointers, multi-dimensional
/// arrays, the full expression grammar with correct precedence, and the
/// statement forms the Titan compiler paper exercises.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PARSER_PARSER_H
#define TCC_PARSER_PARSER_H

#include "ast/Ast.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"
#include "types/Type.h"

#include <string>
#include <vector>

namespace tcc {

class Parser {
public:
  Parser(std::vector<Token> Tokens, ast::AstContext &Ctx, TypeContext &Types,
         DiagnosticEngine &Diags);

  /// Parses a whole translation unit.  On syntax errors, diagnostics are
  /// recorded and a best-effort AST is returned; callers must check
  /// Diags.hasErrors().
  ast::TranslationUnit parseTranslationUnit();

  /// Parses a single expression (used by tests).
  ast::Expr *parseStandaloneExpr();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  Token expect(TokenKind Kind, const char *Context);
  void synchronizeToStatement();

  // Declarations.
  bool startsTypeSpecifier() const;
  struct DeclSpecifiers {
    const Type *BaseType = nullptr;
    ast::StorageClass Storage = ast::StorageClass::Auto;
    bool IsVolatile = false;
    bool IsStatic = false;
    bool IsExtern = false;
  };
  DeclSpecifiers parseDeclSpecifiers();
  /// Parses a declarator: pointers, name, array dimensions.  \p OutName
  /// receives the declared identifier.
  const Type *parseDeclarator(const Type *Base, std::string &OutName,
                              SourceLoc &OutLoc);
  /// Parses an abstract declarator for casts: pointers only.
  const Type *parseAbstractDeclarator(const Type *Base);
  std::vector<ast::VarDecl> parseInitDeclaratorList(DeclSpecifiers Specs);
  void parseTopLevelDecl(ast::TranslationUnit &TU);
  ast::FunctionDecl parseFunctionRest(DeclSpecifiers Specs, const Type *Ret,
                                      std::string Name, SourceLoc Loc);

  // Statements.
  ast::Stmt *parseStatement();
  ast::BlockStmt *parseBlock();
  ast::Stmt *parseIf();
  ast::Stmt *parseWhile(bool SafeVector);
  ast::Stmt *parseDoWhile();
  ast::Stmt *parseFor(bool SafeVector);

  // Expressions (precedence climbing, C precedence).
  ast::Expr *parseExpr();           // comma
  ast::Expr *parseAssignment();     // = += ...
  ast::Expr *parseConditional();    // ?:
  ast::Expr *parseBinaryRHS(int MinPrec, ast::Expr *LHS);
  ast::Expr *parseUnary();
  ast::Expr *parsePostfix();
  ast::Expr *parsePrimary();

  /// True if the parenthesized tokens starting at the current `(` form a
  /// cast, i.e. `(` type-specifier ... `)`.
  bool isCastStart() const;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ast::AstContext &Ctx;
  TypeContext &Types;
  DiagnosticEngine &Diags;
  /// Set once `#pragma fortran_pointers` is seen; applies to subsequent
  /// function definitions.
  bool FortranPointers = false;
};

} // namespace tcc

#endif // TCC_PARSER_PARSER_H
