#include "parser/Parser.h"

#include "support/StringExtras.h"

#include <cassert>

using namespace tcc;
using namespace tcc::ast;

Parser::Parser(std::vector<Token> Tokens, AstContext &Ctx, TypeContext &Types,
               DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Ctx(Ctx), Types(Types), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

Token Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return consume();
  Diags.error(current().Loc,
              formatString("expected %s %s, found %s", tokenKindName(Kind),
                           Context, tokenKindName(current().Kind)));
  // Return a synthesized token so callers can continue.
  Token T;
  T.Kind = Kind;
  T.Loc = current().Loc;
  return T;
}

void Parser::synchronizeToStatement() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Semi) &&
         !check(TokenKind::RBrace))
    consume();
  accept(TokenKind::Semi);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::startsTypeSpecifier() const {
  switch (current().Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwStatic:
  case TokenKind::KwExtern:
  case TokenKind::KwVolatile:
  case TokenKind::KwConst:
  case TokenKind::KwRegister:
    return true;
  default:
    return false;
  }
}

Parser::DeclSpecifiers Parser::parseDeclSpecifiers() {
  DeclSpecifiers Specs;
  for (;;) {
    switch (current().Kind) {
    case TokenKind::KwStatic:
      Specs.IsStatic = true;
      Specs.Storage = StorageClass::Static;
      consume();
      continue;
    case TokenKind::KwExtern:
      Specs.IsExtern = true;
      Specs.Storage = StorageClass::Extern;
      consume();
      continue;
    case TokenKind::KwRegister:
      Specs.Storage = StorageClass::Register;
      consume();
      continue;
    case TokenKind::KwVolatile:
      Specs.IsVolatile = true;
      consume();
      continue;
    case TokenKind::KwConst:
      consume(); // accepted and ignored
      continue;
    case TokenKind::KwVoid:
      Specs.BaseType = Types.getVoidType();
      consume();
      continue;
    case TokenKind::KwChar:
      Specs.BaseType = Types.getCharType();
      consume();
      continue;
    case TokenKind::KwInt:
      Specs.BaseType = Types.getIntType();
      consume();
      continue;
    case TokenKind::KwFloat:
      Specs.BaseType = Types.getFloatType();
      consume();
      continue;
    case TokenKind::KwDouble:
      Specs.BaseType = Types.getDoubleType();
      consume();
      continue;
    default:
      break;
    }
    break;
  }
  if (!Specs.BaseType)
    Specs.BaseType = Types.getIntType(); // implicit int, K&R style
  return Specs;
}

const Type *Parser::parseDeclarator(const Type *Base, std::string &OutName,
                                    SourceLoc &OutLoc) {
  // Pointers.
  while (accept(TokenKind::Star)) {
    // `* volatile` / `* const` qualifiers are accepted and ignored on the
    // pointer itself.
    while (accept(TokenKind::KwVolatile) || accept(TokenKind::KwConst))
      ;
    Base = Types.getPointerType(Base);
  }
  Token NameTok = expect(TokenKind::Identifier, "in declarator");
  OutName = NameTok.Text;
  OutLoc = NameTok.Loc;

  // Array dimensions, outermost first in source.
  std::vector<int64_t> Dims;
  while (accept(TokenKind::LBracket)) {
    int64_t Size = 0;
    if (!check(TokenKind::RBracket)) {
      Token SizeTok = expect(TokenKind::IntLiteral, "as array dimension");
      Size = SizeTok.IntValue;
    }
    expect(TokenKind::RBracket, "after array dimension");
    Dims.push_back(Size);
  }
  // Build array types inside-out: int a[2][3] is array(2, array(3, int)).
  for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
    Base = Types.getArrayType(Base, *It);
  return Base;
}

const Type *Parser::parseAbstractDeclarator(const Type *Base) {
  while (accept(TokenKind::Star))
    Base = Types.getPointerType(Base);
  return Base;
}

std::vector<VarDecl> Parser::parseInitDeclaratorList(DeclSpecifiers Specs) {
  std::vector<VarDecl> Decls;
  do {
    VarDecl D;
    D.Storage = Specs.Storage;
    D.IsVolatile = Specs.IsVolatile;
    D.DeclType = parseDeclarator(Specs.BaseType, D.Name, D.Loc);
    if (accept(TokenKind::Equal))
      D.Init = parseAssignment();
    Decls.push_back(std::move(D));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semi, "after declaration");
  return Decls;
}

FunctionDecl Parser::parseFunctionRest(DeclSpecifiers Specs, const Type *Ret,
                                       std::string Name, SourceLoc Loc) {
  FunctionDecl F;
  F.Loc = Loc;
  F.Name = std::move(Name);
  F.ReturnType = Ret;
  F.IsStatic = Specs.IsStatic;
  F.FortranPointerSemantics = FortranPointers;

  // Parameter list; `(void)` and `()` both mean no parameters.
  if (!check(TokenKind::RParen)) {
    if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
      consume();
    } else {
      do {
        DeclSpecifiers PSpecs = parseDeclSpecifiers();
        VarDecl P;
        P.IsVolatile = PSpecs.IsVolatile;
        P.DeclType = parseDeclarator(PSpecs.BaseType, P.Name, P.Loc);
        // Array parameters decay to pointers.
        P.DeclType = Types.decay(P.DeclType);
        F.Params.push_back(std::move(P));
      } while (accept(TokenKind::Comma));
    }
  }
  expect(TokenKind::RParen, "after parameter list");

  if (accept(TokenKind::Semi))
    return F; // prototype

  if (check(TokenKind::LBrace))
    F.Body = parseBlock();
  else
    Diags.error(current().Loc, "expected function body or ';'");
  return F;
}

void Parser::parseTopLevelDecl(TranslationUnit &TU) {
  if (check(TokenKind::Pragma)) {
    Token P = consume();
    if (P.Text == "fortran_pointers")
      FortranPointers = true;
    else if (P.Text == "no_fortran_pointers")
      FortranPointers = false;
    else
      Diags.warning(P.Loc, "ignoring unknown pragma '" + P.Text + "'");
    return;
  }

  DeclSpecifiers Specs = parseDeclSpecifiers();
  std::string Name;
  SourceLoc Loc;
  const Type *DeclTy = parseDeclarator(Specs.BaseType, Name, Loc);

  if (check(TokenKind::LParen)) {
    consume();
    TU.Functions.push_back(
        parseFunctionRest(Specs, DeclTy, std::move(Name), Loc));
    return;
  }

  // Global variable(s).
  VarDecl First;
  First.Loc = Loc;
  First.Name = std::move(Name);
  First.DeclType = DeclTy;
  First.Storage = Specs.Storage;
  First.IsVolatile = Specs.IsVolatile;
  if (accept(TokenKind::Equal))
    First.Init = parseAssignment();
  TU.Globals.push_back(std::move(First));
  while (accept(TokenKind::Comma)) {
    VarDecl D;
    D.Storage = Specs.Storage;
    D.IsVolatile = Specs.IsVolatile;
    D.DeclType = parseDeclarator(Specs.BaseType, D.Name, D.Loc);
    if (accept(TokenKind::Equal))
      D.Init = parseAssignment();
    TU.Globals.push_back(std::move(D));
  }
  expect(TokenKind::Semi, "after global declaration");
}

TranslationUnit Parser::parseTranslationUnit() {
  TranslationUnit TU;
  while (!check(TokenKind::Eof)) {
    size_t Before = Pos;
    parseTopLevelDecl(TU);
    if (Pos == Before) {
      // No progress: skip a token to guarantee termination.
      Diags.error(current().Loc, "unexpected token at top level");
      consume();
    }
  }
  return TU;
}

ast::Expr *Parser::parseStandaloneExpr() { return parseExpr(); }

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  Token LB = expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    size_t Before = Pos;
    Body.push_back(parseStatement());
    if (Pos == Before) {
      Diags.error(current().Loc, "unexpected token in block");
      consume();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return Ctx.create<BlockStmt>(LB.Loc, std::move(Body));
}

Stmt *Parser::parseStatement() {
  // A pragma may precede a loop statement.
  bool SafeVector = false;
  while (check(TokenKind::Pragma)) {
    Token P = consume();
    if (P.Text == "safe" || P.Text == "vector always" || P.Text == "ivdep")
      SafeVector = true;
    else
      Diags.warning(P.Loc, "ignoring unknown pragma '" + P.Text + "'");
  }

  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile(SafeVector);
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor(SafeVector);
  case TokenKind::KwReturn: {
    Token T = consume();
    Expr *Value = nullptr;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return Ctx.create<ReturnStmt>(T.Loc, Value);
  }
  case TokenKind::KwBreak: {
    Token T = consume();
    expect(TokenKind::Semi, "after break");
    return Ctx.create<BreakStmt>(T.Loc);
  }
  case TokenKind::KwContinue: {
    Token T = consume();
    expect(TokenKind::Semi, "after continue");
    return Ctx.create<ContinueStmt>(T.Loc);
  }
  case TokenKind::KwGoto: {
    Token T = consume();
    Token Label = expect(TokenKind::Identifier, "after goto");
    expect(TokenKind::Semi, "after goto label");
    return Ctx.create<GotoStmt>(T.Loc, Label.Text);
  }
  case TokenKind::Semi: {
    Token T = consume();
    return Ctx.create<EmptyStmt>(T.Loc);
  }
  default:
    break;
  }

  // Label: `identifier :`.
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Colon)) {
    Token Label = consume();
    consume(); // ':'
    Stmt *Sub = parseStatement();
    return Ctx.create<LabeledStmt>(Label.Loc, Label.Text, Sub);
  }

  // Declaration statement.
  if (startsTypeSpecifier()) {
    SourceLoc Loc = current().Loc;
    DeclSpecifiers Specs = parseDeclSpecifiers();
    return Ctx.create<DeclStmt>(Loc, parseInitDeclaratorList(Specs));
  }

  // Expression statement.
  SourceLoc Loc = current().Loc;
  Expr *E = parseExpr();
  expect(TokenKind::Semi, "after expression");
  return Ctx.create<ExprStmt>(Loc, E);
}

Stmt *Parser::parseIf() {
  Token T = consume();
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return Ctx.create<IfStmt>(T.Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile(bool SafeVector) {
  Token T = consume();
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStatement();
  return Ctx.create<WhileStmt>(T.Loc, Cond, Body, SafeVector);
}

Stmt *Parser::parseDoWhile() {
  Token T = consume();
  Stmt *Body = parseStatement();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while");
  return Ctx.create<DoWhileStmt>(T.Loc, Body, Cond);
}

Stmt *Parser::parseFor(bool SafeVector) {
  Token T = consume();
  expect(TokenKind::LParen, "after 'for'");

  Stmt *Init = nullptr;
  if (accept(TokenKind::Semi)) {
    // empty init
  } else if (startsTypeSpecifier()) {
    SourceLoc Loc = current().Loc;
    DeclSpecifiers Specs = parseDeclSpecifiers();
    Init = Ctx.create<DeclStmt>(Loc, parseInitDeclaratorList(Specs));
  } else {
    SourceLoc Loc = current().Loc;
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "after for-init");
    Init = Ctx.create<ExprStmt>(Loc, E);
  }

  Expr *Cond = nullptr;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");

  Expr *Inc = nullptr;
  if (!check(TokenKind::RParen))
    Inc = parseExpr();
  expect(TokenKind::RParen, "after for-increment");

  Stmt *Body = parseStatement();
  return Ctx.create<ForStmt>(T.Loc, Init, Cond, Inc, Body, SafeVector);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() {
  Expr *LHS = parseAssignment();
  while (check(TokenKind::Comma)) {
    Token T = consume();
    Expr *RHS = parseAssignment();
    LHS = Ctx.create<CommaExpr>(T.Loc, LHS, RHS);
  }
  return LHS;
}

Expr *Parser::parseAssignment() {
  Expr *LHS = parseConditional();
  switch (current().Kind) {
  case TokenKind::Equal: {
    Token T = consume();
    Expr *RHS = parseAssignment();
    return Ctx.create<AssignExpr>(T.Loc, LHS, RHS);
  }
  case TokenKind::PlusEqual:
  case TokenKind::MinusEqual:
  case TokenKind::StarEqual:
  case TokenKind::SlashEqual:
  case TokenKind::PercentEqual:
  case TokenKind::AmpEqual:
  case TokenKind::PipeEqual:
  case TokenKind::CaretEqual:
  case TokenKind::LessLessEqual:
  case TokenKind::GreaterGreaterEqual: {
    Token T = consume();
    BinaryOp Op;
    switch (T.Kind) {
    case TokenKind::PlusEqual:
      Op = BinaryOp::Add;
      break;
    case TokenKind::MinusEqual:
      Op = BinaryOp::Sub;
      break;
    case TokenKind::StarEqual:
      Op = BinaryOp::Mul;
      break;
    case TokenKind::SlashEqual:
      Op = BinaryOp::Div;
      break;
    case TokenKind::PercentEqual:
      Op = BinaryOp::Rem;
      break;
    case TokenKind::AmpEqual:
      Op = BinaryOp::BitAnd;
      break;
    case TokenKind::PipeEqual:
      Op = BinaryOp::BitOr;
      break;
    case TokenKind::CaretEqual:
      Op = BinaryOp::BitXor;
      break;
    case TokenKind::LessLessEqual:
      Op = BinaryOp::Shl;
      break;
    default:
      Op = BinaryOp::Shr;
      break;
    }
    Expr *RHS = parseAssignment();
    return Ctx.create<CompoundAssignExpr>(T.Loc, Op, LHS, RHS);
  }
  default:
    return LHS;
  }
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinaryRHS(0, parseUnary());
  if (!check(TokenKind::Question))
    return Cond;
  Token T = consume();
  Expr *TrueE = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseE = parseConditional();
  return Ctx.create<ConditionalExpr>(T.Loc, Cond, TrueE, FalseE);
}

/// Binary operator precedence (C levels, higher binds tighter).
static int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::LessLess:
  case TokenKind::GreaterGreater:
    return 8;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEqual:
  case TokenKind::GreaterEqual:
    return 7;
  case TokenKind::EqualEqual:
  case TokenKind::BangEqual:
    return 6;
  case TokenKind::Amp:
    return 5;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::PipePipe:
    return 1;
  default:
    return -1;
  }
}

static BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::LessLess:
    return BinaryOp::Shl;
  case TokenKind::GreaterGreater:
    return BinaryOp::Shr;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::LessEqual:
    return BinaryOp::Le;
  case TokenKind::GreaterEqual:
    return BinaryOp::Ge;
  case TokenKind::EqualEqual:
    return BinaryOp::Eq;
  case TokenKind::BangEqual:
    return BinaryOp::Ne;
  case TokenKind::Amp:
    return BinaryOp::BitAnd;
  case TokenKind::Caret:
    return BinaryOp::BitXor;
  case TokenKind::Pipe:
    return BinaryOp::BitOr;
  case TokenKind::AmpAmp:
    return BinaryOp::LogAnd;
  case TokenKind::PipePipe:
    return BinaryOp::LogOr;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  for (;;) {
    int Prec = binaryPrecedence(current().Kind);
    if (Prec < MinPrec || Prec < 0)
      return LHS;
    Token OpTok = consume();
    Expr *RHS = parseUnary();
    int NextPrec = binaryPrecedence(current().Kind);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, RHS);
    LHS = Ctx.create<BinaryExpr>(OpTok.Loc, binaryOpFor(OpTok.Kind), LHS, RHS);
  }
}

bool Parser::isCastStart() const {
  if (!check(TokenKind::LParen))
    return false;
  switch (peek(1).Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseUnary() {
  switch (current().Kind) {
  case TokenKind::Plus: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::Plus, parseUnary());
  }
  case TokenKind::Minus: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::Neg, parseUnary());
  }
  case TokenKind::Bang: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::LogNot, parseUnary());
  }
  case TokenKind::Tilde: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::BitNot, parseUnary());
  }
  case TokenKind::Star: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::Deref, parseUnary());
  }
  case TokenKind::Amp: {
    Token T = consume();
    return Ctx.create<UnaryExpr>(T.Loc, UnaryOp::AddrOf, parseUnary());
  }
  case TokenKind::PlusPlus: {
    Token T = consume();
    return Ctx.create<IncDecExpr>(T.Loc, /*IsIncrement=*/true,
                                  /*IsPrefix=*/true, parseUnary());
  }
  case TokenKind::MinusMinus: {
    Token T = consume();
    return Ctx.create<IncDecExpr>(T.Loc, /*IsIncrement=*/false,
                                  /*IsPrefix=*/true, parseUnary());
  }
  case TokenKind::KwSizeof: {
    Token T = consume();
    // sizeof(type) only; evaluates to an integer literal immediately.
    expect(TokenKind::LParen, "after sizeof");
    DeclSpecifiers Specs = parseDeclSpecifiers();
    const Type *Ty = parseAbstractDeclarator(Specs.BaseType);
    expect(TokenKind::RParen, "after sizeof type");
    return Ctx.create<IntLiteralExpr>(T.Loc, Ty->getSizeInBytes());
  }
  case TokenKind::LParen:
    if (isCastStart()) {
      Token T = consume(); // '('
      DeclSpecifiers Specs = parseDeclSpecifiers();
      const Type *Ty = parseAbstractDeclarator(Specs.BaseType);
      expect(TokenKind::RParen, "after cast type");
      return Ctx.create<CastExpr>(T.Loc, Ty, parseUnary());
    }
    break;
  default:
    break;
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    if (check(TokenKind::LBracket)) {
      Token T = consume();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after subscript");
      E = Ctx.create<IndexExpr>(T.Loc, E, Index);
      continue;
    }
    if (check(TokenKind::PlusPlus)) {
      Token T = consume();
      E = Ctx.create<IncDecExpr>(T.Loc, /*IsIncrement=*/true,
                                 /*IsPrefix=*/false, E);
      continue;
    }
    if (check(TokenKind::MinusMinus)) {
      Token T = consume();
      E = Ctx.create<IncDecExpr>(T.Loc, /*IsIncrement=*/false,
                                 /*IsPrefix=*/false, E);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.Loc, T.IntValue);
  }
  case TokenKind::CharLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.Loc, T.IntValue);
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    return Ctx.create<FloatLiteralExpr>(T.Loc, T.FloatValue);
  }
  case TokenKind::Identifier: {
    Token T = consume();
    if (check(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do
          Args.push_back(parseAssignment());
        while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return Ctx.create<CallExpr>(T.Loc, T.Text, std::move(Args));
    }
    return Ctx.create<VarRefExpr>(T.Loc, T.Text);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    Diags.error(current().Loc,
                formatString("expected expression, found %s",
                             tokenKindName(current().Kind)));
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.Loc, 0);
  }
}
