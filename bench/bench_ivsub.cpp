//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5 (paper Section 5.3): the induction-variable
/// substitution backtracking heuristic.
///
/// The paper claims the worst case is n passes over a loop of n
/// statements, but "in practice we have never seen this behavior; the
/// average case requires the same simple pass over the loop that is
/// needed in the straightforward algorithm" — and backtracking "is
/// rarely invoked, and is extremely efficient when it is invoked".
///
/// This bench generates loops with k pointer-walk statements (each a
/// blocked forward substitution until its induction variable is
/// rewritten), sweeps k, and reports passes and backtracks with the
/// heuristic on and off.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace tcc;
using namespace tcc::bench;

namespace {

/// k independent pointer walks in one loop: every *p_j++ store blocks on
/// its own pointer update.
std::string pointerWalkSource(int K) {
  std::string Decls, Inits, Stmts, Params;
  for (int J = 0; J < K; ++J) {
    std::string N = std::to_string(J);
    Decls += "float arr" + N + "[512];\n";
    Inits += "  p" + N + " = arr" + N + ";\n";
    Stmts += "    *p" + N + "++ = 1.0;\n";
    Params += "  float *p" + N + ";\n";
  }
  return Decls + "void main() {\n" + Params + "  int n;\n" + Inits +
         "  n = 512;\n  while (n) {\n" + Stmts + "    n--;\n  }\n}\n";
}

void printE5() {
  printHeader("E5", "IV substitution: passes and backtracks vs loop size "
                    "(Section 5.3; worst case n passes, practice ~1)");
  std::printf("  %-6s %-14s %-14s %-14s %-14s\n", "k", "passes(bt)",
              "backtracks", "passes(no-bt)", "substitutions");
  for (int K : {1, 2, 4, 8, 16, 32, 64}) {
    std::string Source = pointerWalkSource(K);

    driver::CompilerOptions WithBt = driver::CompilerOptions::full();
    auto A = driver::compileSource(Source, WithBt);

    driver::CompilerOptions NoBt = driver::CompilerOptions::full();
    NoBt.IVSub.EnableBacktracking = false;
    auto B = driver::compileSource(Source, NoBt);

    std::printf("  %-6d %-14u %-14u %-14u %-14u\n", K,
                A->Stats.IVSub.Passes, A->Stats.IVSub.Backtracks,
                B->Stats.IVSub.Passes, A->Stats.IVSub.Substitutions);
  }
  std::printf("\n  The heuristic's pass count stays flat as the loop "
              "grows; every blocked\n  statement is re-examined exactly "
              "once when its blocker is removed.\n");
}

void BM_IVSubWithBacktracking(benchmark::State &State) {
  std::string Source = pointerWalkSource(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    auto R = driver::compileSource(Source, driver::CompilerOptions::full());
    benchmark::DoNotOptimize(R->Stats.IVSub.Passes);
    State.counters["passes"] = R->Stats.IVSub.Passes;
    State.counters["backtracks"] = R->Stats.IVSub.Backtracks;
  }
}
BENCHMARK(BM_IVSubWithBacktracking)->Arg(4)->Arg(16)->Arg(64);

void BM_IVSubNoBacktracking(benchmark::State &State) {
  std::string Source = pointerWalkSource(static_cast<int>(State.range(0)));
  driver::CompilerOptions Opts = driver::CompilerOptions::full();
  Opts.IVSub.EnableBacktracking = false;
  for (auto _ : State) {
    auto R = driver::compileSource(Source, Opts);
    benchmark::DoNotOptimize(R->Stats.IVSub.Passes);
    State.counters["passes"] = R->Stats.IVSub.Passes;
  }
}
BENCHMARK(BM_IVSubNoBacktracking)->Arg(4)->Arg(16)->Arg(64);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("ivsub");
  printE5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
