//===----------------------------------------------------------------------===//
///
/// \file
/// Experiments E1 and E10 (paper Section 6).
///
/// The paper's claim: the backsolve loop
///     p[i] = z[i] * (y[i] - q[i]);      // q = p - 1
/// runs at 0.5 MFLOPS with scalar optimization only, and at 1.9 MFLOPS
/// (within 5% of the best possible) once the dependence graph drives
/// scalar replacement, strength reduction, and instruction scheduling —
/// a ~3.8x improvement without vectorizing anything.
///
/// E10 additionally checks the paper's mechanism claims: scalar
/// replacement eliminates loads, and strength reduction eliminates every
/// integer multiply in the loop.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

const char *BacksolveSource = R"(
  float x[4002], y[4000], z[4000];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; int n;
    float *p; float *q;
    n = 4000;
    x[0] = 1.0;
    for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
    p = &x[1];
    q = &x[0];
    titan_tic();
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
    titan_toc();
    out = x[7];
  }
)";

driver::CompilerOptions scalarOpts() {
  return driver::CompilerOptions::scalarOnly();
}

driver::CompilerOptions depOpts() { return driver::CompilerOptions::full(); }

void printExperiment() {
  // Scalar baseline: no unit overlap, no dependence information.
  titan::TitanConfig ScalarCfg;
  ScalarCfg.EnableOverlap = false;
  Measurement Scalar =
      measure("scalar-only", BacksolveSource, scalarOpts(), ScalarCfg);

  // Dependence-driven build: scalar replacement + strength reduction +
  // dependence-informed scheduling with unit overlap.
  titan::TitanConfig FullCfg;
  Measurement Full = measure("dependence-driven", BacksolveSource, depOpts(),
                             FullCfg);

  // Ablations.
  driver::CompilerOptions NoSched = depOpts();
  NoSched.EnableDepScheduling = false;
  Measurement NoSchedM =
      measure("  - without dep scheduling", BacksolveSource, NoSched,
              FullCfg);

  driver::CompilerOptions NoSR = depOpts();
  NoSR.EnableStrengthReduction = false;
  Measurement NoSRM = measure("  - without strength reduction",
                              BacksolveSource, NoSR, FullCfg);

  driver::CompilerOptions NoRepl = depOpts();
  NoRepl.EnableScalarReplacement = false;
  Measurement NoReplM = measure("  - without scalar replacement",
                                BacksolveSource, NoRepl, FullCfg);

  printHeader("E1", "backsolve: 0.5 MFLOPS scalar vs 1.9 MFLOPS with "
                    "dependence-driven optimization (Section 6)");
  printRow(Scalar);
  printRow(Full);
  printRow(NoSchedM);
  printRow(NoSRM);
  printRow(NoReplM);
  printComparison("scalar MFLOPS", 0.5, Scalar.mflops());
  printComparison("optimized MFLOPS", 1.9, Full.mflops());
  printComparison("speedup factor", 1.9 / 0.5,
                  Full.cycles() ? Scalar.cycles() / Full.cycles() : 0.0);

  printHeader("E10", "mechanism: loads and integer multiplies removed "
                     "from the loop");
  std::printf("  loads   scalar=%llu optimized=%llu (scalar replacement)\n",
              static_cast<unsigned long long>(Scalar.Run.Loads),
              static_cast<unsigned long long>(Full.Run.Loads));
  std::printf("  imuls   scalar=%llu optimized=%llu (strength reduction)\n",
              static_cast<unsigned long long>(Scalar.Run.IntMuls),
              static_cast<unsigned long long>(Full.Run.IntMuls));
  std::printf("  scalar-replaced loops: %u, loads eliminated: %u\n",
              Full.Stats.ScalarReplace.LoopsApplied,
              Full.Stats.ScalarReplace.LoadsEliminated);
  std::printf("  strength-reduced loops: %u, address temps: %u, CSE: %u\n",
              Full.Stats.StrengthReduce.LoopsApplied,
              Full.Stats.StrengthReduce.AddressTemps,
              Full.Stats.StrengthReduce.SharedTemps);
}

void BM_BacksolveScalar(benchmark::State &State) {
  titan::TitanConfig Cfg;
  Cfg.EnableOverlap = false;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(BacksolveSource, scalarOpts(), Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops(Cfg);
    State.counters["sim_cycles"] = static_cast<double>(Out.Run.Cycles);
  }
}
BENCHMARK(BM_BacksolveScalar);

void BM_BacksolveDependenceDriven(benchmark::State &State) {
  titan::TitanConfig Cfg;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(BacksolveSource, depOpts(), Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops(Cfg);
    State.counters["sim_cycles"] = static_cast<double>(Out.Run.Cycles);
  }
}
BENCHMARK(BM_BacksolveDependenceDriven);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("backsolve");
  printExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
