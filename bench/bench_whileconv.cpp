//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E4 (paper Sections 5.2–5.3): while→DO conversion turns the
/// pointer-walk copy loop
///
///     while (n) { *a++ = *b++; n--; }
///
/// into a vectorizable DO loop.  Without the conversion (or without the
/// induction-variable substitution that follows it), the loop cannot
/// vectorize at all; with both, it becomes a vector copy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

const char *CopySource = R"(
  float src[4096], dst[4096];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; float *a; float *b; int n;
    for (i = 0; i < 4096; i++) src[i] = i;
    a = dst;
    b = src;
    n = 4096;
    titan_tic();
    while (n) {
      *a++ = *b++;
      n--;
    }
    titan_toc();
  }
)";

void printE4() {
  titan::TitanConfig ScalarCfg;
  ScalarCfg.EnableOverlap = false;
  titan::TitanConfig FullCfg;

  Measurement NoConv = [&] {
    driver::CompilerOptions O = driver::CompilerOptions::full();
    O.EnableWhileToDo = false; // without conversion nothing downstream fires
    return measure("no while->DO conversion", CopySource, O, FullCfg);
  }();
  Measurement NoIV = [&] {
    driver::CompilerOptions O = driver::CompilerOptions::full();
    O.EnableIVSub = false;
    return measure("conversion, no IV substitution", CopySource, O, FullCfg);
  }();
  Measurement Full = measure("conversion + IV substitution",
                             CopySource, driver::CompilerOptions::full(),
                             FullCfg);
  Measurement Scalar = measure("scalar baseline", CopySource,
                               driver::CompilerOptions::scalarOnly(),
                               ScalarCfg);

  printHeader("E4", "while->DO conversion makes the pointer-walk copy "
                    "vectorizable (Sections 5.2-5.3)");
  printRow(Scalar);
  printRow(NoConv);
  printRow(NoIV);
  printRow(Full);
  std::printf("  vector statements: none=%u noiv=%u full=%u\n",
              NoConv.Stats.Vectorize.VectorStmts,
              NoIV.Stats.Vectorize.VectorStmts,
              Full.Stats.Vectorize.VectorStmts);
  printComparison("vector speedup over scalar (shape: >3x)", 4.0,
                  Full.cycles() ? Scalar.cycles() / Full.cycles() : 0);
}

void BM_CopyConverted(benchmark::State &State) {
  titan::TitanConfig Cfg;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(CopySource,
                                     driver::CompilerOptions::full(), Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_cycles"] = static_cast<double>(Out.Run.Cycles);
  }
}
BENCHMARK(BM_CopyConverted);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("whileconv");
  printE4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
