//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E6 (paper Section 8): constant propagation with
/// unreachable-code elimination after inlining.
///
/// The paper's example: `daxpy(*x, y, 0.0, z)` — once inlined, in_a ==
/// 0.0 makes the early return unconditional and the whole floating point
/// body unreachable.  Only the integrated worklist heuristic discovers
/// the second-round constants a dead definition was hiding.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

/// daxpy with alpha == 0: after inlining, everything folds away.
const char *AlphaZeroSource = R"(
  float a[2048], b[2048], c[2048];
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    daxpy(a, b, c, 0.0, 2048);
  }
)";

/// The staged-constant example: x's dead redefinition hides a constant
/// until the unreachable branch is deleted and the heuristic re-queues.
const char *StagedSource = R"(
  int out;
  void main() {
    int flag; int x; int y;
    flag = 0;
    x = 3;
    if (flag) {
      x = 99;
    }
    if (x == 3) y = 10; else y = 20;
    out = y;
  }
)";

void printE6() {
  printHeader("E6", "constant propagation + unreachable code after "
                    "inlining (Section 8)");

  driver::CompilerOptions Full = driver::CompilerOptions::full();
  driver::CompilerOptions NoHeur = driver::CompilerOptions::full();
  NoHeur.ConstProp.EnableUnreachableHeuristic = false;

  // alpha == 0 daxpy: the whole loop must vanish.
  Measurement WithH = measure("alpha==0 daxpy, heuristic on",
                              AlphaZeroSource, Full, {});
  Measurement NoH = measure("alpha==0 daxpy, heuristic off",
                            AlphaZeroSource, NoHeur, {});
  printRow(WithH);
  printRow(NoH);
  std::printf("  heuristic on : stmts removed=%u requeues=%u branches "
              "folded=%u\n",
              WithH.Stats.ConstProp.StmtsRemoved,
              WithH.Stats.ConstProp.Requeues,
              WithH.Stats.ConstProp.BranchesFolded);
  std::printf("  heuristic off: stmts removed=%u requeues=%u branches "
              "folded=%u\n",
              NoH.Stats.ConstProp.StmtsRemoved, NoH.Stats.ConstProp.Requeues,
              NoH.Stats.ConstProp.BranchesFolded);
  printComparison("residual cycles (should be ~0 work)", 0.0,
                  static_cast<double>(WithH.Run.Cycles));

  // Staged constants.
  auto A = driver::compileSource(StagedSource, Full);
  auto B = driver::compileSource(StagedSource, NoHeur);
  std::printf("\n  staged constants: branches folded with heuristic=%u, "
              "without=%u (one round misses the second guard)\n",
              A->Stats.ConstProp.BranchesFolded,
              B->Stats.ConstProp.BranchesFolded);
}

void BM_ConstPropAlphaZero(benchmark::State &State) {
  for (auto _ : State) {
    auto R = driver::compileSource(AlphaZeroSource,
                                   driver::CompilerOptions::full());
    benchmark::DoNotOptimize(R->Stats.ConstProp.StmtsRemoved);
  }
}
BENCHMARK(BM_ConstPropAlphaZero);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("constprop");
  printE6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
