//===----------------------------------------------------------------------===//
///
/// \file
/// E11 — sharded procedure-catalog builds (paper Section 7).
///
/// The paper's premise is that math libraries can be "compiled" into
/// databases once and reused across compiles.  Building the database is
/// embarrassingly parallel per translation unit, so this bench measures
/// the catalog builder at 1/2/4/8 workers over a synthetic library and
/// checks the one property the parallelism must not cost: the merged
/// serialized catalog is byte-identical to the serial build.
///
/// Rows append to BENCH_catalog.json (JSON Lines).  Measured speedup is
/// bounded by the host's core count — on a single-core container every
/// worker count degenerates to ~1.0x and only the determinism check is
/// meaningful; multi-core CI hosts see the parallel scaling.
///
/// TCC_CATALOG_BENCH_FILES overrides the library size (default 48 TUs),
/// so sanitizer jobs can run a smaller but still multi-threaded build.
///
//===----------------------------------------------------------------------===//

#include "catalog/CatalogBuilder.h"
#include "support/JSONWriter.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace tcc;

namespace {

unsigned libraryFiles() {
  if (const char *Env = std::getenv("TCC_CATALOG_BENCH_FILES")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 48;
}

/// One synthetic translation unit: a handful of vector/scalar kernels
/// with names unique to the file, sized so a shard does real front-end,
/// inline-preparation, and serialization work.
std::string makeUnit(unsigned Index) {
  std::string N = std::to_string(Index);
  return "float dot" + N + "(float *x, float *y, int n) {\n"
         "  float s;\n"
         "  s = 0.0;\n"
         "  for (; n; n--)\n"
         "    s = s + *x++ * *y++;\n"
         "  return s;\n"
         "}\n"
         "void fill" + N + "(float *x, float v, int n) {\n"
         "  for (; n; n--)\n"
         "    *x++ = v;\n"
         "}\n"
         "void axpy" + N + "(float *x, float *y, float a, int n) {\n"
         "  for (; n; n--) {\n"
         "    *x = *x + a * *y++;\n"
         "    x++;\n"
         "  }\n"
         "}\n"
         "int count" + N + "(int n) {\n"
         "  static int calls;\n"
         "  calls = calls + n;\n"
         "  return calls;\n"
         "}\n"
         "void scale2d" + N + "(float m[16][16], float s) {\n"
         "  int i, j;\n"
         "  for (i = 0; i < 16; i++)\n"
         "    for (j = 0; j < 16; j++)\n"
         "      m[i][j] = m[i][j] * s;\n"
         "}\n";
}

catalog::CatalogBuilder makeLibrary(unsigned Files) {
  catalog::CatalogBuilder B;
  for (unsigned I = 0; I < Files; ++I)
    B.addSource("unit" + std::to_string(I) + ".c", makeUnit(I));
  return B;
}

catalog::CatalogBuildResult buildAt(const catalog::CatalogBuilder &B,
                                    unsigned Workers) {
  catalog::CatalogBuildOptions Opts;
  Opts.Workers = Workers;
  return B.build(Opts);
}

/// Best-of-N build: single-shot wall-clock on a loaded host is too noisy
/// to compare worker counts, so report the fastest of a few runs.
catalog::CatalogBuildResult bestOf(const catalog::CatalogBuilder &B,
                                   unsigned Workers, int Runs = 3) {
  catalog::CatalogBuildResult Best = buildAt(B, Workers);
  for (int I = 1; I < Runs; ++I) {
    catalog::CatalogBuildResult R = buildAt(B, Workers);
    if (R.TotalMillis < Best.TotalMillis)
      Best = std::move(R);
  }
  return Best;
}

void appendRow(unsigned Files, size_t Procedures, unsigned Workers,
               double Millis, double SerialMillis, bool Identical) {
  std::ofstream OS("BENCH_catalog.json", std::ios::app);
  if (!OS)
    return;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("bench", "catalog");
  W.keyValue("files", static_cast<uint64_t>(Files));
  W.keyValue("procedures", static_cast<uint64_t>(Procedures));
  W.keyValue("workers", static_cast<uint64_t>(Workers));
  W.keyValue("millis", Millis);
  W.keyValue("serialMillis", SerialMillis);
  W.keyValue("speedup", Millis > 0.0 ? SerialMillis / Millis : 0.0);
  W.keyValue("identical", Identical);
  W.keyValue("hardwareThreads",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
  W.endObject();
  OS << '\n';
}

void runExperiment() {
  unsigned Files = libraryFiles();
  catalog::CatalogBuilder B = makeLibrary(Files);

  std::printf("\n================================================------\n");
  std::printf("E11: sharded catalog builds are parallel and "
              "deterministic (Section 7)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("  library: %u files, host threads: %u\n", Files,
              std::thread::hardware_concurrency());

  // Discard one cold build so allocator/page-cache warm-up is not charged
  // to the serial baseline.
  buildAt(B, 1);

  catalog::CatalogBuildResult Serial = bestOf(B, 1);
  if (!Serial.ok()) {
    std::fprintf(stderr, "bench_catalog: serial build failed:\n%s",
                 Serial.Diags.str().c_str());
    return;
  }
  std::string Golden = Serial.Catalog.serialize();

  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    catalog::CatalogBuildResult R = bestOf(B, Workers);
    bool Identical = R.ok() && R.Catalog.serialize() == Golden;
    double Speedup =
        R.TotalMillis > 0.0 ? Serial.TotalMillis / R.TotalMillis : 0.0;
    std::printf("  -j%-2u  %8.3f ms  speedup=%5.2fx  catalog %s\n", Workers,
                R.TotalMillis, Speedup,
                Identical ? "byte-identical" : "DIVERGED");
    appendRow(Files, R.Catalog.entries().size(), Workers, R.TotalMillis,
              Serial.TotalMillis, Identical);
  }
}

void BM_CatalogBuild(benchmark::State &State) {
  static catalog::CatalogBuilder B = makeLibrary(libraryFiles());
  unsigned Workers = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    catalog::CatalogBuildResult R = buildAt(B, Workers);
    benchmark::DoNotOptimize(R.Catalog.entries().size());
  }
}
BENCHMARK(BM_CatalogBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  runExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
