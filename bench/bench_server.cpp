//===----------------------------------------------------------------------===//
///
/// \file
/// E12 — the compile server under concurrent load.
///
/// A real daemon (not a mock: the same server::Server that tccd runs) is
/// started on a socket in the working directory, and 1/4/16 concurrent
/// clients drive the seven bench kernels through it over the wire.  The
/// bench reports, per concurrency level:
///
///   - requests/sec and p50/p99 request latency,
///   - the hot-cache hit rate (first round is all misses; every later
///     identical request should hit),
///
/// and appends one JSON-Lines row per level to BENCH_server.json via the
/// same single-write appender the other benches use.
///
/// Every response is also diffed against a direct in-process compile of
/// the same request — the byte-identity bar that makes the latency
/// numbers meaningful (a fast wrong answer is not a compile server).
///
//===----------------------------------------------------------------------===//

#include "ablate/Kernels.h"
#include "driver/ToolMain.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/JSONWriter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace tcc;

namespace {

using Clock = std::chrono::steady_clock;

struct Expected {
  server::Request Req;
  int Exit;
  std::string Out;
  std::string Err;
};

/// The reference answer: the same request compiled directly, the way
/// `tcc` would, with a fresh one-shot session.
Expected makeExpected(const ablate::BenchKernel &K) {
  Expected E;
  E.Req.Args = {K.Name + ".c"};
  E.Req.Source = K.Source;

  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(E.Req.Args, Inv, Error)) {
    std::fprintf(stderr, "bench_server: arg parse failed: %s\n",
                 Error.c_str());
    std::exit(1);
  }
  driver::CompilerSession Fresh;
  std::ostringstream Out, Err;
  E.Exit = driver::runToolInvocation(Inv, E.Req.Source, Fresh, Out, Err);
  E.Out = Out.str();
  E.Err = Err.str();
  return E;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

struct LevelResult {
  unsigned Clients = 0;
  uint64_t Requests = 0;
  uint64_t Mismatches = 0;
  double Seconds = 0.0;
  double P50Ms = 0.0;
  double P99Ms = 0.0;
  double HitRate = 0.0; ///< Hot-cache rate across the whole daemon so far.
};

LevelResult driveLevel(const std::string &Socket,
                       const std::vector<Expected> &Suite, unsigned Clients,
                       unsigned RoundsPerClient, server::Server &Daemon) {
  LevelResult R;
  R.Clients = Clients;
  std::mutex M;
  std::vector<double> Latencies;
  uint64_t Mismatches = 0;

  auto Start = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      server::Client Conn;
      std::string Error;
      if (!Conn.connect(Socket, Error)) {
        std::fprintf(stderr, "bench_server: client %u: %s\n", C,
                     Error.c_str());
        return;
      }
      std::vector<double> Mine;
      uint64_t MyMismatches = 0;
      for (unsigned Round = 0; Round < RoundsPerClient; ++Round) {
        for (const Expected &E : Suite) {
          auto T0 = Clock::now();
          server::Response Resp;
          if (!Conn.roundTrip(E.Req, Resp, Error)) {
            std::fprintf(stderr, "bench_server: client %u: %s\n", C,
                         Error.c_str());
            return;
          }
          Mine.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - T0)
                             .count());
          if (Resp.Exit != E.Exit || Resp.Out != E.Out || Resp.Err != E.Err)
            ++MyMismatches;
        }
      }
      std::lock_guard<std::mutex> Lock(M);
      Latencies.insert(Latencies.end(), Mine.begin(), Mine.end());
      Mismatches += MyMismatches;
    });
  }
  for (auto &T : Threads)
    T.join();
  R.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();

  std::sort(Latencies.begin(), Latencies.end());
  R.Requests = Latencies.size();
  R.Mismatches = Mismatches;
  R.P50Ms = percentile(Latencies, 0.50);
  R.P99Ms = percentile(Latencies, 0.99);
  server::HotCacheStats H = Daemon.hotCache().stats();
  R.HitRate = (H.Hits + H.Misses)
                  ? static_cast<double>(H.Hits) / (H.Hits + H.Misses)
                  : 0.0;
  return R;
}

void appendRow(const LevelResult &R) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("bench", "server");
  W.keyValue("clients", static_cast<uint64_t>(R.Clients));
  W.keyValue("requests", R.Requests);
  W.keyValue("mismatches", R.Mismatches);
  W.keyValue("requestsPerSec",
             R.Seconds > 0 ? R.Requests / R.Seconds : 0.0);
  W.keyValue("p50Ms", R.P50Ms);
  W.keyValue("p99Ms", R.P99Ms);
  W.keyValue("hotHitRate", R.HitRate);
  W.endObject();
  json::appendJsonLine("BENCH_server.json", OS.str());
}

} // namespace

int main() {
  const std::string Socket = ".bench-tccd.sock";
  const std::string CacheFile = ".bench-tcc-cache";
  std::remove(CacheFile.c_str());

  server::ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = CacheFile;
  server::Server Daemon(Opts);
  DiagnosticEngine Diags;
  if (!Daemon.start(Diags)) {
    std::fprintf(stderr, "bench_server: %s\n", Diags.str().c_str());
    return 1;
  }
  std::thread Acceptor([&Daemon] { Daemon.run(); });

  std::vector<Expected> Suite;
  for (const ablate::BenchKernel &K : ablate::benchKernels())
    Suite.push_back(makeExpected(K));

  std::printf("=== E12: compile server, %zu-kernel suite ===\n",
              Suite.size());
  std::printf("  %-8s %10s %12s %10s %10s %9s\n", "clients", "requests",
              "req/sec", "p50 ms", "p99 ms", "hit rate");

  uint64_t TotalMismatches = 0;
  for (unsigned Clients : {1u, 4u, 16u}) {
    LevelResult R = driveLevel(Socket, Suite, Clients,
                               /*RoundsPerClient=*/3, Daemon);
    TotalMismatches += R.Mismatches;
    std::printf("  %-8u %10llu %12.1f %10.3f %10.3f %8.1f%%\n", Clients,
                static_cast<unsigned long long>(R.Requests),
                R.Seconds > 0 ? R.Requests / R.Seconds : 0.0, R.P50Ms,
                R.P99Ms, R.HitRate * 100.0);
    appendRow(R);
  }

  Daemon.stop();
  Acceptor.join();

  if (TotalMismatches) {
    std::fprintf(stderr,
                 "bench_server: %llu response(s) differed from direct "
                 "compilation — the byte-identity bar FAILED\n",
                 static_cast<unsigned long long>(TotalMismatches));
    return 1;
  }
  std::printf("  every response byte-identical to direct tcc\n");
  return 0;
}
