//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8 (paper Section 5.2): vector startup amortization and
/// strip-mining.
///
/// "Knowing that the vector length in such loops is small enough that a
/// strip loop is not required is very important" — graphics code
/// transforms 4x4 matrices, where strip-loop overhead would dominate.
/// This bench sweeps the vector length and the strip length, and shows
/// the short-constant-trip case compiling without a strip loop.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

std::string vectorAddSource(int N) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf), R"(
    float a[%d], b[%d], c[%d];
    void titan_tic(void);
    void titan_toc(void);
    void main() {
      int i;
      for (i = 0; i < %d; i++) { b[i] = i; c[i] = 1.0; }
      titan_tic();
      for (i = 0; i < %d; i++)
        a[i] = b[i] + c[i];
      titan_toc();
    }
  )",
                N, N, N, N, N);
  return Buf;
}

void printE8() {
  printHeader("E8", "vector length, startup amortization, and "
                    "strip-mining (Section 5.2)");

  std::printf("  -- vector length sweep (strip length 32) --\n");
  for (int N : {4, 16, 32, 64, 256, 1024, 8192}) {
    Measurement M = measure("n=" + std::to_string(N), vectorAddSource(N),
                            driver::CompilerOptions::full(), {});
    std::printf("  n=%-6d cycles=%-9llu MFLOPS=%6.2f strips=%u "
                "unstriped=%u\n",
                N, static_cast<unsigned long long>(M.Run.Cycles),
                M.mflops(), M.Stats.Vectorize.StripLoops,
                M.Stats.Vectorize.UnstripedVectorStmts);
  }

  std::printf("\n  -- the graphics 4x4 case: no strip loop at n=4 --\n");
  Measurement Short = measure("n=4", vectorAddSource(4),
                              driver::CompilerOptions::full(), {});
  std::printf("  strip loops=%u unstriped vector stmts=%u\n",
              Short.Stats.Vectorize.StripLoops,
              Short.Stats.Vectorize.UnstripedVectorStmts);

  std::printf("\n  -- strip length sweep at n=8192 --\n");
  for (int SL : {16, 32, 64, 128, 512, 2048}) {
    driver::CompilerOptions O = driver::CompilerOptions::full();
    O.Vectorize.StripLength = SL;
    Measurement M = measure("strip=" + std::to_string(SL),
                            vectorAddSource(8192), O, {});
    std::printf("  strip=%-5d cycles=%-9llu MFLOPS=%6.2f\n", SL,
                static_cast<unsigned long long>(M.Run.Cycles), M.mflops());
  }
  std::printf("\n  Longer strips amortize startup on one processor; the "
              "paper uses 32-element\n  strips because they are the unit "
              "spread across processors.\n");
}

void BM_VectorLength(benchmark::State &State) {
  std::string Source = vectorAddSource(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    auto Out = driver::compileAndRun(Source,
                                     driver::CompilerOptions::full(), {});
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops({});
  }
}
BENCHMARK(BM_VectorLength)->Arg(4)->Arg(64)->Arg(1024)->Arg(8192);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("striplen");
  printE8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
