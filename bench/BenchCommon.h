//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the experiment benches.  Each bench binary
/// regenerates one of the paper's measured claims (see DESIGN.md's
/// experiment index): it prints a paper-vs-measured table on startup and
/// registers google-benchmark timings for the host-side compile+simulate
/// cost.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_BENCH_BENCHCOMMON_H
#define TCC_BENCH_BENCHCOMMON_H

#include "driver/Compiler.h"

#include <cstdio>
#include <string>

namespace tcc {
namespace bench {

/// One measured configuration.
struct Measurement {
  std::string Label;
  titan::RunResult Run;
  titan::TitanConfig Config;
  driver::PhaseStats Stats;

  /// Kernel MFLOPS: the titan_tic/titan_toc region when marked, else the
  /// whole run.
  double mflops() const { return Run.regionMflops(Config); }
  double cycles() const {
    return static_cast<double>(Run.RegionCycles ? Run.RegionCycles
                                                : Run.Cycles);
  }
};

inline Measurement measure(const std::string &Label,
                           const std::string &Source,
                           const driver::CompilerOptions &Opts,
                           const titan::TitanConfig &Config) {
  Measurement M;
  M.Label = Label;
  M.Config = Config;
  auto Out = driver::compileAndRun(Source, Opts, Config);
  if (!Out.Run.Ok) {
    std::fprintf(stderr, "bench '%s' failed: %s\n", Label.c_str(),
                 Out.Run.Error.c_str());
  }
  M.Run = Out.Run;
  M.Stats = Out.Compile->Stats;
  return M;
}

inline void printHeader(const char *Id, const char *Claim) {
  std::printf("\n================================================------\n");
  std::printf("%s: %s\n", Id, Claim);
  std::printf("------------------------------------------------------\n");
}

inline void printRow(const Measurement &M) {
  std::printf("  %-32s kernel-cycles=%-10.0f kernel-MFLOPS=%6.2f "
              "loads=%-7llu imuls=%-6llu vinstr=%llu\n",
              M.Label.c_str(), M.cycles(), M.mflops(),
              static_cast<unsigned long long>(M.Run.Loads),
              static_cast<unsigned long long>(M.Run.IntMuls),
              static_cast<unsigned long long>(M.Run.VectorInstrs));
}

inline void printComparison(const char *What, double Paper,
                            double Measured) {
  std::printf("  %-36s paper=%-8.2f measured=%-8.2f\n", What, Paper,
              Measured);
}

} // namespace bench
} // namespace tcc

#endif // TCC_BENCH_BENCHCOMMON_H
