//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the experiment benches.  Each bench binary
/// regenerates one of the paper's measured claims (see DESIGN.md's
/// experiment index): it prints a paper-vs-measured table on startup and
/// registers google-benchmark timings for the host-side compile+simulate
/// cost.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_BENCH_BENCHCOMMON_H
#define TCC_BENCH_BENCHCOMMON_H

#include "driver/Compiler.h"
#include "support/JSONWriter.h"

#include <cstdio>
#include <sstream>
#include <string>

namespace tcc {
namespace bench {

/// One measured configuration.
struct Measurement {
  std::string Label;
  titan::RunResult Run;
  titan::TitanConfig Config;
  driver::PhaseStats Stats;
  remarks::CompilationTelemetry Telemetry;

  /// True when the run marked a titan_tic/titan_toc region; every helper
  /// below reports that scope, so a row never mixes region cycles with
  /// whole-run MFLOPS (or vice versa).
  bool region() const { return Run.RegionCycles != 0; }
  double cycles() const {
    return static_cast<double>(region() ? Run.RegionCycles : Run.Cycles);
  }
  double flops() const {
    return static_cast<double>(region() ? Run.RegionFlops : Run.Flops);
  }
  /// Kernel MFLOPS over the same scope cycles() reports.
  double mflops() const {
    return cycles() ? flops() * Config.ClockMHz / cycles() : 0.0;
  }
};

/// Kernel tag for the machine-readable output below.  Each bench main
/// sets this once before measuring.
inline std::string &jsonKernel() {
  static std::string Kernel;
  return Kernel;
}
inline void setJsonKernel(const std::string &Kernel) {
  jsonKernel() = Kernel;
}

/// Appends one measurement as a single-line JSON object to
/// BENCH_pipeline.json in the working directory (JSON Lines: every bench
/// binary appends, so running the whole bench suite accumulates one
/// machine-readable file instead of eight clobbering each other).
inline void appendJsonRow(const Measurement &M) {
  if (jsonKernel().empty())
    return;
  // The whole row is rendered into a string and appended with a single
  // O_APPEND write: bench binaries run concurrently under ctest -j, and
  // field-at-a-time streaming into a shared file interleaves partial
  // lines (which corrupts the file for consumers like tcc-ablate).
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("kernel", jsonKernel());
  W.keyValue("variant", M.Label);
  W.keyValue("region", M.region());
  W.keyValue("cycles", M.cycles());
  W.keyValue("mflops", M.mflops());
  W.keyValue("vectorInstrs", static_cast<uint64_t>(M.Run.VectorInstrs));
  W.keyValue("loads", static_cast<uint64_t>(M.Run.Loads));
  W.keyValue("processors", static_cast<uint64_t>(M.Config.NumProcessors));
  W.keyValue("compileMillis", M.Telemetry.TotalMillis);
  W.key("passes").beginArray();
  for (const auto &Rec : M.Telemetry.Passes) {
    W.beginObject();
    W.keyValue("name", Rec.Pass);
    W.keyValue("millis", Rec.Millis);
    W.keyValue("stmtsDelta", static_cast<int64_t>(Rec.stmtsDelta()));
    W.endObject();
  }
  W.endArray();
  // Per-function scheduling rows (function-at-a-time pipeline): content
  // hash, wall-clock, IL delta, and whether the compile cache served it.
  W.key("functions").beginArray();
  for (const auto &FR : M.Telemetry.Functions) {
    W.beginObject();
    W.keyValue("name", FR.Function);
    W.keyValue("hash", FR.Hash);
    W.keyValue("millis", FR.Millis);
    W.keyValue("stmtsDelta",
               static_cast<int64_t>(FR.After.Stmts) -
                   static_cast<int64_t>(FR.Before.Stmts));
    W.keyValue("cacheHit", FR.CacheHit);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  json::appendJsonLine("BENCH_pipeline.json", OS.str());
}

inline Measurement measure(const std::string &Label,
                           const std::string &Source,
                           const driver::CompilerOptions &Opts,
                           const titan::TitanConfig &Config) {
  Measurement M;
  M.Label = Label;
  M.Config = Config;
  auto Out = driver::compileAndRun(Source, Opts, Config);
  if (!Out.Run.Ok) {
    std::fprintf(stderr, "bench '%s' failed: %s\n", Label.c_str(),
                 Out.Run.Error.c_str());
  }
  M.Run = Out.Run;
  M.Stats = Out.Compile->Stats;
  M.Telemetry = Out.Compile->Telemetry;
  appendJsonRow(M);
  return M;
}

inline void printHeader(const char *Id, const char *Claim) {
  std::printf("\n================================================------\n");
  std::printf("%s: %s\n", Id, Claim);
  std::printf("------------------------------------------------------\n");
}

inline void printRow(const Measurement &M) {
  std::printf("  %-32s kernel-cycles=%-10.0f kernel-MFLOPS=%6.2f "
              "loads=%-7llu imuls=%-6llu vinstr=%llu\n",
              M.Label.c_str(), M.cycles(), M.mflops(),
              static_cast<unsigned long long>(M.Run.Loads),
              static_cast<unsigned long long>(M.Run.IntMuls),
              static_cast<unsigned long long>(M.Run.VectorInstrs));
}

inline void printComparison(const char *What, double Paper,
                            double Measured) {
  std::printf("  %-36s paper=%-8.2f measured=%-8.2f\n", What, Paper,
              Measured);
}

} // namespace bench
} // namespace tcc

#endif // TCC_BENCH_BENCHCOMMON_H
