//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E7 (paper Sections 2 and 9): multiprocessor spreading,
/// grown into a Livermore-style scaling suite.  Each kernel of
/// ablate::parallelKernels() — hydro, inner product (reduction),
/// tri-diagonal (the negative control), a 2-D stencil (outer spread +
/// inner vectorize), and the loop-with-call pair — is compiled serial at
/// P=1 and spread at P ∈ {2,3,4}, printing the speedup-vs-P curve and
/// appending one row per (kernel, P) to BENCH_parallel.json.
///
/// Every parallel run's named-global memory is compared word-for-word
/// against the serial run: `do parallel` marks change timing, never what
/// the program computes.  Any divergence (or failed run) makes the
/// binary exit nonzero, so CI can gate on it directly.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ablate/Kernels.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

using namespace tcc;
using namespace tcc::bench;

namespace {

driver::CompilerOptions optionsFor(const ablate::ParallelKernel &K, int P) {
  driver::CompilerOptions O = P > 1 ? driver::CompilerOptions::parallel(P)
                                    : driver::CompilerOptions::full();
  if (K.DisableInline)
    O.EnableInline = false;
  return O;
}

titan::TitanConfig configFor(int P) {
  titan::TitanConfig C;
  C.NumProcessors = P;
  return C;
}

struct KernelRun {
  driver::RunOutcome Out;
  Measurement M;
  bool Ok = false;
};

KernelRun runKernel(const ablate::ParallelKernel &K, int P) {
  KernelRun R;
  R.M.Label = (P > 1 ? "spread, P=" : "serial, P=") + std::to_string(P);
  R.M.Config = configFor(P);
  R.Out = driver::compileAndRun(K.Source, optionsFor(K, P), R.M.Config);
  if (!R.Out.Run.Ok) {
    std::fprintf(stderr, "bench '%s' (P=%d) failed: %s\n", K.Name.c_str(), P,
                 R.Out.Run.Error.c_str());
    return R;
  }
  R.M.Run = R.Out.Run;
  R.M.Stats = R.Out.Compile->Stats;
  R.M.Telemetry = R.Out.Compile->Telemetry;
  appendJsonRow(R.M); // the shared BENCH_pipeline.json record
  R.Ok = true;
  return R;
}

/// Word-for-word comparison of every named global between the serial and
/// parallel runs; returns the number of diverging words.  Layouts are
/// compared by (name, contents): the two builds may differ in vectorizer
/// temporaries, so raw memory images are not comparable.
unsigned divergingWords(const driver::RunOutcome &Ref,
                        const driver::RunOutcome &Var) {
  const titan::TitanProgram &RefP = Ref.Compile->Machine;
  const titan::TitanProgram &VarP = Var.Compile->Machine;
  std::vector<std::pair<std::string, int64_t>> Extents(
      RefP.GlobalAddresses.begin(), RefP.GlobalAddresses.end());
  std::sort(Extents.begin(), Extents.end(),
            [](const auto &A, const auto &B) { return A.second < B.second; });
  unsigned Diverging = 0;
  for (size_t I = 0; I < Extents.size(); ++I) {
    int64_t End =
        (I + 1 < Extents.size()) ? Extents[I + 1].second : RefP.GlobalSize;
    auto It = VarP.GlobalAddresses.find(Extents[I].first);
    if (It == VarP.GlobalAddresses.end()) {
      ++Diverging;
      continue;
    }
    int64_t Words = (End - Extents[I].second) / 4;
    for (int64_t W = 0; W < Words; ++W)
      if (Ref.Machine->readInt(Extents[I].second + 4 * W) !=
          Var.Machine->readInt(It->second + 4 * W))
        ++Diverging;
  }
  return Diverging;
}

/// One BENCH_parallel.json row: everything a speedup-vs-P curve needs,
/// reconstructible from the file alone (kernel, processors, scope,
/// cycles/MFLOPS in that scope, and the speedup vs the P=1 row).
void appendParallelRow(const std::string &Kernel, const Measurement &M,
                       double Speedup) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("kernel", Kernel);
  W.keyValue("variant", M.Label);
  W.keyValue("processors",
             static_cast<int64_t>(M.Config.NumProcessors));
  W.keyValue("region", M.region());
  W.keyValue("cycles", M.cycles());
  W.keyValue("mflops", M.mflops());
  W.keyValue("speedup", Speedup);
  W.endObject();
  json::appendJsonLine("BENCH_parallel.json", OS.str());
}

/// Runs the whole suite; returns false on any failed run or memory
/// divergence.  \p BestAtP4 reports the best P=4 speedup across kernels.
bool runSuite(double &BestAtP4) {
  printHeader("E7", "multiprocessor scaling suite: spread across 1-4 Titan "
                    "processors (Sections 2, 9)");
  bool Ok = true;
  BestAtP4 = 0.0;
  for (const ablate::ParallelKernel &K : ablate::parallelKernels()) {
    setJsonKernel(K.Name);
    std::printf("  -- %s%s\n", K.Name.c_str(),
                K.DisableInline ? " (inlining disabled: call-safety path)"
                                : "");
    KernelRun Serial = runKernel(K, 1);
    if (!Serial.Ok) {
      Ok = false;
      continue;
    }
    printRow(Serial.M);
    appendParallelRow(K.Name, Serial.M, 1.0);
    for (int P : {2, 3, 4}) {
      KernelRun Par = runKernel(K, P);
      if (!Par.Ok) {
        Ok = false;
        continue;
      }
      double Speedup = Serial.M.cycles() / Par.M.cycles();
      unsigned Diverging = divergingWords(Serial.Out, Par.Out);
      printRow(Par.M);
      std::printf("    speedup vs 1 proc: %.2fx (ideal %.1fx)%s\n", Speedup,
                  static_cast<double>(P),
                  Diverging ? "  ** MEMORY DIVERGES **" : "");
      if (Diverging) {
        std::fprintf(stderr,
                     "bench '%s' (P=%d): %u global words diverge from the "
                     "serial run\n",
                     K.Name.c_str(), P, Diverging);
        Ok = false;
      }
      appendParallelRow(K.Name, Par.M, Speedup);
      if (P == 4)
        BestAtP4 = std::max(BestAtP4, Speedup);
    }
  }
  std::printf("\n  best P=4 speedup across the suite: %.2fx\n", BestAtP4);
  return Ok;
}

void BM_ParallelScaling(benchmark::State &State,
                        const ablate::ParallelKernel *K) {
  int P = static_cast<int>(State.range(0));
  titan::TitanConfig Cfg = configFor(P);
  driver::CompilerOptions Opts = optionsFor(*K, P);
  for (auto _ : State) {
    auto Out = driver::compileAndRun(K->Source, Opts, Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    uint64_t Cycles =
        Out.Run.RegionCycles ? Out.Run.RegionCycles : Out.Run.Cycles;
    State.counters["sim_cycles"] = static_cast<double>(Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.regionMflops(Cfg);
  }
}

} // namespace

int main(int argc, char **argv) {
  double BestAtP4 = 0.0;
  bool Ok = runSuite(BestAtP4);

  for (const ablate::ParallelKernel &K : ablate::parallelKernels())
    benchmark::RegisterBenchmark(("BM_ParallelScaling/" + K.Name).c_str(),
                                 BM_ParallelScaling, &K)
        ->Arg(1)
        ->Arg(2)
        ->Arg(3)
        ->Arg(4);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Ok ? 0 : 1;
}
