//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E7 (paper Sections 2 and 9): multiprocessor spreading.
/// "Spreading loop iterations among multiple processors can provide
/// significant speedups"; the Titan has up to four processors.  The
/// daxpy strip loop is spread across P ∈ {1,2,3,4} processors.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

const char *Source = R"(
  float a[8192], b[8192], c[8192];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i;
    for (i = 0; i < 8192; i++) { b[i] = i; c[i] = 1.5; }
    titan_tic();
    for (i = 0; i < 8192; i++)
      a[i] = b[i] + 2.5 * c[i];
    titan_toc();
  }
)";

void printE7() {
  printHeader("E7", "parallel spreading across 1-4 Titan processors "
                    "(Sections 2, 9)");
  titan::TitanConfig Base;
  Measurement Serial = measure("vector, 1 processor", Source,
                               driver::CompilerOptions::full(), Base);
  printRow(Serial);
  for (int P : {2, 3, 4}) {
    titan::TitanConfig Cfg;
    Cfg.NumProcessors = P;
    Measurement M = measure("do parallel, " + std::to_string(P) +
                                " processors",
                            Source, driver::CompilerOptions::parallel(),
                            Cfg);
    printRow(M);
    std::printf("    speedup vs 1 proc: %.2fx (ideal %.1fx)\n",
                Serial.cycles() / M.cycles(), static_cast<double>(P));
  }
}

void BM_ParallelScaling(benchmark::State &State) {
  titan::TitanConfig Cfg;
  Cfg.NumProcessors = static_cast<int>(State.range(0));
  auto Opts = Cfg.NumProcessors > 1 ? driver::CompilerOptions::parallel()
                                    : driver::CompilerOptions::full();
  for (auto _ : State) {
    auto Out = driver::compileAndRun(Source, Opts, Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_cycles"] = static_cast<double>(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops(Cfg);
  }
}
BENCHMARK(BM_ParallelScaling)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("parallel_scaling");
  printE7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
