//===----------------------------------------------------------------------===//
///
/// \file
/// Experiments E2 and E3 (paper Section 9).
///
/// E2: the inlined daxpy runs 12x faster on a two-processor Titan than
/// the scalar version of the same routine.
///
/// E3: the code-shape walkthrough — after inlining, while→DO conversion,
/// induction-variable substitution, constant propagation, dead-code
/// elimination, and vectorization, main reduces to
///
///   do parallel vi = 0, 99, 32 {
///     vr = min(99, vi+31);
///     a[vi:vr:1] = b[vi:vr:1] + c[vi:vr:1];
///   }
///
/// This bench prints the intermediate form after every phase so the
/// Section 9 listing can be compared line by line.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

/// The Section 9 program, verbatim in structure; N is the vector length
/// (the paper uses 100).
std::string daxpySource(int N) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf), R"(
    float a[%d], b[%d], c[%d];
    void titan_tic(void);
    void titan_toc(void);
    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0)
        return;
      if (alpha == 0)
        return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
    void main()
    {
      int i;
      for (i = 0; i < %d; i++) { b[i] = i; c[i] = 1.0; }
      titan_tic();
      daxpy(a, b, c, 1.0, %d);
      titan_toc();
    }
  )",
                N, N, N, N, N);
  return Buf;
}

void printE2() {
  // The paper's measurement is its Section 9 example: n = 100, strips of
  // 32 spread over two processors.
  std::string Source = daxpySource(100);

  // Scalar: daxpy called out of line, no vector/parallel, no overlap.
  driver::CompilerOptions ScalarOpts = driver::CompilerOptions::scalarOnly();
  ScalarOpts.EnableInline = false;
  titan::TitanConfig ScalarCfg;
  ScalarCfg.EnableOverlap = false;
  Measurement Scalar = measure("scalar (no inline)", Source, ScalarOpts,
                               ScalarCfg);

  // Inline + vectorize, one processor.
  driver::CompilerOptions VecOpts = driver::CompilerOptions::full();
  titan::TitanConfig OneCfg;
  Measurement Vec = measure("inline+vector (1 proc)", Source, VecOpts,
                            OneCfg);

  // Inline + vectorize + parallel, two processors.
  driver::CompilerOptions ParOpts = driver::CompilerOptions::parallel();
  titan::TitanConfig TwoCfg;
  TwoCfg.NumProcessors = 2;
  Measurement Par = measure("inline+vector+parallel (2 proc)", Source,
                            ParOpts, TwoCfg);

  printHeader("E2", "inlined daxpy is 12x the scalar routine on a "
                    "2-processor Titan (Section 9)");
  printRow(Scalar);
  printRow(Vec);
  printRow(Par);
  double Speed1 = Vec.cycles() ? Scalar.cycles() / Vec.cycles() : 0;
  double Speed2 = Par.cycles() ? Scalar.cycles() / Par.cycles() : 0;
  printComparison("speedup, 1 processor", 6.0, Speed1);
  printComparison("speedup, 2 processors", 12.0, Speed2);

  // Larger vectors amortize strip startup further (context row).
  std::string Big = daxpySource(4096);
  Measurement ScalarBig = measure("scalar, n=4096", Big, ScalarOpts,
                                  ScalarCfg);
  Measurement ParBig = measure("vector+parallel, n=4096", Big, ParOpts,
                               TwoCfg);
  printRow(ScalarBig);
  printRow(ParBig);
  std::printf("  n=4096 speedup on 2 processors: %.1fx\n",
              ScalarBig.cycles() / ParBig.cycles());
}

void printE3() {
  std::string Source = daxpySource(100);
  driver::CompilerOptions Opts = driver::CompilerOptions::parallel();
  Opts.CaptureStages = true;
  auto Result = driver::compileSource(Source, Opts);
  if (!Result->ok()) {
    std::fprintf(stderr, "E3 compile failed:\n%s\n",
                 Result->Diags.str().c_str());
    return;
  }
  printHeader("E3", "the Section 9 phase-by-phase walkthrough");
  for (const char *Key : {"inline", "whiletodo", "ivsub", "constprop",
                          "dce", "vectorize"}) {
    std::printf("---- after %s ----\n%s\n", Key,
                Result->Stages[Key].c_str());
  }
}

void BM_DaxpyScalar(benchmark::State &State) {
  std::string Source = daxpySource(4096);
  driver::CompilerOptions Opts = driver::CompilerOptions::scalarOnly();
  Opts.EnableInline = false;
  titan::TitanConfig Cfg;
  Cfg.EnableOverlap = false;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(Source, Opts, Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops(Cfg);
  }
}
BENCHMARK(BM_DaxpyScalar);

void BM_DaxpyVectorParallel2(benchmark::State &State) {
  std::string Source = daxpySource(4096);
  driver::CompilerOptions Opts = driver::CompilerOptions::parallel();
  titan::TitanConfig Cfg;
  Cfg.NumProcessors = 2;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(Source, Opts, Cfg);
    benchmark::DoNotOptimize(Out.Run.Cycles);
    State.counters["sim_MFLOPS"] = Out.Run.mflops(Cfg);
  }
}
BENCHMARK(BM_DaxpyVectorParallel2);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("daxpy");
  printE2();
  printE3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
