//===----------------------------------------------------------------------===//
///
/// \file
/// E13 — the chaos soak: long-haul survivability of the compile server.
///
/// Unlike bench_server (an in-process daemon under clean load), this
/// bench forks a real tccd child and then actively tries to break it
/// while client threads drive the seven bench kernels through it:
///
///   - the chaos thread kill -9s the daemon and restarts it
///     mid-campaign (each generation armed with a fresh
///     `server-accept` fault so some admissions die too),
///   - chaos requests carry `server:*:throw` and `server:*:stall`
///     faults (the stall is deadline-killed by the daemon's watchdog),
///   - periodic 24-connection bursts saturate the small admission queue
///     to force explicit busy sheds.
///
/// Clients survive all of it with the production retry path
/// (runRequestWithRetry: deadlines, backoff + jitter, busy hints).
/// Every eventually-successful response is diffed byte-for-byte against
/// a direct in-process compile — a retried answer that differs is a
/// campaign failure, not a statistic.
///
/// One JSON-Lines row goes to BENCH_soak.json: availability (excluding
/// sheds and chaos requests), retries, sheds, deadline kills, restarts,
/// and p50/p99 latency including retry time.
///
///   bench_soak [-tccd=path] [-seconds=n] [-clients=n] [-socket=path]
///
//===----------------------------------------------------------------------===//

#include "ablate/Kernels.h"
#include "driver/ToolMain.h"
#include "server/Client.h"
#include "support/JSONWriter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace tcc;

namespace {

using Clock = std::chrono::steady_clock;

struct Expected {
  server::Request Req;
  int Exit;
  std::string Out;
  std::string Err;
};

/// The reference answer: the same request compiled directly, the way
/// `tcc` would, with a fresh one-shot session.
Expected makeExpected(const ablate::BenchKernel &K) {
  Expected E;
  E.Req.Args = {K.Name + ".c"};
  E.Req.Source = K.Source;

  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(E.Req.Args, Inv, Error)) {
    std::fprintf(stderr, "bench_soak: arg parse failed: %s\n",
                 Error.c_str());
    std::exit(1);
  }
  driver::CompilerSession Fresh;
  std::ostringstream Out, Err;
  E.Exit = driver::runToolInvocation(Inv, E.Req.Source, Fresh, Out, Err);
  E.Out = Out.str();
  E.Err = Err.str();
  return E;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// Owns the tccd child process: spawn, await liveness, kill -9,
/// restart, graceful SIGTERM.  Only the chaos thread touches it after
/// startup, so no locking.
class Daemon {
public:
  Daemon(std::string Tccd, std::string Socket, std::string Cache)
      : Tccd(std::move(Tccd)), Socket(std::move(Socket)),
        Cache(std::move(Cache)) {}

  /// Forks and execs tccd; each generation gets a fresh accept-fault
  /// spec so some post-restart admissions die before responding.
  bool spawn() {
    ++Generation;
    std::string FaultArg = "-fault-inject=server-accept:*:throw:" +
                           std::to_string(2 + Generation % 5);
    std::vector<std::string> Args = {
        Tccd,
        "-socket=" + Socket,
        "-cache=" + Cache,
        "-workers=2",
        "-max-queue=4",
        "-request-deadline-ms=2000",
        FaultArg,
    };
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);

    Pid = ::fork();
    if (Pid < 0) {
      std::perror("bench_soak: fork");
      return false;
    }
    if (Pid == 0) {
      ::execv(Tccd.c_str(), Argv.data());
      std::perror("bench_soak: execv tccd");
      ::_exit(127);
    }
    return awaitLive();
  }

  /// Polls with health probes until the daemon answers (or ~10 s pass).
  bool awaitLive() {
    server::Request Ping;
    Ping.Kind = "ping";
    server::ClientOptions Opts;
    Opts.TimeoutMs = 1000;
    for (int I = 0; I < 200; ++I) {
      server::Response Resp;
      std::string Error;
      server::CallOutcome O =
          server::runRequestWithRetry(Socket, Ping, Opts, Resp, Error);
      if (O.Ok && Resp.Exit == 0)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "bench_soak: daemon never became live on '%s'\n",
                 Socket.c_str());
    return false;
  }

  void kill9() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGKILL);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    Pid = -1;
  }

  /// SIGTERM + wait; true iff the daemon drained and exited 0.
  bool terminate() {
    if (Pid <= 0)
      return false;
    ::kill(Pid, SIGTERM);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    Pid = -1;
    return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
  }

  unsigned generation() const { return Generation; }

private:
  std::string Tccd, Socket, Cache;
  pid_t Pid = -1;
  unsigned Generation = 0;
};

struct Tally {
  std::mutex M;
  std::vector<double> LatenciesMs; ///< Successful compiles, retry time included.
  uint64_t Ok = 0;
  uint64_t Divergences = 0;
  uint64_t Transport = 0; ///< Failures after the retry budget.
  uint64_t BusyFinal = 0; ///< Gave up while the daemon was shedding.
  uint64_t Retries = 0;   ///< Attempts beyond the first, all requests.
  uint64_t ShedSeen = 0;  ///< Busy responses observed (bursts included).
};

/// One traffic thread: drives the kernel suite through the retry path
/// until the campaign deadline, diffing every success against the
/// direct-compile reference.
void driveTraffic(const std::string &Socket,
                  const std::vector<Expected> &Suite, Clock::time_point End,
                  unsigned Seed, Tally &T) {
  server::ClientOptions Opts;
  Opts.TimeoutMs = 10000;
  // Generous retry envelope: a kill -9 plus restart takes a couple of
  // seconds, and surviving it *is* the experiment.
  Opts.Retries = 20;
  Opts.RetryBudgetMs = 15000;

  size_t I = Seed;
  while (Clock::now() < End) {
    const Expected &E = Suite[I++ % Suite.size()];
    auto T0 = Clock::now();
    server::Response Resp;
    std::string Error;
    server::CallOutcome O =
        server::runRequestWithRetry(Socket, E.Req, Opts, Resp, Error);
    double Ms =
        std::chrono::duration<double, std::milli>(Clock::now() - T0).count();

    std::lock_guard<std::mutex> Lock(T.M);
    T.Retries += O.Attempts - 1;
    if (!O.Ok) {
      ++T.Transport;
      continue;
    }
    if (Resp.Exit == server::BusyExit) {
      ++T.ShedSeen;
      ++T.BusyFinal;
      continue;
    }
    ++T.Ok;
    T.LatenciesMs.push_back(Ms);
    if (Resp.Exit != E.Exit || Resp.Out != E.Out || Resp.Err != E.Err)
      ++T.Divergences;
  }
}

/// The chaos schedule, round-robin: kill -9 + restart, a throw fault, a
/// stall (deadline-killed) fault, and a 24-connection saturation burst.
void driveChaos(Daemon &D, const std::string &Socket,
                const std::vector<Expected> &Suite, Clock::time_point End,
                Tally &T, uint64_t &Restarts, uint64_t &ChaosFaults,
                std::atomic<bool> &Failed) {
  unsigned Step = 0;
  while (Clock::now() < End) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    if (Clock::now() >= End)
      break;
    switch (Step++ % 4) {
    case 0: { // Murder and resurrection.
      D.kill9();
      if (!D.spawn()) {
        Failed.store(true);
        return;
      }
      ++Restarts;
      break;
    }
    case 1:   // A request that dies in the handler (contained, exit 2).
    case 2: { // A request that wedges (watchdog-killed, exit 2).
      const char *Kind = (Step - 1) % 4 == 1 ? "throw" : "stall";
      server::Request Req = Suite[0].Req;
      Req.Args.push_back(std::string("-fault-inject=server:*:") + Kind +
                         ":1");
      server::ClientOptions Opts;
      Opts.TimeoutMs = 10000;
      Opts.Retries = 5;
      Opts.RetryBudgetMs = 8000;
      server::Response Resp;
      std::string Error;
      server::CallOutcome O =
          server::runRequestWithRetry(Socket, Req, Opts, Resp, Error);
      // Exit 2 is the *expected* shape; anything else would matter, but
      // chaos requests never count toward availability either way.
      if (O.Ok && Resp.Exit == 2)
        ++ChaosFaults;
      break;
    }
    default: { // Saturation burst against workers=2, max-queue=4.
      // Pin both workers first with 500 ms `slow` faults so the burst
      // actually piles up in the admission queue instead of being
      // served as fast as it connects.
      std::vector<std::thread> Pins;
      for (unsigned P = 0; P < 2; ++P)
        Pins.emplace_back([&] {
          server::Request Req = Suite[0].Req;
          Req.Args.push_back("-fault-inject=server:*:slow:1");
          server::Response Resp;
          std::string Error;
          server::Client C(/*TimeoutMs=*/10000);
          if (C.connect(Socket, Error))
            C.roundTrip(Req, Resp, Error);
        });
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::vector<std::thread> Burst;
      std::atomic<uint64_t> Sheds{0};
      for (unsigned B = 0; B < 24; ++B)
        Burst.emplace_back([&, B] {
          const Expected &E = Suite[B % Suite.size()];
          server::Response Resp;
          std::string Error;
          server::Client C(/*TimeoutMs=*/10000);
          if (C.connect(Socket, Error) &&
              C.roundTrip(E.Req, Resp, Error) &&
              Resp.Exit == server::BusyExit)
            ++Sheds;
        });
      for (std::thread &Th : Burst)
        Th.join();
      for (std::thread &Th : Pins)
        Th.join();
      std::lock_guard<std::mutex> Lock(T.M);
      T.ShedSeen += Sheds.load();
      break;
    }
    }
  }
}

/// Reads one field out of the health JSON (flat numeric fields only).
uint64_t healthField(const std::string &Json, const std::string &Key) {
  size_t P = Json.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return 0;
  return std::strtoull(Json.c_str() + P + Key.size() + 3, nullptr, 10);
}

} // namespace

int main(int argc, char **argv) {
  std::string TccdPath = "examples/tccd";
  std::string Socket = ".soak-tccd.sock";
  unsigned Seconds = 20;
  unsigned Clients = 4;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-tccd=", 0) == 0)
      TccdPath = Arg.substr(std::strlen("-tccd="));
    else if (Arg.rfind("-socket=", 0) == 0)
      Socket = Arg.substr(std::strlen("-socket="));
    else if (Arg.rfind("-seconds=", 0) == 0)
      Seconds = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-seconds=")));
    else if (Arg.rfind("-clients=", 0) == 0)
      Clients = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-clients=")));
    else {
      std::fprintf(stderr,
                   "bench_soak: unknown option '%s'\n"
                   "usage: bench_soak [-tccd=path] [-seconds=n] "
                   "[-clients=n] [-socket=path]\n",
                   Arg.c_str());
      return 2;
    }
  }

  const std::string Cache = ".soak-tcc-cache";
  std::remove(Cache.c_str());

  std::vector<Expected> Suite;
  for (const ablate::BenchKernel &K : ablate::benchKernels())
    Suite.push_back(makeExpected(K));

  std::printf("=== E13: chaos soak, %u clients x %us against '%s' ===\n",
              Clients, Seconds, TccdPath.c_str());

  Daemon D(TccdPath, Socket, Cache);
  if (!D.spawn())
    return 1;

  Tally T;
  uint64_t Restarts = 0, ChaosFaults = 0;
  std::atomic<bool> ChaosFailed{false};
  auto Start = Clock::now();
  auto End = Start + std::chrono::seconds(Seconds);

  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back(
        [&, C] { driveTraffic(Socket, Suite, End, C, T); });
  std::thread Chaos([&] {
    driveChaos(D, Socket, Suite, End, T, Restarts, ChaosFaults,
               ChaosFailed);
  });
  for (std::thread &Th : Threads)
    Th.join();
  Chaos.join();
  double Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();

  // Harvest daemon-side counters before shutting it down.
  uint64_t DaemonShed = 0, DaemonDeadlineKilled = 0, DaemonAcceptFaults = 0;
  {
    server::Request Ping;
    Ping.Kind = "ping";
    server::ClientOptions Opts;
    Opts.TimeoutMs = 5000;
    Opts.Retries = 3;
    server::Response Resp;
    std::string Error;
    if (server::runRequestWithRetry(Socket, Ping, Opts, Resp, Error).Ok) {
      DaemonShed = healthField(Resp.Out, "shed");
      DaemonDeadlineKilled = healthField(Resp.Out, "deadlineKilled");
      DaemonAcceptFaults = healthField(Resp.Out, "acceptFaults");
      std::printf("  health: %s", Resp.Out.c_str());
    }
  }
  bool Drained = D.terminate();

  std::sort(T.LatenciesMs.begin(), T.LatenciesMs.end());
  double P50 = percentile(T.LatenciesMs, 0.50);
  double P99 = percentile(T.LatenciesMs, 0.99);
  // Availability over real traffic: sheds are explicit refusals and
  // chaos requests are supposed to fail, so neither counts against it.
  uint64_t Decided = T.Ok + T.Transport;
  double Availability =
      Decided ? static_cast<double>(T.Ok) / Decided : 0.0;

  std::printf("  %llu ok, %llu transport-failed, %llu gave up busy | "
              "availability %.4f\n",
              static_cast<unsigned long long>(T.Ok),
              static_cast<unsigned long long>(T.Transport),
              static_cast<unsigned long long>(T.BusyFinal), Availability);
  std::printf("  %llu retries, %llu busy responses seen (daemon shed "
              "%llu), %llu restarts, %llu chaos faults, %llu "
              "deadline-killed, %llu accept faults\n",
              static_cast<unsigned long long>(T.Retries),
              static_cast<unsigned long long>(T.ShedSeen),
              static_cast<unsigned long long>(DaemonShed),
              static_cast<unsigned long long>(Restarts),
              static_cast<unsigned long long>(ChaosFaults),
              static_cast<unsigned long long>(DaemonDeadlineKilled),
              static_cast<unsigned long long>(DaemonAcceptFaults));
  std::printf("  p50 %.3f ms, p99 %.3f ms (retry time included), "
              "graceful drain: %s\n",
              P50, P99, Drained ? "yes" : "NO");

  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("bench", "soak");
  W.keyValue("seconds", Elapsed);
  W.keyValue("clients", static_cast<uint64_t>(Clients));
  W.keyValue("ok", T.Ok);
  W.keyValue("transportFailed", T.Transport);
  W.keyValue("busyFinal", T.BusyFinal);
  W.keyValue("divergences", T.Divergences);
  W.keyValue("availability", Availability);
  W.keyValue("retries", T.Retries);
  W.keyValue("shedSeen", T.ShedSeen);
  W.keyValue("daemonShed", DaemonShed);
  W.keyValue("deadlineKilled", DaemonDeadlineKilled);
  W.keyValue("acceptFaults", DaemonAcceptFaults);
  W.keyValue("restarts", Restarts);
  W.keyValue("chaosFaults", ChaosFaults);
  W.keyValue("p50Ms", P50);
  W.keyValue("p99Ms", P99);
  W.keyValue("gracefulDrain", Drained);
  W.endObject();
  json::appendJsonLine("BENCH_soak.json", OS.str());

  if (T.Divergences) {
    std::fprintf(stderr,
                 "bench_soak: %llu retried response(s) differed from "
                 "direct compilation — the byte-identity bar FAILED\n",
                 static_cast<unsigned long long>(T.Divergences));
    return 1;
  }
  if (ChaosFailed.load()) {
    std::fprintf(stderr, "bench_soak: daemon failed to restart\n");
    return 1;
  }
  if (T.Ok == 0) {
    std::fprintf(stderr, "bench_soak: no request ever succeeded\n");
    return 1;
  }
  std::printf("  every successful response byte-identical to direct "
              "tcc\n");
  return 0;
}
