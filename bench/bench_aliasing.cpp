//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E9 (paper Section 9): aliasing and the three ways out.
///
/// "This C routine cannot be safely vectorized, because C imposes no
/// restrictions on argument aliasing. ... It can be automatically
/// vectorized by adding in a pragma stating that the loop is safe ... or
/// by invoking a compiler option that states that pointer parameters
/// have Fortran semantics ... However, we can also inline daxpy."
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace tcc;
using namespace tcc::bench;

namespace {

/// daxpy kept out of line: pointer aliasing is the compiler's problem.
const char *NoInlineSource = R"(
  float a[4096], b[4096], c[4096];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 2.0, 4096);
    titan_toc();
  }
)";

/// Same routine with the paper's safety pragma on the loop.
const char *PragmaSource = R"(
  float a[4096], b[4096], c[4096];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    #pragma safe
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 2.0, 4096);
    titan_toc();
  }
)";

void printE9() {
  printHeader("E9", "argument aliasing blocks vectorization; pragma, "
                    "Fortran pointer semantics, or inlining remove it "
                    "(Section 9)");

  driver::CompilerOptions NoInline = driver::CompilerOptions::full();
  NoInline.EnableInline = false;
  Measurement Blocked = measure("no inline, no pragma", NoInlineSource,
                                NoInline, {});

  Measurement Pragma = measure("no inline, #pragma safe", PragmaSource,
                               NoInline, {});

  driver::CompilerOptions Fortran = driver::CompilerOptions::full();
  Fortran.EnableInline = false;
  Fortran.Vectorize.FortranPointerSemantics = true;
  Measurement FortranM = measure("no inline, fortran pointers",
                                 NoInlineSource, Fortran, {});

  Measurement Inlined = measure("inlined", NoInlineSource,
                                driver::CompilerOptions::full(), {});

  printRow(Blocked);
  printRow(Pragma);
  printRow(FortranM);
  printRow(Inlined);
  std::printf("  vector stmts: blocked=%u pragma=%u fortran=%u inlined=%u\n",
              Blocked.Stats.Vectorize.VectorStmts,
              Pragma.Stats.Vectorize.VectorStmts,
              FortranM.Stats.Vectorize.VectorStmts,
              Inlined.Stats.Vectorize.VectorStmts);
  printComparison("vectorized-over-blocked speedup (>1)", 3.0,
                  Blocked.cycles() / Inlined.cycles());
}

void BM_AliasBlocked(benchmark::State &State) {
  driver::CompilerOptions O = driver::CompilerOptions::full();
  O.EnableInline = false;
  for (auto _ : State) {
    auto Out = driver::compileAndRun(NoInlineSource, O, {});
    benchmark::DoNotOptimize(Out.Run.Cycles);
  }
}
BENCHMARK(BM_AliasBlocked);

void BM_AliasInlined(benchmark::State &State) {
  for (auto _ : State) {
    auto Out = driver::compileAndRun(NoInlineSource,
                                     driver::CompilerOptions::full(), {});
    benchmark::DoNotOptimize(Out.Run.Cycles);
  }
}
BENCHMARK(BM_AliasInlined);

} // namespace

int main(int argc, char **argv) {
  setJsonKernel("aliasing");
  printE9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
