//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for AST → IL lowering: the (statement list, expression) pair
/// discipline of paper Section 4.  Verifies that side-effecting operators
/// become explicit statements, that `*a++ = *b++` produces the paper's
/// temp chain, that while-condition statement lists are duplicated at the
/// bottom of the body, and that volatile semantics survive.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"

#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace tcc;

namespace {

struct LowerResult {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<LowerResult> lower(const std::string &Source,
                                   bool ExpectErrors = false) {
  auto R = std::make_unique<LowerResult>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  if (!ExpectErrors)
    EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

std::string printFunc(LowerResult &R, const std::string &Name) {
  il::Function *F = R.P->findFunction(Name);
  EXPECT_NE(F, nullptr);
  return F ? il::printFunction(*F) : "";
}

/// Count occurrences of a substring.
size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

TEST(LowerTest, SimpleAssignment) {
  auto R = lower("void f() { int x; x = 5; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("x = 5;"), std::string::npos);
}

TEST(LowerTest, PaperStarCopyLoop) {
  // The Section 5.3 example: while(n){ *a++ = *b++; n--; } must lower to
  // the temp chain shown in the paper.
  auto R = lower(R"(
    void copy(float *a, float *b, int n) {
      while (n) {
        *a++ = *b++;
        n--;
      }
    }
  )");
  std::string Out = printFunc(*R, "copy");
  // temp_1 = a; a = temp_1 + 4;
  EXPECT_NE(Out.find("temp_1 = a;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a = temp_1 + 4;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("temp_2 = b;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("b = temp_2 + 4;"), std::string::npos) << Out;
  // The star assignment uses the temps.
  EXPECT_NE(Out.find("*temp_1 = *temp_2;"), std::string::npos) << Out;
  // n-- becomes temp_3 = n; n = temp_3 - 1 (printed as + -1).
  EXPECT_NE(Out.find("temp_3 = n;"), std::string::npos) << Out;
}

TEST(LowerTest, AssignmentChainUsesTemp) {
  // a = v = b with volatile v: v is written once and never read (the
  // paper's ANSI observation).
  auto R = lower("volatile int v; void f(int a, int b) { a = v = b; }");
  std::string Out = printFunc(*R, "f");
  // v appears exactly once, on the left of an assignment.
  EXPECT_EQ(countOccurrences(Out, "v ="), 1u) << Out;
  EXPECT_EQ(countOccurrences(Out, "= v"), 0u) << Out;
}

TEST(LowerTest, WhileConditionListDuplicated) {
  // while (n--) ...: the condition's statement list appears once before
  // the loop and once at the bottom of the body (paper Section 4).
  auto R = lower("void f(int n) { int s; s = 0; while (n--) s += 1; }");
  std::string Out = printFunc(*R, "f");
  // Post-decrement pattern appears twice: once pre-loop, once at body end.
  EXPECT_EQ(countOccurrences(Out, "= n;"), 2u) << Out;
  EXPECT_EQ(countOccurrences(Out, "n = "), 2u) << Out;
}

TEST(LowerTest, ShortCircuitAndBecomesIf) {
  auto R = lower("int g(int a); void f(int a, int b) { int c; "
                 "c = a && g(b); }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("if (a)"), std::string::npos) << Out;
  // The call happens only inside the if (short-circuit preserved).
  EXPECT_EQ(countOccurrences(Out, "g("), 1u) << Out;
}

TEST(LowerTest, ConditionalOperatorBecomesIf) {
  auto R = lower("void f(int a, int b, int c) { int m; m = a ? b : c; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("if (a)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("} else {"), std::string::npos) << Out;
}

TEST(LowerTest, NoAssignOperatorInILExpressions) {
  // However convoluted the source, IL assignments are statements; the
  // printer emits one '=' per assignment statement line.
  auto R = lower(R"(
    void f(int a, int b, int c) {
      int x;
      x = (a = b, b = c, a + b);
      x = a ? (b = 2) : (c = 3);
    }
  )");
  std::string Out = printFunc(*R, "f");
  for (size_t Pos = 0; (Pos = Out.find('=', Pos)) != std::string::npos;
       ++Pos) {
    // Every '=' is an assignment statement's operator or part of a
    // comparison inside a condition; none may appear nested in an
    // arithmetic expression. A cheap proxy: the line containing '=' ends
    // with ';' and contains exactly one '='.
    size_t LineStart = Out.rfind('\n', Pos);
    size_t LineEnd = Out.find('\n', Pos);
    std::string Line = Out.substr(LineStart + 1, LineEnd - LineStart - 1);
    if (Line.find("if (") != std::string::npos ||
        Line.find("while (") != std::string::npos ||
        Line.find("==") != std::string::npos)
      continue;
    EXPECT_EQ(countOccurrences(Line, "="), 1u) << Line;
  }
}

TEST(LowerTest, ForBecomesWhile) {
  // The front end represents for loops as while loops (paper Section 5.2).
  auto R = lower("void f(int n) { int i; int s; s = 0; "
                 "for (i = 0; i < n; i++) s += i; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("while (i < n)"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("for"), std::string::npos) << Out;
}

TEST(LowerTest, ArraySubscriptKeepsIndexForm) {
  auto R = lower("float a[100]; void f(int i) { a[i] = 1.0; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("a[i] ="), std::string::npos) << Out;
}

TEST(LowerTest, TwoDimensionalArray) {
  auto R = lower("float m[4][4]; void f(int i, int j) { m[i][j] = 0.0; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("m[i][j] ="), std::string::npos) << Out;
}

TEST(LowerTest, PointerSubscriptBecomesStarForm) {
  // p[i] on a pointer becomes *(p + 4*i), the paper's star form.
  auto R = lower("void f(float *p, int i) { p[i] = 0.0; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("*(p + 4 * i) ="), std::string::npos) << Out;
}

TEST(LowerTest, ArrayDecayToPointer) {
  auto R = lower("float a[100]; void g(float *p); void f() { g(a); }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("g(&a)"), std::string::npos) << Out;
}

TEST(LowerTest, PointerArithmeticScaled) {
  auto R = lower("void f(float *p, double *q, int i) { "
                 "float *p2; double *q2; p2 = p + i; q2 = q + i; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("p + 4 * i"), std::string::npos) << Out;
  EXPECT_NE(Out.find("q + 8 * i"), std::string::npos) << Out;
}

TEST(LowerTest, PointerDifferenceDividesBySize) {
  auto R = lower("int f(float *p, float *q) { return p - q; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("/ 4"), std::string::npos) << Out;
}

TEST(LowerTest, CallsAreStatements) {
  auto R = lower("int g(int x); void f(int a) { int y; y = g(a) + g(a+1); }");
  std::string Out = printFunc(*R, "f");
  // Two call statements, each assigning to a call temp.
  EXPECT_EQ(countOccurrences(Out, "= g("), 2u) << Out;
}

TEST(LowerTest, VoidCallNoResult) {
  auto R = lower("void g(int x); void f() { g(1); }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("g(1);"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("= g("), std::string::npos) << Out;
}

TEST(LowerTest, BreakContinueBecomeGotos) {
  auto R = lower(R"(
    void f(int n) {
      int i;
      for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
      }
    }
  )");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("goto cont_"), std::string::npos) << Out;
  EXPECT_NE(Out.find("goto brk_"), std::string::npos) << Out;
  // Labels are emitted.
  EXPECT_NE(Out.find("cont_"), std::string::npos);
  EXPECT_NE(Out.find("brk_"), std::string::npos);
}

TEST(LowerTest, GotoAndLabels) {
  auto R = lower("void f() { int x; x = 0; top: x += 1; "
                 "if (x < 3) goto top; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("L_top:;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("goto L_top;"), std::string::npos) << Out;
}

TEST(LowerTest, StaticLocalGetsInit) {
  auto R = lower("int f() { static int counter = 41; counter += 1; "
                 "return counter; }");
  il::Function *F = R->P->findFunction("f");
  ASSERT_NE(F, nullptr);
  il::Symbol *S = F->findSymbol("counter");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->getStorage(), il::StorageKind::Static);
  ASSERT_TRUE(S->hasInit());
  EXPECT_EQ(S->getInit().IntValue, 41);
}

TEST(LowerTest, LocalInitBecomesAssignment) {
  auto R = lower("void f() { int x = 3; float y = 2.5; }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("x = 3;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("y = "), std::string::npos) << Out;
}

TEST(LowerTest, GlobalInits) {
  auto R = lower("int n = 100; float eps = 0.5; double d = -2.0; int z;");
  il::Symbol *N = R->P->findGlobal("n");
  ASSERT_TRUE(N && N->hasInit());
  EXPECT_EQ(N->getInit().IntValue, 100);
  il::Symbol *Eps = R->P->findGlobal("eps");
  ASSERT_TRUE(Eps && Eps->hasInit());
  EXPECT_DOUBLE_EQ(Eps->getInit().FloatValue, 0.5);
  il::Symbol *D = R->P->findGlobal("d");
  ASSERT_TRUE(D && D->hasInit());
  EXPECT_DOUBLE_EQ(D->getInit().FloatValue, -2.0);
  il::Symbol *Z = R->P->findGlobal("z");
  ASSERT_TRUE(Z);
  EXPECT_FALSE(Z->hasInit());
}

TEST(LowerTest, VolatileSymbolMarked) {
  auto R = lower("volatile int status; void f() { while (!status) { } }");
  il::Symbol *S = R->P->findGlobal("status");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->isVolatile());
}

TEST(LowerTest, TypeConversionsInserted) {
  auto R = lower("void f(float x, int i) { double d; d = x + i; }");
  std::string Out = printFunc(*R, "f");
  // x + i computes in float (int converts), then converts to double.
  EXPECT_NE(Out.find("(float)i"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(double)"), std::string::npos) << Out;
}

TEST(LowerTest, ScopeShadowing) {
  auto R = lower(R"(
    void f() {
      int x; x = 1;
      { int x; x = 2; }
      x = 3;
    }
  )");
  il::Function *F = R->P->findFunction("f");
  ASSERT_NE(F, nullptr);
  // Two distinct symbols exist.
  EXPECT_NE(F->findSymbol("x"), nullptr);
  EXPECT_NE(F->findSymbol("x_2"), nullptr);
}

TEST(LowerTest, UndeclaredIdentifierError) {
  auto R = lower("void f() { y = 1; }", /*ExpectErrors=*/true);
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(LowerTest, BadLValueError) {
  auto R = lower("void f(int a, int b) { a + b = 3; }", /*ExpectErrors=*/true);
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(LowerTest, ReturnTypeMismatchDiagnosed) {
  auto R = lower("void f() { return 3; }", /*ExpectErrors=*/true);
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(LowerTest, ImplicitReturnAppended) {
  auto R = lower("void f() { int x; x = 1; }");
  il::Function *F = R->P->findFunction("f");
  ASSERT_FALSE(F->getBody().empty());
  EXPECT_EQ(F->getBody().Stmts.back()->getKind(), il::Stmt::ReturnKind);
}

TEST(LowerTest, DoWhileUsesBackwardGoto) {
  auto R = lower("void f(int n) { int s; s = 0; do { s += 1; n--; } "
                 "while (n > 0); }");
  std::string Out = printFunc(*R, "f");
  EXPECT_NE(Out.find("top_"), std::string::npos) << Out;
  EXPECT_NE(Out.find("goto top_"), std::string::npos) << Out;
}

TEST(LowerTest, DaxpyLowersWithGuardsAndWhile) {
  auto R = lower(R"(
    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0)
        return;
      if (alpha == 0)
        return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
  )");
  std::string Out = printFunc(*R, "daxpy");
  EXPECT_NE(Out.find("if (n <= 0)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("while (n)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("alpha *"), std::string::npos) << Out;
}

} // namespace
