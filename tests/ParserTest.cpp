//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the C parser: declarations, statements, the expression
/// grammar (precedence and associativity), and error reporting.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::ast;

namespace {

struct ParseResult {
  AstContext Ctx;
  TypeContext Types;
  DiagnosticEngine Diags;
  TranslationUnit TU;
};

std::unique_ptr<ParseResult> parse(const std::string &Source,
                                   bool ExpectErrors = false) {
  auto R = std::make_unique<ParseResult>();
  Lexer L(Source, R->Diags);
  Parser P(L.lexAll(), R->Ctx, R->Types, R->Diags);
  R->TU = P.parseTranslationUnit();
  if (!ExpectErrors)
    EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

Expr *parseExpr(ParseResult &R, const std::string &Source) {
  Lexer L(Source, R.Diags);
  Parser P(L.lexAll(), R.Ctx, R.Types, R.Diags);
  Expr *E = P.parseStandaloneExpr();
  EXPECT_FALSE(R.Diags.hasErrors()) << R.Diags.str();
  return E;
}

TEST(ParserTest, GlobalVariable) {
  auto R = parse("int x; float y = 1.5; volatile int keyboard_status;");
  ASSERT_EQ(R->TU.Globals.size(), 3u);
  EXPECT_EQ(R->TU.Globals[0].Name, "x");
  EXPECT_TRUE(R->TU.Globals[0].DeclType->isInt());
  EXPECT_EQ(R->TU.Globals[1].Name, "y");
  EXPECT_TRUE(R->TU.Globals[1].DeclType->isFloat());
  ASSERT_NE(R->TU.Globals[1].Init, nullptr);
  EXPECT_TRUE(R->TU.Globals[2].IsVolatile);
}

TEST(ParserTest, GlobalArrays) {
  auto R = parse("float a[100]; int m[4][4];");
  ASSERT_EQ(R->TU.Globals.size(), 2u);
  const Type *A = R->TU.Globals[0].DeclType;
  ASSERT_TRUE(A->isArray());
  EXPECT_EQ(A->getArraySize(), 100);
  EXPECT_TRUE(A->getElementType()->isFloat());
  const Type *M = R->TU.Globals[1].DeclType;
  ASSERT_TRUE(M->isArray());
  EXPECT_EQ(M->getArraySize(), 4);
  ASSERT_TRUE(M->getElementType()->isArray());
  EXPECT_EQ(M->getElementType()->getArraySize(), 4);
}

TEST(ParserTest, PointerDeclarators) {
  auto R = parse("float *p; float **pp; int *volatile q;");
  EXPECT_TRUE(R->TU.Globals[0].DeclType->isPointer());
  EXPECT_TRUE(R->TU.Globals[1].DeclType->isPointer());
  EXPECT_TRUE(R->TU.Globals[1].DeclType->getElementType()->isPointer());
}

TEST(ParserTest, FunctionDefinition) {
  auto R = parse("void daxpy(float *x, float *y, float *z, float alpha, "
                 "int n) { return; }");
  ASSERT_EQ(R->TU.Functions.size(), 1u);
  const FunctionDecl &F = R->TU.Functions[0];
  EXPECT_EQ(F.Name, "daxpy");
  EXPECT_TRUE(F.ReturnType->isVoid());
  ASSERT_EQ(F.Params.size(), 5u);
  EXPECT_TRUE(F.Params[0].DeclType->isPointer());
  EXPECT_TRUE(F.Params[3].DeclType->isFloat());
  EXPECT_TRUE(F.Params[4].DeclType->isInt());
  ASSERT_NE(F.Body, nullptr);
}

TEST(ParserTest, FunctionPrototype) {
  auto R = parse("float dot(float *a, float *b, int n);");
  ASSERT_EQ(R->TU.Functions.size(), 1u);
  EXPECT_EQ(R->TU.Functions[0].Body, nullptr);
}

TEST(ParserTest, ArrayParamDecaysToPointer) {
  auto R = parse("void f(float a[100]) {}");
  ASSERT_EQ(R->TU.Functions.size(), 1u);
  EXPECT_TRUE(R->TU.Functions[0].Params[0].DeclType->isPointer());
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  ParseResult R;
  Expr *E = parseExpr(R, "a + b * c");
  auto *Add = dynamic_cast<BinaryExpr *>(E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->getOp(), BinaryOp::Add);
  auto *Mul = dynamic_cast<BinaryExpr *>(Add->getRHS());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->getOp(), BinaryOp::Mul);
}

TEST(ParserTest, AssociativityLeftSub) {
  ParseResult R;
  Expr *E = parseExpr(R, "a - b - c");
  auto *Outer = dynamic_cast<BinaryExpr *>(E);
  ASSERT_NE(Outer, nullptr);
  auto *Inner = dynamic_cast<BinaryExpr *>(Outer->getLHS());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getOp(), BinaryOp::Sub);
}

TEST(ParserTest, AssignmentRightAssociative) {
  ParseResult R;
  Expr *E = parseExpr(R, "a = b = c");
  auto *Outer = dynamic_cast<AssignExpr *>(E);
  ASSERT_NE(Outer, nullptr);
  auto *Inner = dynamic_cast<AssignExpr *>(Outer->getRHS());
  ASSERT_NE(Inner, nullptr);
}

TEST(ParserTest, ConditionalExpr) {
  ParseResult R;
  Expr *E = parseExpr(R, "a ? b : c ? d : e");
  auto *Outer = dynamic_cast<ConditionalExpr *>(E);
  ASSERT_NE(Outer, nullptr);
  // Right-associative: else arm is another conditional.
  EXPECT_NE(dynamic_cast<ConditionalExpr *>(Outer->getFalseExpr()), nullptr);
}

TEST(ParserTest, UnaryAndPostfixChain) {
  ParseResult R;
  Expr *E = parseExpr(R, "*a++");
  auto *Deref = dynamic_cast<UnaryExpr *>(E);
  ASSERT_NE(Deref, nullptr);
  EXPECT_EQ(Deref->getOp(), UnaryOp::Deref);
  auto *Inc = dynamic_cast<IncDecExpr *>(Deref->getOperand());
  ASSERT_NE(Inc, nullptr);
  EXPECT_TRUE(Inc->isIncrement());
  EXPECT_FALSE(Inc->isPrefix());
}

TEST(ParserTest, LogicalOperatorsPrecedence) {
  ParseResult R;
  Expr *E = parseExpr(R, "a < b && c || d");
  auto *Or = dynamic_cast<BinaryExpr *>(E);
  ASSERT_NE(Or, nullptr);
  EXPECT_EQ(Or->getOp(), BinaryOp::LogOr);
  auto *And = dynamic_cast<BinaryExpr *>(Or->getLHS());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->getOp(), BinaryOp::LogAnd);
}

TEST(ParserTest, CallWithArgs) {
  ParseResult R;
  Expr *E = parseExpr(R, "daxpy(a, b, c, 1.0, 100)");
  auto *Call = dynamic_cast<CallExpr *>(E);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->getCallee(), "daxpy");
  EXPECT_EQ(Call->getArgs().size(), 5u);
}

TEST(ParserTest, CastExpression) {
  ParseResult R;
  Expr *E = parseExpr(R, "(float)n");
  auto *Cast = dynamic_cast<CastExpr *>(E);
  ASSERT_NE(Cast, nullptr);
  EXPECT_TRUE(Cast->getTargetType()->isFloat());
}

TEST(ParserTest, CastVsParenExpr) {
  ParseResult R;
  Expr *E = parseExpr(R, "(a) + 1");
  EXPECT_NE(dynamic_cast<BinaryExpr *>(E), nullptr);
}

TEST(ParserTest, SizeofFoldsToLiteral) {
  ParseResult R;
  Expr *E = parseExpr(R, "sizeof(float)");
  auto *I = dynamic_cast<IntLiteralExpr *>(E);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->getValue(), 4);
  Expr *E2 = parseExpr(R, "sizeof(double)");
  EXPECT_EQ(dynamic_cast<IntLiteralExpr *>(E2)->getValue(), 8);
  Expr *E3 = parseExpr(R, "sizeof(float*)");
  EXPECT_EQ(dynamic_cast<IntLiteralExpr *>(E3)->getValue(), 4);
}

TEST(ParserTest, CommaExpression) {
  ParseResult R;
  Expr *E = parseExpr(R, "a = 1, b = 2");
  EXPECT_NE(dynamic_cast<CommaExpr *>(E), nullptr);
}

TEST(ParserTest, StatementKinds) {
  auto R = parse(R"(
    void f(int n) {
      int i;
      if (n > 0) n = 1; else n = 2;
      while (n) n--;
      do n++; while (n < 10);
      for (i = 0; i < n; i++) n += i;
      lab: goto lab;
      { int j; j = 1; }
      ;
      return;
    }
  )");
  ASSERT_EQ(R->TU.Functions.size(), 1u);
  const auto &Body = R->TU.Functions[0].Body->getBody();
  ASSERT_GE(Body.size(), 8u);
  EXPECT_EQ(Body[0]->getKind(), Stmt::DeclStmtKind);
  EXPECT_EQ(Body[1]->getKind(), Stmt::IfKind);
  EXPECT_EQ(Body[2]->getKind(), Stmt::WhileKind);
  EXPECT_EQ(Body[3]->getKind(), Stmt::DoWhileKind);
  EXPECT_EQ(Body[4]->getKind(), Stmt::ForKind);
  EXPECT_EQ(Body[5]->getKind(), Stmt::LabeledKind);
  EXPECT_EQ(Body[6]->getKind(), Stmt::BlockKind);
}

TEST(ParserTest, ForWithDeclInit) {
  auto R = parse("void f() { for (int i = 0; i < 4; i++) {} }");
  const auto &Body = R->TU.Functions[0].Body->getBody();
  auto *For = dynamic_cast<ForStmt *>(Body[0]);
  ASSERT_NE(For, nullptr);
  EXPECT_NE(dynamic_cast<DeclStmt *>(For->getInit()), nullptr);
}

TEST(ParserTest, ForWithEmptyParts) {
  auto R = parse("void f(int n) { for (;;) break; for (;n;) n--; }");
  const auto &Body = R->TU.Functions[0].Body->getBody();
  auto *For0 = dynamic_cast<ForStmt *>(Body[0]);
  ASSERT_NE(For0, nullptr);
  EXPECT_EQ(For0->getInit(), nullptr);
  EXPECT_EQ(For0->getCond(), nullptr);
  EXPECT_EQ(For0->getInc(), nullptr);
}

TEST(ParserTest, SafeVectorPragmaOnLoop) {
  auto R = parse(R"(
    void f(float *x, float *y, int n) {
      int i;
      #pragma safe
      for (i = 0; i < n; i++) x[i] = y[i];
    }
  )");
  const auto &Body = R->TU.Functions[0].Body->getBody();
  auto *For = dynamic_cast<ForStmt *>(Body[1]);
  ASSERT_NE(For, nullptr);
  EXPECT_TRUE(For->hasSafeVectorPragma());
}

TEST(ParserTest, FortranPointersPragma) {
  auto R = parse(R"(
    #pragma fortran_pointers
    void f(float *x, float *y) { *x = *y; }
    #pragma no_fortran_pointers
    void g(float *x, float *y) { *x = *y; }
  )");
  ASSERT_EQ(R->TU.Functions.size(), 2u);
  EXPECT_TRUE(R->TU.Functions[0].FortranPointerSemantics);
  EXPECT_FALSE(R->TU.Functions[1].FortranPointerSemantics);
}

TEST(ParserTest, PaperDaxpySource) {
  // The complete Section 9 example parses cleanly.
  auto R = parse(R"(
    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0)
        return;
      if (alpha == 0)
        return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
    float a[100], b[100], c[100];
    void main()
    {
      daxpy(a, b, c, 1.0, 100);
    }
  )");
  EXPECT_EQ(R->TU.Functions.size(), 2u);
  EXPECT_EQ(R->TU.Globals.size(), 3u);
}

TEST(ParserTest, SyntaxErrorReported) {
  auto R = parse("void f() { int 3x; }", /*ExpectErrors=*/true);
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(ParserTest, MissingSemicolonReported) {
  auto R = parse("void f() { int x x = 1; }", /*ExpectErrors=*/true);
  EXPECT_TRUE(R->Diags.hasErrors());
}

TEST(ParserTest, ImplicitIntReturnType) {
  auto R = parse("static f() { return 1; }");
  ASSERT_EQ(R->TU.Functions.size(), 1u);
  EXPECT_TRUE(R->TU.Functions[0].ReturnType->isInt());
  EXPECT_TRUE(R->TU.Functions[0].IsStatic);
}

} // namespace
