//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline subsystem tests: spec parsing, the pass registry, pass
/// reordering through the driver, the IL verifier on deliberately
/// corrupted programs, and remark/telemetry emission.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "il/ILSerializer.h"
#include "pipeline/ILVerifier.h"
#include "pipeline/PassManager.h"
#include "pipeline/PassRegistry.h"
#include "pipeline/PassSandbox.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tcc;
using namespace tcc::driver;

namespace {

//===----------------------------------------------------------------------===//
// Spec parsing and the registry
//===----------------------------------------------------------------------===//

TEST(PipelineSpec, TokenizeSplitsAndTrims) {
  auto T = pipeline::PassManager::tokenizeSpec(" inline, whiletodo ,dce ");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0], "inline");
  EXPECT_EQ(T[1], "whiletodo");
  EXPECT_EQ(T[2], "dce");
}

TEST(PipelineSpec, EmptySpecIsValidNoOpPipeline) {
  EXPECT_TRUE(pipeline::PassManager::tokenizeSpec("").empty());
  EXPECT_TRUE(pipeline::PassManager::tokenizeSpec(" , ,, ").empty());

  pipeline::PassManager PM;
  DiagnosticEngine Diags;
  EXPECT_TRUE(PM.addPipeline("", Diags));
  EXPECT_TRUE(PM.passes().empty());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(PipelineSpec, UnknownPassNameIsDiagnosed) {
  pipeline::PassManager PM;
  DiagnosticEngine Diags;
  EXPECT_FALSE(PM.addPipeline("whiletodo,frobnicate,dce", Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unknown pass 'frobnicate'"), std::string::npos)
      << Diags.str();
  // The diagnostic teaches: it lists what *is* registered.
  EXPECT_NE(Diags.str().find("vectorize"), std::string::npos) << Diags.str();
  // ...and points at the offending column ("whiletodo," is 10 columns).
  EXPECT_NE(Diags.str().find("1:11"), std::string::npos) << Diags.str();
  // Nothing was staged.
  EXPECT_TRUE(PM.passes().empty());
}

TEST(PipelineSpec, EmptySegmentIsDiagnosedWithLocation) {
  pipeline::PassManager PM;
  DiagnosticEngine Diags;
  EXPECT_FALSE(PM.addPipeline("dce,,vectorize", Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("empty pass name"), std::string::npos)
      << Diags.str();
  // The empty segment starts right after "dce," — column 5.
  EXPECT_NE(Diags.str().find("1:5"), std::string::npos) << Diags.str();
  EXPECT_TRUE(PM.passes().empty());
}

TEST(PipelineSpec, TrailingCommaIsDiagnosed) {
  pipeline::PassManager PM;
  DiagnosticEngine Diags;
  EXPECT_FALSE(PM.addPipeline("dce,", Diags));
  EXPECT_NE(Diags.str().find("empty pass name"), std::string::npos)
      << Diags.str();
}

TEST(PipelineSpec, CommasWithOnlyWhitespaceAreDiagnosed) {
  // tokenizeSpec() drops the blanks (display helper), but a *pipeline*
  // of only separators is a typo, not a request for no optimization.
  pipeline::PassManager PM;
  DiagnosticEngine Diags;
  EXPECT_FALSE(PM.addPipeline(" , ,, ", Diags));
  EXPECT_NE(Diags.str().find("empty pass name"), std::string::npos)
      << Diags.str();
  EXPECT_TRUE(PM.passes().empty());
}

TEST(PipelineSpec, RegistryKnowsTheBuiltinPasses) {
  auto &Reg = pipeline::PassRegistry::instance();
  for (const char *Name : {"inline", "whiletodo", "ivsub", "constprop",
                           "dce", "vectorize", "depopt", "verify"}) {
    EXPECT_TRUE(Reg.contains(Name)) << Name;
    auto P = Reg.create(Name);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_EQ(P->name(), Name);
  }
  EXPECT_FALSE(Reg.contains("frobnicate"));
  EXPECT_EQ(Reg.create("frobnicate"), nullptr);
}

TEST(PipelineSpec, DefaultSpecFollowsToggles) {
  EXPECT_EQ(CompilerOptions::full().pipelineSpec(),
            "inline,whiletodo,ivsub,constprop,dce,vectorize,depopt");
  EXPECT_EQ(CompilerOptions::noOpt().pipelineSpec(), "");
  CompilerOptions O;
  O.EnableInline = false;
  O.EnableVectorize = false;
  EXPECT_EQ(O.pipelineSpec(), "whiletodo,ivsub,constprop,dce,depopt");
}

//===----------------------------------------------------------------------===//
// Custom pipelines through the driver
//===----------------------------------------------------------------------===//

const char *DaxpySource = R"(
  float a[128], b[128], c[128];
  int checksum;
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 128; i++) { b[i] = i; c[i] = 2 * i; }
    daxpy(a, b, c, 1.0, 128);
    checksum = 0;
    for (i = 0; i < 128; i++) checksum += (int)a[i];
  }
)";

int runChecksum(const CompilerOptions &Opts) {
  auto Out = compileAndRun(DaxpySource, Opts);
  EXPECT_TRUE(Out.Run.Ok) << Out.Run.Error;
  return static_cast<int>(
      Out.Machine->readInt(Out.Machine->addressOf("checksum")));
}

TEST(PipelineDriver, EmptyPassesStringUsesDefaultPipeline) {
  CompilerOptions Opts;
  auto R = compileSource(DaxpySource, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  ASSERT_EQ(R->Telemetry.Passes.size(), 7u);
  EXPECT_EQ(R->Telemetry.Passes.front().Pass, "inline");
  EXPECT_EQ(R->Telemetry.Passes.back().Pass, "depopt");
}

TEST(PipelineDriver, ReorderedPassesComputeTheSameResult) {
  // The reference sum: 0 + 3*1 + ... = sum of 3i over 128.
  int Expected = 0;
  for (int I = 0; I < 128; ++I)
    Expected += 3 * I;

  // Legal reorderings and subsets of the phase pipeline must agree with
  // the default order — correctness never depends on pass order, only
  // code quality does.
  const char *Specs[] = {
      "",                                              // no-op pipeline
      "whiletodo,ivsub,vectorize",                     // no inline, no cleanup
      "inline,whiletodo,ivsub,constprop,dce,vectorize,depopt",
      "inline,whiletodo,ivsub,dce,constprop,vectorize", // dce before constprop
      "constprop,inline,whiletodo,ivsub,constprop,dce,vectorize", // repeated
      "dce,dce,dce",                                   // idempotent cleanup
  };
  for (const char *Spec : Specs) {
    CompilerOptions Opts;
    Opts.Passes = Spec;
    Opts.VerifyEach = true; // every intermediate form must be well-formed
    EXPECT_EQ(runChecksum(Opts), Expected) << "spec: " << Spec;
  }
}

TEST(PipelineDriver, UnknownPassInDriverFailsCompile) {
  CompilerOptions Opts;
  Opts.Passes = "whiletodo,frobnicate";
  auto R = compileSource(DaxpySource, Opts);
  EXPECT_FALSE(R->ok());
  EXPECT_NE(R->Diags.str().find("unknown pass"), std::string::npos);
}

TEST(PipelineDriver, StageKeysComeFromPassNames) {
  CompilerOptions Opts;
  Opts.Passes = "whiletodo,vectorize";
  Opts.CaptureStages = true;
  auto R = compileSource(DaxpySource, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  ASSERT_EQ(R->StageOrder.size(), 3u);
  EXPECT_EQ(R->StageOrder[0], "lower");
  EXPECT_EQ(R->StageOrder[1], "whiletodo");
  EXPECT_EQ(R->StageOrder[2], "vectorize");
  for (const auto &Key : R->StageOrder)
    EXPECT_FALSE(R->Stages[Key].empty()) << Key;
}

//===----------------------------------------------------------------------===//
// The IL verifier on corrupted programs
//===----------------------------------------------------------------------===//

il::DoLoopStmt *asDoLoop(il::Stmt *S) {
  return S->getKind() == il::Stmt::DoLoopKind
             ? static_cast<il::DoLoopStmt *>(S)
             : nullptr;
}

/// Front end only: gives a well-formed program to corrupt.
std::unique_ptr<CompileResult> lowerOnly(const char *Source) {
  auto R = compileSource(Source, CompilerOptions::noOpt());
  EXPECT_TRUE(R->ok()) << R->Diags.str();
  return R;
}

TEST(ILVerifier, AcceptsEveryStageOfAHealthyCompile) {
  CompilerOptions Opts;
  Opts.VerifyEach = true;
  auto R = compileSource(DaxpySource, Opts);
  EXPECT_TRUE(R->ok()) << R->Diags.str();
  for (const auto &Rec : R->Telemetry.Passes)
    EXPECT_TRUE(Rec.Verified) << Rec.Pass;
}

TEST(ILVerifier, CatchesDanglingGoto) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  F->getBody().Stmts.push_back(
      F->create<il::GotoStmt>(SourceLoc(), "nowhere"));

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("nowhere"), std::string::npos) << Report.str();
}

TEST(ILVerifier, CatchesDuplicateLabels) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  F->getBody().Stmts.push_back(F->create<il::LabelStmt>(SourceLoc(), "dup"));
  F->getBody().Stmts.push_back(F->create<il::LabelStmt>(SourceLoc(), "dup"));

  EXPECT_FALSE(pipeline::verifyProgram(*R->IL).ok());
}

TEST(ILVerifier, CatchesImpureDoLoopBound) {
  // A healthy DO loop from the front end + while→DO...
  CompilerOptions Opts;
  Opts.Passes = "whiletodo";
  auto R = compileSource(
      "float a[8]; void main() { int i; for (i = 0; i < 8; i++) a[i] = i; }",
      Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  il::Function *F = R->IL->getFunctions().front().get();
  il::DoLoopStmt *Loop = nullptr;
  for (il::Stmt *S : F->getBody().Stmts)
    if (auto *D = asDoLoop(S))
      Loop = D;
  ASSERT_NE(Loop, nullptr);
  EXPECT_TRUE(pipeline::verifyProgram(*R->IL).ok());

  // ...corrupted: the limit now reads a volatile — DO bounds are
  // evaluated once at entry, so this would silently miscompile.
  il::Symbol *Vol = F->createSymbol(
      "device_reg", Loop->getLimit()->getType(), il::StorageKind::Local,
      /*IsVolatile=*/true);
  Loop->limitSlot() = F->makeVarRef(Vol);

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("volatile"), std::string::npos) << Report.str();
}

TEST(ILVerifier, CatchesTripletOutsideVectorContext) {
  CompilerOptions Opts;
  Opts.Passes = "whiletodo";
  auto R = compileSource(
      "float a[8]; void main() { int i; for (i = 0; i < 8; i++) a[i] = i; }",
      Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  il::Function *F = R->IL->getFunctions().front().get();
  il::DoLoopStmt *Loop = nullptr;
  for (il::Stmt *S : F->getBody().Stmts)
    if (auto *D = asDoLoop(S))
      Loop = D;
  ASSERT_NE(Loop, nullptr);

  // A triplet in a DO bound is never legal IL.
  const auto *IntTy = Loop->getLimit()->getType();
  Loop->limitSlot() = F->create<il::TripletExpr>(
      IntTy, F->makeIntConst(IntTy, 0), F->makeIntConst(IntTy, 7),
      F->makeIntConst(IntTy, 1));

  EXPECT_FALSE(pipeline::verifyProgram(*R->IL).ok());
}

TEST(ILVerifier, VerifyEachNamesTheOffendingPass) {
  // Register a pass that corrupts the program, then run it under
  // -verify-each: the diagnostic must name it.
  struct CorruptingPass : pipeline::ModulePass {
    std::string name() const override { return "corrupt"; }
    remarks::StatGroup run(pipeline::PassContext &Ctx) override {
      il::Function *F = Ctx.Program.getFunctions().front().get();
      F->getBody().Stmts.push_back(
          F->create<il::GotoStmt>(SourceLoc(), "nowhere"));
      return remarks::StatGroup("corrupt");
    }
  };

  auto R = lowerOnly("void main() { int i; i = 0; }");
  pipeline::PassManagerConfig Config;
  Config.VerifyEach = true;
  pipeline::PassManager PM({}, std::move(Config));
  PM.addPass(std::make_unique<CorruptingPass>());

  DiagnosticEngine Diags;
  remarks::RemarkCollector Remarks;
  pipeline::PipelineStats Stats;
  auto Telemetry = PM.run(*R->IL, Diags, Remarks, Stats);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("after pass 'corrupt'"), std::string::npos)
      << Diags.str();
}

//===----------------------------------------------------------------------===//
// Remarks and telemetry
//===----------------------------------------------------------------------===//

const char *MixedLoopsSource = R"(
  float a[256], b[256];
  float s;
  void main() {
    int i;
    for (i = 0; i < 256; i++)
      a[i] = b[i] + 1.0;
    s = 0.0;
    for (i = 0; i < 256; i++)
      s = s + a[i];
  }
)";

TEST(Remarks, VectorizedAndRefusedLoopsBothRemarked) {
  auto R = compileSource(MixedLoopsSource, CompilerOptions::full());
  ASSERT_TRUE(R->ok()) << R->Diags.str();

  bool SawApplied = false, SawMissed = false;
  for (const auto &Rm : R->Remarks.forPass("vectorize")) {
    if (Rm.Kind == remarks::RemarkKind::Applied &&
        Rm.Message.find("vectorized") != std::string::npos) {
      SawApplied = true;
      EXPECT_TRUE(Rm.Loc.isValid());
      EXPECT_NE(Rm.Message.find("VL="), std::string::npos) << Rm.Message;
    }
    if (Rm.Kind == remarks::RemarkKind::Missed &&
        Rm.Message.find("cyclic dependence on 's'") != std::string::npos) {
      SawMissed = true;
      EXPECT_TRUE(Rm.Loc.isValid());
    }
  }
  EXPECT_TRUE(SawApplied);
  EXPECT_TRUE(SawMissed);
}

TEST(Remarks, TelemetryRecordsTimingsAndDeltas) {
  auto R = compileSource(MixedLoopsSource, CompilerOptions::full());
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  const auto &T = R->Telemetry;
  ASSERT_FALSE(T.Passes.empty());
  EXPECT_GT(T.TotalMillis, 0.0);
  for (const auto &Rec : T.Passes)
    EXPECT_GE(Rec.Millis, 0.0) << Rec.Pass;

  const auto *Vec = T.find("vectorize");
  ASSERT_NE(Vec, nullptr);
  EXPECT_EQ(Vec->Before.VectorAssigns, 0u);
  EXPECT_GE(Vec->After.VectorAssigns, 1u);
  EXPECT_GE(Vec->Stats.get("loops.vectorized"), 1u);

  const auto *W2D = T.find("whiletodo");
  ASSERT_NE(W2D, nullptr);
  EXPECT_TRUE(W2D->PreservedUseDef);
  EXPECT_GT(W2D->Before.WhileLoops, 0u);
  EXPECT_EQ(W2D->After.WhileLoops, 0u);
}

TEST(Remarks, WriteJSONEmitsWellFormedDocument) {
  auto R = compileSource(MixedLoopsSource, CompilerOptions::full());
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  std::ostringstream OS;
  R->Telemetry.writeJSON(OS);
  std::string Doc = OS.str();
  while (!Doc.empty() && Doc.back() == '\n')
    Doc.pop_back();
  EXPECT_EQ(Doc.front(), '{');
  EXPECT_EQ(Doc.back(), '}');
  for (const char *Key : {"\"totalMillis\"", "\"passes\"", "\"functions\"",
                          "\"remarks\"", "\"millis\"", "\"delta\"",
                          "\"counters\"", "\"cacheHit\""})
    EXPECT_NE(Doc.find(Key), std::string::npos) << Key;
  // Balanced braces/brackets (the writer is structural, so this is a
  // smoke check, not a parser).
  EXPECT_EQ(std::count(Doc.begin(), Doc.end(), '{'),
            std::count(Doc.begin(), Doc.end(), '}'));
  EXPECT_EQ(std::count(Doc.begin(), Doc.end(), '['),
            std::count(Doc.begin(), Doc.end(), ']'));
}

TEST(Remarks, UseDefReusedAcrossWhileToDoButRebuiltAfter) {
  auto R = compileSource(MixedLoopsSource, CompilerOptions::full());
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  // whiletodo builds the chains and preserves them; ivsub runs its own
  // analysis internally, so the pipeline-level cache shows builds only
  // where passes request chains through the AnalysisContext.
  const auto *W2D = R->Telemetry.find("whiletodo");
  ASSERT_NE(W2D, nullptr);
  EXPECT_GT(W2D->UseDefBuilt + W2D->UseDefReused, 0u);
}

//===----------------------------------------------------------------------===//
// Scheduling modes: function-at-a-time vs whole-program
//===----------------------------------------------------------------------===//

std::vector<std::string> serializeAll(const il::Program &P) {
  std::vector<std::string> Out;
  for (const auto &F : P.getFunctions())
    Out.push_back(il::serializeFunction(*F));
  return Out;
}

TEST(PipelineModes, FunctionAtATimeMatchesWholeProgramByteForByte) {
  // The tentpole invariant: because function passes only mutate their own
  // function, iterating functions-outer (the default) and passes-outer
  // (WholeProgram) produce byte-identical serialized IL.
  for (const char *Src : {DaxpySource, MixedLoopsSource}) {
    CompilerOptions FuncMode = CompilerOptions::full();
    CompilerOptions ProgMode = CompilerOptions::full();
    ProgMode.WholeProgram = true;

    auto RF = compileSource(Src, FuncMode);
    auto RP = compileSource(Src, ProgMode);
    ASSERT_TRUE(RF->ok()) << RF->Diags.str();
    ASSERT_TRUE(RP->ok()) << RP->Diags.str();

    auto FuncIL = serializeAll(*RF->IL);
    auto ProgIL = serializeAll(*RP->IL);
    ASSERT_EQ(FuncIL.size(), ProgIL.size());
    for (size_t I = 0; I < FuncIL.size(); ++I)
      EXPECT_EQ(FuncIL[I], ProgIL[I])
          << "function " << RF->IL->getFunctions()[I]->getName();
  }
}

TEST(PipelineModes, FunctionModeEmitsPerFunctionTelemetry) {
  auto R = compileSource(DaxpySource, CompilerOptions::full());
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  ASSERT_EQ(R->Telemetry.Functions.size(), 2u); // daxpy, main
  EXPECT_NE(R->Telemetry.findFunction("daxpy"), nullptr);
  EXPECT_NE(R->Telemetry.findFunction("main"), nullptr);
  for (const auto &FR : R->Telemetry.Functions) {
    EXPECT_FALSE(FR.CacheHit) << FR.Function; // no cache configured
    EXPECT_GT(FR.Before.Stmts, 0u) << FR.Function;
    EXPECT_GT(FR.After.Stmts, 0u) << FR.Function;
  }
  // Per-pass records still aggregate to the whole-program numbers.
  const auto *W2D = R->Telemetry.find("whiletodo");
  ASSERT_NE(W2D, nullptr);
  EXPECT_GT(W2D->Before.WhileLoops, 0u);
  EXPECT_EQ(W2D->After.WhileLoops, 0u);
}

//===----------------------------------------------------------------------===//
// Incremental recompilation through the .tcc-cache manifest
//===----------------------------------------------------------------------===//

/// Two independent functions (no calls between them), so editing one
/// cannot change the other's pre-pipeline IL.
const char *TwoFuncV1 = R"(
  float a[64];
  float s;
  void fill(int n) { int i; for (i = 0; i < n; i++) a[i] = i; }
  void total(int n) { int i; s = 0.0; for (i = 0; i < n; i++) s = s + a[i]; }
)";
/// V1 with only fill's body edited.
const char *TwoFuncV2 = R"(
  float a[64];
  float s;
  void fill(int n) { int i; for (i = 0; i < n; i++) a[i] = i + 1; }
  void total(int n) { int i; s = 0.0; for (i = 0; i < n; i++) s = s + a[i]; }
)";

TEST(CompileCache, WarmRunHitsEveryFunctionAndMatchesColdOutput) {
  const std::string Path = testing::TempDir() + "/tcc_pipeline_warm.tcc-cache";
  std::remove(Path.c_str());

  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;

  auto Cold = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Cold->ok()) << Cold->Diags.str();
  ASSERT_EQ(Cold->Telemetry.Functions.size(), 2u);
  EXPECT_EQ(Cold->Telemetry.cacheHits(), 0u);

  auto Warm = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Warm->ok()) << Warm->Diags.str();
  ASSERT_EQ(Warm->Telemetry.Functions.size(), 2u);
  EXPECT_EQ(Warm->Telemetry.cacheHits(), 2u); // 100% hits

  // Restoring from the manifest is byte-identical to recompiling.
  EXPECT_EQ(serializeAll(*Cold->IL), serializeAll(*Warm->IL));

  std::remove(Path.c_str());
}

TEST(CompileCache, MutatingOneFunctionMissesExactlyOnce) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_mutate.tcc-cache";
  std::remove(Path.c_str());

  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;

  auto Cold = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Cold->ok()) << Cold->Diags.str();

  auto Edited = compileSource(TwoFuncV2, Opts);
  ASSERT_TRUE(Edited->ok()) << Edited->Diags.str();
  ASSERT_EQ(Edited->Telemetry.Functions.size(), 2u);

  const auto *Fill = Edited->Telemetry.findFunction("fill");
  const auto *Total = Edited->Telemetry.findFunction("total");
  ASSERT_NE(Fill, nullptr);
  ASSERT_NE(Total, nullptr);
  EXPECT_FALSE(Fill->CacheHit);  // the edited function recompiled
  EXPECT_TRUE(Total->CacheHit);  // the untouched one did not
  EXPECT_EQ(Edited->Telemetry.cacheHits(), 1u);

  std::remove(Path.c_str());
}

TEST(CompileCache, DifferentOptionsNeverShareEntries) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_config.tcc-cache";
  std::remove(Path.c_str());

  CompilerOptions Full = CompilerOptions::full();
  Full.CacheFile = Path;
  auto Cold = compileSource(TwoFuncV1, Full);
  ASSERT_TRUE(Cold->ok()) << Cold->Diags.str();

  // Same source, different option fingerprint: everything recompiles.
  CompilerOptions Par = CompilerOptions::parallel();
  Par.CacheFile = Path;
  auto Other = compileSource(TwoFuncV1, Par);
  ASSERT_TRUE(Other->ok()) << Other->Diags.str();
  EXPECT_EQ(Other->Telemetry.cacheHits(), 0u);

  std::remove(Path.c_str());
}

TEST(CompileCache, CorruptManifestDegradesToColdCacheWithLocatedWarning) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_corrupt.tcc-cache";
  {
    std::ofstream OS(Path);
    OS << "tcc-cache v1\n";
    OS << "func \"daxpy\" nothexdigits notanumber\n";
  }
  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;
  auto R = compileSource(TwoFuncV1, Opts);
  // The cache is an accelerator, never a correctness dependency: damage
  // costs a cold rebuild (with a located warning), never the compile.
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  EXPECT_EQ(R->Telemetry.cacheHits(), 0u);
  EXPECT_GT(R->Diags.warningCount(), 0u);
  EXPECT_NE(R->Diags.str().find("compile-cache manifest"), std::string::npos)
      << R->Diags.str();
  EXPECT_NE(R->Diags.str().find("2:"), std::string::npos) << R->Diags.str();
  EXPECT_NE(R->Diags.str().find("recompiling"), std::string::npos)
      << R->Diags.str();

  // The cold run replaced the damaged manifest, so the next run is warm —
  // and warm output is byte-identical to the degraded run's output.
  auto Warm = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Warm->ok()) << Warm->Diags.str();
  EXPECT_EQ(Warm->Diags.warningCount(), 0u) << Warm->Diags.str();
  EXPECT_EQ(Warm->Telemetry.cacheHits(), 2u);
  EXPECT_EQ(serializeAll(*R->IL), serializeAll(*Warm->IL));

  std::remove(Path.c_str());
}

TEST(CompileCache, TruncatedManifestDegradesToColdCache) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_truncated.tcc-cache";
  std::remove(Path.c_str());

  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;
  auto Cold = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Cold->ok()) << Cold->Diags.str();

  // Chop the manifest mid-payload, simulating a crash mid-write from a
  // writer without the atomic-rename discipline.
  std::string Manifest;
  {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Manifest = Buffer.str();
  }
  ASSERT_GT(Manifest.size(), 40u);
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << Manifest.substr(0, Manifest.size() / 2);
  }

  auto Degraded = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Degraded->ok()) << Degraded->Diags.str();
  EXPECT_EQ(Degraded->Telemetry.cacheHits(), 0u);
  EXPECT_GT(Degraded->Diags.warningCount(), 0u);
  EXPECT_NE(Degraded->Diags.str().find("compile-cache manifest"),
            std::string::npos)
      << Degraded->Diags.str();
  EXPECT_EQ(serializeAll(*Cold->IL), serializeAll(*Degraded->IL));

  // The degraded run rewrote the manifest; the next run is fully warm.
  auto Warm = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Warm->ok()) << Warm->Diags.str();
  EXPECT_EQ(Warm->Telemetry.cacheHits(), 2u);

  std::remove(Path.c_str());
}

TEST(CompileCache, VersionSkewedManifestDegradesToColdCache) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_skewed.tcc-cache";
  {
    std::ofstream OS(Path);
    OS << "tcc-cache v99\n";
  }
  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;
  auto R = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  EXPECT_EQ(R->Telemetry.cacheHits(), 0u);
  EXPECT_NE(R->Diags.str().find("unsupported version or bad magic"),
            std::string::npos)
      << R->Diags.str();
  std::remove(Path.c_str());
}

TEST(CompileCache, SaveIsAtomicAndLeavesNoTempResidue) {
  const std::string Path =
      testing::TempDir() + "/tcc_pipeline_atomic.tcc-cache";
  std::remove(Path.c_str());

  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;
  auto R = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();

  // The manifest landed and the temp file it was staged through did not.
  EXPECT_TRUE(static_cast<bool>(std::ifstream(Path)));
  EXPECT_FALSE(static_cast<bool>(std::ifstream(Path + ".tmp")));

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Type-consistency checks in the verifier
//===----------------------------------------------------------------------===//

il::AssignStmt *firstAssign(il::Function *F) {
  for (il::Stmt *S : F->getBody().Stmts)
    if (S->getKind() == il::Stmt::AssignKind)
      return static_cast<il::AssignStmt *>(S);
  return nullptr;
}

TEST(ILVerifierTypes, CatchesVarRefDisagreeingWithSymbol) {
  auto R = lowerOnly("void main() { int i; i = i; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->getRHS()->getKind(), il::Expr::VarRefKind);
  // Corrupt the reference's cached type out from under its symbol.
  A->getRHS()->setType(R->IL->getTypes().getFloatType());

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("type mismatch: reference to 'i'"),
            std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesAssignmentTypeMismatch) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  // Store a double into an int slot with no cast in between.
  A->rhsSlot() =
      F->makeFloatConst(R->IL->getTypes().getDoubleType(), 1.5);

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("type mismatch: assignment to int"),
            std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesComparisonYieldingNonInt) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  const auto &Types = R->IL->getTypes();
  A->rhsSlot() = F->makeBinary(
      il::OpCode::Lt, F->makeIntConst(Types.getIntType(), 1),
      F->makeIntConst(Types.getIntType(), 2), Types.getFloatType());

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("yields non-integer type"), std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesArithmeticResultTypeMismatch) {
  auto R = lowerOnly("void main() { double d; d = 0.0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  const auto &Types = R->IL->getTypes();
  // double + double annotated as float: the result type must be the
  // operands' common arithmetic type.
  A->rhsSlot() = F->makeBinary(
      il::OpCode::Add, F->makeFloatConst(Types.getDoubleType(), 1.0),
      F->makeFloatConst(Types.getDoubleType(), 2.0), Types.getFloatType());

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("instead of double"), std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesDerefOfNonPointer) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  const auto &Types = R->IL->getTypes();
  A->rhsSlot() = F->create<il::DerefExpr>(
      Types.getIntType(), F->makeIntConst(Types.getIntType(), 64));

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("dereference of non-pointer"),
            std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesNonIntegerDoLoopBound) {
  CompilerOptions Opts;
  Opts.Passes = "whiletodo";
  auto R = compileSource(
      "float a[8]; void main() { int i; for (i = 0; i < 8; i++) a[i] = i; }",
      Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  il::Function *F = R->IL->getFunctions().front().get();
  il::DoLoopStmt *Loop = nullptr;
  for (il::Stmt *S : F->getBody().Stmts)
    if (auto *D = asDoLoop(S))
      Loop = D;
  ASSERT_NE(Loop, nullptr);
  Loop->limitSlot() =
      F->makeFloatConst(R->IL->getTypes().getFloatType(), 8.0);

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("bound has non-integer type"),
            std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, CatchesNonIntegerSubscript) {
  auto R = lowerOnly("float a[8]; void main() { a[1] = 0.0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->getLHS()->getKind(), il::Expr::IndexKind);
  auto *I = static_cast<il::IndexExpr *>(A->getLHS());
  I->subscriptSlots()[0] =
      F->makeFloatConst(R->IL->getTypes().getFloatType(), 1.0);

  auto Report = pipeline::verifyProgram(*R->IL);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.str().find("subscript has non-integer type"),
            std::string::npos)
      << Report.str();
}

TEST(ILVerifierTypes, TypeCheckingCanBeDisabled) {
  auto R = lowerOnly("void main() { int i; i = 0; }");
  il::Function *F = R->IL->getFunctions().front().get();
  auto *A = firstAssign(F);
  ASSERT_NE(A, nullptr);
  A->rhsSlot() =
      F->makeFloatConst(R->IL->getTypes().getDoubleType(), 1.5);

  pipeline::VerifierOptions Opts;
  Opts.CheckTypes = false;
  EXPECT_TRUE(pipeline::verifyProgram(*R->IL, Opts).ok());
}

//===----------------------------------------------------------------------===//
// Fault containment: sandboxed passes, injection, reproducer bundles
//===----------------------------------------------------------------------===//

/// One function exercising every function pass: a while loop (whiletodo),
/// induction variables (ivsub), constant arithmetic (constprop), dead
/// stores (dce), and vectorizable loops (vectorize, depopt).
const char *FaultProbeSource = R"(
  float a[64], b[64];
  float s;
  void main()
  {
    int i;
    int dead;
    dead = 3 * 7;
    i = 0;
    while (i < 64) { b[i] = i; i = i + 1; }
    for (i = 0; i < 64; i++) a[i] = b[i] * 2.0 + 1.0;
    s = 0.0;
    for (i = 0; i < 64; i++) s = s + a[i];
  }
)";

/// The default full pipeline with one function pass dropped — the ground
/// truth a contained fault must be byte-identical to.
std::string pipelineWithout(const std::string &Dropped) {
  std::string Spec;
  for (const char *Name : {"inline", "whiletodo", "ivsub", "constprop",
                           "dce", "vectorize", "depopt"}) {
    if (Dropped == Name)
      continue;
    if (!Spec.empty())
      Spec += ',';
    Spec += Name;
  }
  return Spec;
}

TEST(PassSandbox, FaultMatrixContainsEveryPassTimesEveryKind) {
  const std::string ReproDir = testing::TempDir() + "/tcc_fault_matrix_repro";
  std::filesystem::remove_all(ReproDir);

  struct KindCase {
    const char *Inject;   ///< Injection-spec kind.
    const char *Recorded; ///< Fault kind the sandbox must classify it as.
  };
  const KindCase Kinds[] = {{"throw", "exception"},
                            {"oom", "exception"},
                            {"corrupt-il", "verifier"},
                            {"slow", "time-budget"}};
  const char *FunctionPasses[] = {"whiletodo", "ivsub",     "constprop",
                                  "dce",       "vectorize", "depopt"};

  for (const char *PassName : FunctionPasses) {
    CompilerOptions Skipped = CompilerOptions::full();
    Skipped.Passes = pipelineWithout(PassName);
    auto Baseline = compileSource(FaultProbeSource, Skipped);
    ASSERT_TRUE(Baseline->ok()) << Baseline->Diags.str();

    for (const KindCase &K : Kinds) {
      const std::string Label = std::string(PassName) + ":" + K.Inject;
      CompilerOptions Opts = CompilerOptions::full();
      Opts.VerifyEach = true;
      Opts.PassBudgetMs = 50.0; // Generous for real passes on 20 stmts;
                                // the injected sleep overruns it.
      Opts.ReproDir = ReproDir;
      Opts.FaultInject = std::string(PassName) + ":*:" + K.Inject;

      auto R = compileSource(FaultProbeSource, Opts);
      ASSERT_TRUE(R->ok()) << Label << "\n" << R->Diags.str();
      ASSERT_EQ(R->Telemetry.Faults.size(), 1u) << Label;
      const remarks::FaultRecord &F = R->Telemetry.Faults.front();
      EXPECT_EQ(F.Pass, PassName) << Label;
      EXPECT_EQ(F.Function, "main") << Label;
      EXPECT_EQ(F.Kind, K.Recorded) << Label << ": " << F.Description;
      EXPECT_GT(R->Diags.warningCount(), 0u) << Label;

      // The degraded output is byte-identical to never scheduling the
      // quarantined pass at all.
      EXPECT_EQ(serializeAll(*R->IL), serializeAll(*Baseline->IL)) << Label;

      // Every contained fault leaves a replayable bundle behind, and the
      // bundle reproduces the same fault kind outside the compile.
      ASSERT_FALSE(F.ReproFile.empty()) << Label;
      DiagnosticEngine BundleDiags;
      pipeline::ReproBundle Bundle;
      ASSERT_TRUE(
          pipeline::loadReproBundle(F.ReproFile, Bundle, BundleDiags))
          << Label << "\n" << BundleDiags.str();
      EXPECT_EQ(Bundle.Pass, PassName) << Label;
      EXPECT_EQ(Bundle.Function, "main") << Label;
      EXPECT_EQ(Bundle.Kind, K.Recorded) << Label;
      auto RR = pipeline::replayBundle(Bundle, makePipelineOptions(Opts),
                                       BundleDiags);
      EXPECT_TRUE(RR.Ran) << Label << "\n" << BundleDiags.str();
      EXPECT_TRUE(RR.Reproduced)
          << Label << " replayed as '" << RR.Kind << "' (" << RR.Description
          << ")";
    }
  }
  std::filesystem::remove_all(ReproDir);
}

TEST(PassSandbox, QuarantineSkipsLaterInvocationsOfTheSamePass) {
  // The pipeline runs dce twice; the injected fault fires only on the
  // first invocation.  Quarantine must skip the second one too (exactly
  // one recorded fault, and output as if dce never ran).
  CompilerOptions Faulty;
  Faulty.Passes = "whiletodo,dce,dce";
  Faulty.FaultInject = "dce:*:throw";
  Faulty.ReproDir = "";
  auto R = compileSource(FaultProbeSource, Faulty);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  ASSERT_EQ(R->Telemetry.Faults.size(), 1u);

  CompilerOptions Skipped;
  Skipped.Passes = "whiletodo";
  auto Baseline = compileSource(FaultProbeSource, Skipped);
  ASSERT_TRUE(Baseline->ok()) << Baseline->Diags.str();
  EXPECT_EQ(serializeAll(*R->IL), serializeAll(*Baseline->IL));
}

TEST(PassSandbox, NthSelectsTheExactInvocation) {
  // Functions are scheduled in definition order (fill, then total), so
  // the second vectorize invocation under a '*' unit is 'total'.
  CompilerOptions Opts = CompilerOptions::full();
  Opts.ReproDir = "";
  Opts.FaultInject = "vectorize:*:throw:2";
  auto R = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  ASSERT_EQ(R->Telemetry.Faults.size(), 1u);
  EXPECT_EQ(R->Telemetry.Faults.front().Function, "total");
  EXPECT_EQ(R->Telemetry.Faults.front().Pass, "vectorize");
}

TEST(PassSandbox, FaultedFunctionIsNotCachedButOthersAre) {
  const std::string Path = testing::TempDir() + "/tcc_fault_cache.tcc-cache";
  const std::string ReproDir = testing::TempDir() + "/tcc_fault_cache_repro";
  std::remove(Path.c_str());
  std::filesystem::remove_all(ReproDir);

  CompilerOptions Opts = CompilerOptions::full();
  Opts.CacheFile = Path;
  Opts.ReproDir = ReproDir;
  Opts.FaultInject = "vectorize:fill:throw";
  auto Faulted = compileSource(TwoFuncV1, Opts);
  ASSERT_TRUE(Faulted->ok()) << Faulted->Diags.str();
  ASSERT_EQ(Faulted->Telemetry.Faults.size(), 1u);
  EXPECT_EQ(Faulted->Telemetry.Faults.front().Function, "fill");

  // Warm run without injection: the healthy function hits the cache; the
  // faulted one was never stored (the degraded body must not go sticky)
  // and recompiles through the full pipeline this time.
  CompilerOptions Clean = CompilerOptions::full();
  Clean.CacheFile = Path;
  Clean.ReproDir = ReproDir;
  auto Warm = compileSource(TwoFuncV1, Clean);
  ASSERT_TRUE(Warm->ok()) << Warm->Diags.str();
  EXPECT_TRUE(Warm->Telemetry.Faults.empty());
  const auto *Fill = Warm->Telemetry.findFunction("fill");
  const auto *Total = Warm->Telemetry.findFunction("total");
  ASSERT_NE(Fill, nullptr);
  ASSERT_NE(Total, nullptr);
  EXPECT_FALSE(Fill->CacheHit);
  EXPECT_TRUE(Total->CacheHit);

  auto Reference = compileSource(TwoFuncV1, CompilerOptions::full());
  ASSERT_TRUE(Reference->ok()) << Reference->Diags.str();
  EXPECT_EQ(serializeAll(*Warm->IL), serializeAll(*Reference->IL));

  std::remove(Path.c_str());
  std::filesystem::remove_all(ReproDir);
}

TEST(PassSandbox, ModulePassFaultStopsCompilationCleanly) {
  // Module passes mutate across function boundaries; a per-function
  // rollback cannot contain them, so the sandbox converts the fault into
  // a clean compile error instead of a crash.
  CompilerOptions Opts = CompilerOptions::full();
  Opts.ReproDir = "";
  Opts.FaultInject = "inline:*:throw";
  auto R = compileSource(FaultProbeSource, Opts);
  EXPECT_FALSE(R->ok());
  EXPECT_NE(R->Diags.str().find("module pass 'inline' failed"),
            std::string::npos)
      << R->Diags.str();
}

TEST(PassSandbox, FaultsSurfaceInTelemetryJSON) {
  CompilerOptions Opts = CompilerOptions::full();
  Opts.ReproDir = "";
  Opts.FaultInject = "dce:*:throw";
  auto R = compileSource(FaultProbeSource, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  std::stringstream JSON;
  R->Telemetry.writeJSON(JSON);
  EXPECT_NE(JSON.str().find("\"faults\""), std::string::npos);
  EXPECT_NE(JSON.str().find("\"pass\": \"dce\""), std::string::npos)
      << JSON.str();

  // A healthy compile emits the (empty) array too, so consumers can
  // assert "no faults" without special-casing a missing key.
  auto Healthy = compileSource(FaultProbeSource, CompilerOptions::full());
  ASSERT_TRUE(Healthy->ok());
  std::stringstream HealthyJSON;
  Healthy->Telemetry.writeJSON(HealthyJSON);
  EXPECT_NE(HealthyJSON.str().find("\"faults\": []"), std::string::npos);
}

TEST(FaultInjection, MalformedSpecsAreLocatedErrors) {
  {
    FaultInjector Inj;
    DiagnosticEngine Diags;
    EXPECT_FALSE(Inj.addSpecs("vectorize:*:frobnicate", Diags));
    EXPECT_NE(Diags.str().find("unknown fault kind 'frobnicate'"),
              std::string::npos)
        << Diags.str();
    // ...and the error points at the offending column.
    EXPECT_NE(Diags.str().find("1:13"), std::string::npos) << Diags.str();
  }
  {
    FaultInjector Inj;
    DiagnosticEngine Diags;
    EXPECT_FALSE(Inj.addSpecs("vectorize:*", Diags));
    EXPECT_NE(Diags.str().find("expected site:unit:kind"), std::string::npos)
        << Diags.str();
  }
  {
    FaultInjector Inj;
    DiagnosticEngine Diags;
    EXPECT_FALSE(Inj.addSpecs("dce:*:throw:0", Diags));
    EXPECT_NE(Diags.str().find("nth must be a positive integer"),
              std::string::npos)
        << Diags.str();
  }
  {
    // Blank text means "injection off", never an error.
    FaultInjector Inj;
    DiagnosticEngine Diags;
    EXPECT_TRUE(Inj.addSpecs("", Diags));
    EXPECT_TRUE(Inj.empty());
    EXPECT_FALSE(Diags.hasErrors());
  }
  // Through the driver, a typo fails the compile up front — never a
  // silently un-injected run.
  CompilerOptions Opts;
  Opts.FaultInject = "vectorize:*:kaboom";
  auto R = compileSource(FaultProbeSource, Opts);
  EXPECT_FALSE(R->ok());
  EXPECT_NE(R->Diags.str().find("fault-injection spec"), std::string::npos)
      << R->Diags.str();
}

TEST(PassSandbox, NoSandboxRestoresHardFailure) {
  // With the sandbox off, injection never arms in the function-pass path:
  // the compile behaves exactly as if no spec were given (rather than
  // crashing the test binary with an escaping exception).
  CompilerOptions Opts = CompilerOptions::full();
  Opts.SandboxPasses = false;
  Opts.FaultInject = "dce:*:throw";
  auto R = compileSource(FaultProbeSource, Opts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  EXPECT_TRUE(R->Telemetry.Faults.empty());

  auto Reference = compileSource(FaultProbeSource, CompilerOptions::full());
  ASSERT_TRUE(Reference->ok());
  EXPECT_EQ(serializeAll(*R->IL), serializeAll(*Reference->IL));
}

TEST(PassSandbox, BadBundlesAreLocatedErrors) {
  const std::string Dir = testing::TempDir() + "/tcc_bad_bundles";
  std::filesystem::create_directories(Dir);

  auto WriteAndLoad = [&](const char *Name, const std::string &Text,
                          std::string &ErrOut) {
    const std::string Path = Dir + "/" + Name;
    std::ofstream(Path, std::ios::binary) << Text;
    pipeline::ReproBundle B;
    DiagnosticEngine Diags;
    bool Ok = pipeline::loadReproBundle(Path, B, Diags);
    ErrOut = Diags.str();
    return Ok;
  };

  std::string Err;
  EXPECT_FALSE(WriteAndLoad("empty.repro", "", Err));
  EXPECT_NE(Err.find("reproducer bundle"), std::string::npos) << Err;
  EXPECT_FALSE(WriteAndLoad("magic.repro", "not-a-bundle v1\n", Err));
  EXPECT_NE(Err.find("reproducer bundle"), std::string::npos) << Err;
  // An il length pointing past the end of the file must not read out of
  // bounds.
  EXPECT_FALSE(WriteAndLoad("overrun.repro",
                            "tcc-repro v1\npass dce\nfunction \"f\"\n"
                            "kind exception\ninject -\npolicy 0 0 0 0\n"
                            "config x\ndescription d\nil 999999\nshort",
                            Err));
  EXPECT_NE(Err.find("reproducer bundle"), std::string::npos) << Err;

  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Frontend robustness: truncated inputs
//===----------------------------------------------------------------------===//

TEST(Frontend, TruncatedExamplePrefixesNeverCrash) {
  // Every byte-prefix of every example program must lex, parse, and (when
  // it happens to still be valid C) lower without crashing.  Diagnostics
  // are expected; aborts and faults are the only failure.
  namespace fs = std::filesystem;
  unsigned Files = 0;
  for (const auto &Entry : fs::directory_iterator(TCC_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".c")
      continue;
    ++Files;
    std::ifstream In(Entry.path(), std::ios::binary);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    const std::string Text = Buffer.str();
    ASSERT_FALSE(Text.empty()) << Entry.path();
    for (size_t Len = 0; Len <= Text.size(); ++Len) {
      auto R = compileSource(Text.substr(0, Len), CompilerOptions::noOpt());
      ASSERT_NE(R, nullptr) << Entry.path() << " prefix " << Len;
    }
  }
  EXPECT_GT(Files, 0u) << "no .c examples under " TCC_EXAMPLES_DIR;
}

} // namespace
