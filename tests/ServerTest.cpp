//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the compile-server subsystem (src/server) and the shared
/// worker pools it admits requests through:
///
///  - the wire protocol: request/response JSON round-trips (including
///    escapes and embedded NULs-adjacent content), malformed payload
///    rejection, framing over a real socketpair, clean-EOF semantics,
///    and the oversized-frame guard;
///  - HotCache single-flight: owner/hit protocol, waiters blocking until
///    publish, and abandon() promoting a waiter to owner so a dead
///    request can never wedge the rest;
///  - the worker pools extracted into support/WorkerPool: the -j
///    resolution convention, runIndexed's deterministic by-index fill
///    across worker counts (the catalog/ablate regression), and
///    TaskQueue's drain-then-join shutdown;
///  - the byte-identity bar: Server::handleRequest output equals direct
///    `tcc` compilation for every bench kernel, cold and warm, under
///    concurrent load, and with a `server:` fault injected into one
///    request while others are in flight;
///  - cache ownership: requests' -cache= flags are overridden by the
///    daemon's manifest, -replay= is rejected, and N concurrent
///    compilers pointed at one manifest stem leave it consistent;
///  - socket lifecycle: end-to-end round trips over a real Unix socket,
///    clean connect errors when no daemon listens, and stale-socket
///    reclamation after an unclean daemon death;
///  - survivability: deadline framing (dribbled frames reassemble, a
///    mid-frame timeout never leaks a truncated payload), phase-named
///    connect errors and retry-safety classification, retry riding
///    through a late-starting daemon, load shedding with busy + hint,
///    the per-request deadline watchdog, ping health probes, and
///    graceful drain finishing in-flight work byte-identically.
///
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/HotCache.h"
#include "server/Protocol.h"
#include "server/Server.h"

#include "ablate/Kernels.h"
#include "driver/ToolMain.h"
#include "support/CompileCache.h"
#include "support/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace tcc;
using namespace tcc::server;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

/// The reference answer: \p Args + \p Source compiled directly with a
/// fresh one-shot session, the way `tcc` does.
Response directCompile(const std::vector<std::string> &Args,
                       const std::string &Source) {
  driver::ToolInvocation Inv;
  std::string Error;
  EXPECT_TRUE(driver::parseToolArgs(Args, Inv, Error)) << Error;
  driver::CompilerSession Fresh;
  std::ostringstream Out, Err;
  Response R;
  R.Exit = driver::runToolInvocation(Inv, Source, Fresh, Out, Err);
  R.Out = Out.str();
  R.Err = Err.str();
  return R;
}

/// A unique manifest path under the test temp dir, pre-removed.
std::string freshCachePath(const std::string &Stem) {
  std::string Path = testing::TempDir() + "/tcc_server_" + Stem + ".tcc-cache";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
  return Path;
}

/// An in-process daemon with its own manifest; no socket unless a test
/// starts one.
struct DaemonFixture {
  std::string CachePath;
  Server Daemon;
  explicit DaemonFixture(const std::string &Stem)
      : CachePath(freshCachePath(Stem)), Daemon([&] {
          ServerOptions Opts;
          Opts.SocketPath = "";
          Opts.CacheFile = CachePath;
          return Opts;
        }()) {}
  ~DaemonFixture() {
    std::remove(CachePath.c_str());
    std::remove((CachePath + ".lock").c_str());
  }
};

//===----------------------------------------------------------------------===//
// Protocol: JSON round trips
//===----------------------------------------------------------------------===//

TEST(ServerTest, RequestRoundTrips) {
  Request In;
  In.Args = {"-passes=scalar,vector", "-stats", "k.c"};
  In.Source = "int main() { return 0; }\n";
  Request Out;
  std::string Error;
  ASSERT_TRUE(decodeRequest(encodeRequest(In), Out, Error)) << Error;
  EXPECT_EQ(Out.Args, In.Args);
  EXPECT_EQ(Out.Source, In.Source);
}

TEST(ServerTest, RequestRoundTripsEscapesAndUnicode) {
  Request In;
  In.Args = {"weird \"name\".c"};
  In.Source = "/* tabs\tnewlines\nbackslash \\ quote \" unicode \xC3\xA9 */";
  Request Out;
  std::string Error;
  ASSERT_TRUE(decodeRequest(encodeRequest(In), Out, Error)) << Error;
  EXPECT_EQ(Out.Args, In.Args);
  EXPECT_EQ(Out.Source, In.Source);
}

TEST(ServerTest, ResponseRoundTrips) {
  Response In;
  In.Exit = 2;
  In.Out = "[titan] 1 instruction\n";
  In.Err = "k.c:3:5: error: something\n  with a second line\n";
  Response Out;
  std::string Error;
  ASSERT_TRUE(decodeResponse(encodeResponse(In), Out, Error)) << Error;
  EXPECT_EQ(Out.Exit, In.Exit);
  EXPECT_EQ(Out.Out, In.Out);
  EXPECT_EQ(Out.Err, In.Err);
}

TEST(ServerTest, DecodeRejectsMalformedPayloads) {
  Request R;
  Response Resp;
  std::string Error;
  // Not JSON at all.
  EXPECT_FALSE(decodeRequest("not json", R, Error));
  EXPECT_FALSE(Error.empty());
  // Valid JSON, wrong shape.
  EXPECT_FALSE(decodeRequest("[1,2,3]", R, Error));
  EXPECT_FALSE(decodeRequest("{\"args\":\"not-a-list\",\"source\":\"\"}", R,
                             Error));
  // Truncated object.
  EXPECT_FALSE(decodeRequest("{\"args\":[\"a.c\"],\"source\":\"x", R, Error));
  // Response missing the exit code.
  EXPECT_FALSE(decodeResponse("{\"stdout\":\"\",\"stderr\":\"\"}", Resp,
                              Error));
}

//===----------------------------------------------------------------------===//
// Protocol: framing over a real socketpair
//===----------------------------------------------------------------------===//

TEST(ServerTest, FramesRoundTripOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  const std::string Payload = "{\"exit\":0,\"stdout\":\"\",\"stderr\":\"\"}";
  ASSERT_TRUE(writeFrame(Fds[0], Payload));
  std::string Got, Error;
  ASSERT_TRUE(readFrame(Fds[1], Got, Error)) << Error;
  EXPECT_EQ(Got, Payload);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServerTest, CleanEofIsNotAnError) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ::close(Fds[0]); // Peer closes between frames.
  std::string Got, Error;
  EXPECT_FALSE(readFrame(Fds[1], Got, Error));
  EXPECT_TRUE(Error.empty()) << Error;
  ::close(Fds[1]);
}

TEST(ServerTest, OversizedFramePrefixIsRejectedBeforeAllocation) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A garbage length prefix claiming a frame past the cap.
  uint32_t Huge = MaxFrameBytes + 1;
  unsigned char Prefix[4] = {
      static_cast<unsigned char>(Huge & 0xff),
      static_cast<unsigned char>((Huge >> 8) & 0xff),
      static_cast<unsigned char>((Huge >> 16) & 0xff),
      static_cast<unsigned char>((Huge >> 24) & 0xff)};
  ASSERT_EQ(::write(Fds[0], Prefix, 4), 4);
  std::string Got, Error;
  EXPECT_FALSE(readFrame(Fds[1], Got, Error));
  EXPECT_FALSE(Error.empty());
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// HotCache: single-flight semantics
//===----------------------------------------------------------------------===//

TEST(ServerTest, HotCacheOwnThenHit) {
  HotCache Hot;
  std::string Text;
  ASSERT_EQ(Hot.acquire("f#0", "hash-a", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  Hot.publish("f#0", "hash-a", "optimized body");
  ASSERT_EQ(Hot.acquire("f#0", "hash-a", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "optimized body");
  HotCacheStats S = Hot.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Published, 1u);
  EXPECT_EQ(Hot.size(), 1u);
}

TEST(ServerTest, HotCacheDistinctHashesAreDistinctEntries) {
  HotCache Hot;
  std::string Text;
  // Same function name, different input hash (edited body): no sharing.
  EXPECT_EQ(Hot.acquire("f#0", "hash-a", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  EXPECT_EQ(Hot.acquire("f#0", "hash-b", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  Hot.publish("f#0", "hash-a", "body a");
  Hot.publish("f#0", "hash-b", "body b");
  ASSERT_EQ(Hot.acquire("f#0", "hash-b", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "body b");
}

TEST(ServerTest, HotCacheWaiterBlocksUntilPublish) {
  HotCache Hot;
  std::string OwnerText;
  ASSERT_EQ(Hot.acquire("f#0", "h", OwnerText),
            pipeline::FunctionResultCache::Acquire::Own);

  std::atomic<bool> WaiterDone{false};
  std::string WaiterText;
  std::thread Waiter([&] {
    ASSERT_EQ(Hot.acquire("f#0", "h", WaiterText),
              pipeline::FunctionResultCache::Acquire::Hit);
    WaiterDone = true;
  });
  // The waiter must block while the owner computes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(WaiterDone);
  Hot.publish("f#0", "h", "the result");
  Waiter.join();
  EXPECT_TRUE(WaiterDone);
  EXPECT_EQ(WaiterText, "the result");
  EXPECT_GE(Hot.stats().Waits, 1u);
}

TEST(ServerTest, HotCacheAbandonPromotesAWaiterToOwner) {
  HotCache Hot;
  std::string Text;
  ASSERT_EQ(Hot.acquire("f#0", "h", Text),
            pipeline::FunctionResultCache::Acquire::Own);

  std::atomic<bool> Promoted{false};
  std::thread Waiter([&] {
    std::string T;
    // When the first owner dies without publishing, the waiter must be
    // promoted to owner (not handed a stale hit, not wedged forever).
    ASSERT_EQ(Hot.acquire("f#0", "h", T),
              pipeline::FunctionResultCache::Acquire::Own);
    Promoted = true;
    Hot.publish("f#0", "h", "second try");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Promoted);
  Hot.abandon("f#0", "h"); // The owner's request died.
  Waiter.join();
  EXPECT_TRUE(Promoted);
  ASSERT_EQ(Hot.acquire("f#0", "h", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "second try");
  EXPECT_EQ(Hot.stats().Abandoned, 1u);
}

TEST(ServerTest, HotCacheLruEviction) {
  HotCache Hot(/*MaxEntries=*/2);
  std::string Text;
  auto Fill = [&](const char *Hash, const char *Body) {
    ASSERT_EQ(Hot.acquire("f#0", Hash, Text),
              pipeline::FunctionResultCache::Acquire::Own);
    Hot.publish("f#0", Hash, Body);
  };
  Fill("h-a", "body a");
  Fill("h-b", "body b");
  EXPECT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot.stats().Evictions, 0u);

  // Touch a so b becomes the least recently used, then push past the cap.
  ASSERT_EQ(Hot.acquire("f#0", "h-a", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  Fill("h-c", "body c");
  EXPECT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot.stats().Evictions, 1u);

  // b was evicted; a (recently used) and c (just published) survive.
  EXPECT_EQ(Hot.acquire("f#0", "h-b", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  Hot.abandon("f#0", "h-b");
  ASSERT_EQ(Hot.acquire("f#0", "h-a", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "body a");
  ASSERT_EQ(Hot.acquire("f#0", "h-c", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "body c");
}

TEST(ServerTest, HotCacheNeverEvictsInFlightSlots) {
  HotCache Hot(/*MaxEntries=*/1);
  std::string Text;
  // Two owners computing at once: both slots are in flight, over the cap,
  // and neither may be evicted (waiters would wedge).
  ASSERT_EQ(Hot.acquire("f#0", "h-x", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  ASSERT_EQ(Hot.acquire("f#0", "h-y", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  Hot.publish("f#0", "h-x", "x");
  Hot.publish("f#0", "h-y", "y");
  // Cap 1: the earlier publish (x) was evicted by the later one.
  EXPECT_EQ(Hot.size(), 1u);
  EXPECT_EQ(Hot.stats().Evictions, 1u);
  ASSERT_EQ(Hot.acquire("f#0", "h-y", Text),
            pipeline::FunctionResultCache::Acquire::Hit);
  EXPECT_EQ(Text, "y");
  EXPECT_EQ(Hot.acquire("f#0", "h-x", Text),
            pipeline::FunctionResultCache::Acquire::Own);
  Hot.abandon("f#0", "h-x");
}

//===----------------------------------------------------------------------===//
// WorkerPool: the shared -j convention and deterministic indexed sweeps
//===----------------------------------------------------------------------===//

TEST(ServerTest, ResolveWorkerCountConvention) {
  // 0 means hardware; never more workers than jobs; at least one.
  EXPECT_GE(resolveWorkerCount(0, 100), 1u);
  EXPECT_EQ(resolveWorkerCount(8, 3), 3u);
  EXPECT_EQ(resolveWorkerCount(2, 100), 2u);
  // No job bound (the daemon's admission pool): the request wins.
  EXPECT_EQ(resolveWorkerCount(4, SIZE_MAX), 4u);
}

TEST(ServerTest, RunIndexedFillsByIndexDeterministically) {
  // The catalog/ablate extraction regression: the result vector must be
  // identical for every worker count, because each job writes only its
  // own slot.
  auto Sweep = [](unsigned Workers) {
    std::vector<int> Out(64, -1);
    runIndexed(Out.size(), Workers,
               [&](size_t I) { Out[I] = static_cast<int>(I * I); });
    return Out;
  };
  std::vector<int> Serial = Sweep(1);
  for (size_t I = 0; I < Serial.size(); ++I)
    EXPECT_EQ(Serial[I], static_cast<int>(I * I));
  EXPECT_EQ(Sweep(2), Serial);
  EXPECT_EQ(Sweep(8), Serial);
  EXPECT_EQ(Sweep(64), Serial);
}

TEST(ServerTest, TaskQueueRunsEverythingThenRejectsAfterShutdown) {
  std::atomic<int> Ran{0};
  TaskQueue Queue(4);
  EXPECT_EQ(Queue.workerCount(), 4u);
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(Queue.submit([&] { ++Ran; }));
  Queue.shutdown(); // Drains the queue, then joins.
  EXPECT_EQ(Ran, 100);
  EXPECT_FALSE(Queue.submit([&] { ++Ran; }));
  EXPECT_EQ(Ran, 100);
}

//===----------------------------------------------------------------------===//
// The byte-identity bar
//===----------------------------------------------------------------------===//

TEST(ServerTest, HandleRequestMatchesDirectCompileColdAndWarm) {
  DaemonFixture D("cold_warm");
  for (const ablate::BenchKernel &K : ablate::benchKernels()) {
    Request Req{{K.Name + ".c"}, K.Source, ""};
    Response Direct = directCompile(Req.Args, Req.Source);
    // Cold: computes and populates both cache layers.
    Response Cold = D.Daemon.handleRequest(Req);
    EXPECT_EQ(Cold.Exit, Direct.Exit) << K.Name;
    EXPECT_EQ(Cold.Out, Direct.Out) << K.Name;
    EXPECT_EQ(Cold.Err, Direct.Err) << K.Name;
    // Warm: served from the hot cache; restoring a serialized body must
    // not change a byte (the conflict-free-loads mark and loop flags
    // survive the round trip).
    Response Warm = D.Daemon.handleRequest(Req);
    EXPECT_EQ(Warm.Exit, Direct.Exit) << K.Name;
    EXPECT_EQ(Warm.Out, Direct.Out) << K.Name << " (warm restore diverged)";
    EXPECT_EQ(Warm.Err, Direct.Err) << K.Name;
  }
  EXPECT_GT(D.Daemon.hotCache().stats().Hits, 0u);
}

TEST(ServerTest, ConcurrentRequestsStayByteIdentical) {
  // Satellite: N concurrent clients compiling the same TUs against one
  // cache stem must all see byte-identical outputs, and the manifest
  // must stay consistent.
  DaemonFixture D("concurrent");
  std::vector<ablate::BenchKernel> Kernels = ablate::benchKernels();
  std::vector<Response> Direct;
  for (const auto &K : Kernels)
    Direct.push_back(directCompile({K.Name + ".c"}, K.Source));

  constexpr unsigned Threads = 8;
  constexpr unsigned Rounds = 2;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      for (unsigned R = 0; R < Rounds; ++R)
        for (size_t I = 0; I < Kernels.size(); ++I) {
          Request Req{{Kernels[I].Name + ".c"}, Kernels[I].Source, ""};
          Response Resp = D.Daemon.handleRequest(Req);
          if (Resp.Exit != Direct[I].Exit || Resp.Out != Direct[I].Out ||
              Resp.Err != Direct[I].Err)
            ++Mismatches;
        }
    });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches, 0u);

  // The flock-guarded write-back left one consistent manifest holding
  // the optimized bodies.
  CompileCache Manifest;
  DiagnosticEngine Diags;
  EXPECT_TRUE(CompileCache::load(D.CachePath, Manifest, Diags))
      << Diags.str();
  EXPECT_GT(Manifest.functionCount(), 0u);
}

TEST(ServerTest, InjectedServerFaultLeavesOtherRequestsByteIdentical) {
  // The fault-injection matrix's `server:` site: one request dies in the
  // handler (outside the pass sandbox) while others are in flight; the
  // victim gets a clean exit-2 error and nobody else changes a byte.
  DaemonFixture D("faulted");
  std::vector<ablate::BenchKernel> Kernels = ablate::benchKernels();
  std::vector<Response> Direct;
  for (const auto &K : Kernels)
    Direct.push_back(directCompile({K.Name + ".c"}, K.Source));

  std::atomic<unsigned> Mismatches{0};
  Response FaultResp;
  std::thread Victim([&] {
    Request Req{{"-fault-inject=server:*:throw:1", "victim.c"},
                Kernels[0].Source, ""};
    FaultResp = D.Daemon.handleRequest(Req);
  });
  std::vector<std::thread> Others;
  for (unsigned T = 0; T < 4; ++T)
    Others.emplace_back([&] {
      for (size_t I = 0; I < Kernels.size(); ++I) {
        Request Req{{Kernels[I].Name + ".c"}, Kernels[I].Source, ""};
        Response Resp = D.Daemon.handleRequest(Req);
        if (Resp.Exit != Direct[I].Exit || Resp.Out != Direct[I].Out ||
            Resp.Err != Direct[I].Err)
          ++Mismatches;
      }
    });
  Victim.join();
  for (auto &T : Others)
    T.join();

  EXPECT_EQ(FaultResp.Exit, 2);
  EXPECT_NE(FaultResp.Err.find("contained"), std::string::npos)
      << FaultResp.Err;
  EXPECT_EQ(Mismatches, 0u);
  EXPECT_EQ(D.Daemon.stats().Faulted, 1u);
}

TEST(ServerTest, InjectedSlowFaultOnlyDelaysItsOwnRequest) {
  DaemonFixture D("slow");
  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Response Direct = directCompile({K.Name + ".c"}, K.Source);

  Request Slow{{"-fault-inject=server:*:slow:1", K.Name + ".c"}, K.Source,
               ""};
  auto T0 = std::chrono::steady_clock::now();
  Response Resp = D.Daemon.handleRequest(Slow);
  double Millis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  // Slowness is containment too: the response is still correct, just
  // late.
  EXPECT_GE(Millis, 400.0);
  EXPECT_EQ(Resp.Exit, Direct.Exit);
  EXPECT_EQ(Resp.Out, Direct.Out);
  EXPECT_EQ(Resp.Err, Direct.Err);
}

//===----------------------------------------------------------------------===//
// Cache ownership and rejected flags
//===----------------------------------------------------------------------===//

TEST(ServerTest, RequestCacheFlagIsOverriddenByTheDaemon) {
  DaemonFixture D("ownership");
  std::string Hijack = testing::TempDir() + "/tcc_server_hijack.tcc-cache";
  std::remove(Hijack.c_str());

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Request Req{{"-cache=" + Hijack, K.Name + ".c"}, K.Source, ""};
  Response Resp = D.Daemon.handleRequest(Req);
  EXPECT_EQ(Resp.Exit, 0) << Resp.Err;

  // The daemon compiled against its own manifest, not the request's.
  std::ifstream HijackFile(Hijack);
  EXPECT_FALSE(HijackFile.good()) << "daemon honored a client -cache= flag";
  CompileCache Manifest;
  DiagnosticEngine Diags;
  EXPECT_TRUE(CompileCache::load(D.CachePath, Manifest, Diags));
  EXPECT_GT(Manifest.functionCount(), 0u);
}

TEST(ServerTest, ReplayFlagIsRejected) {
  DaemonFixture D("replay");
  Request Req{{"-replay=crash.bundle", "k.c"}, "int main() { return 0; }",
              ""};
  Response Resp = D.Daemon.handleRequest(Req);
  EXPECT_EQ(Resp.Exit, 2);
  EXPECT_NE(Resp.Err.find("-replay"), std::string::npos) << Resp.Err;
}

TEST(ServerTest, BadFlagsGetTheSharedDiagnostic) {
  // tcc, tcc-client, and the daemon share parseToolArgs; a flag typo
  // must produce the same located diagnostic everywhere.
  DaemonFixture D("badflag");
  Request Req{{"-no-such-flag", "k.c"}, "int main() { return 0; }", ""};
  Response Resp = D.Daemon.handleRequest(Req);
  EXPECT_EQ(Resp.Exit, 2);
  driver::ToolInvocation Inv;
  std::string Error;
  EXPECT_FALSE(driver::parseToolArgs(Req.Args, Inv, Error));
  EXPECT_NE(Resp.Err.find(Error), std::string::npos)
      << "daemon diagnostic diverged from the shared parser: " << Resp.Err;
}

//===----------------------------------------------------------------------===//
// Concurrent compilers sharing one manifest stem (no daemon)
//===----------------------------------------------------------------------===//

TEST(ServerTest, ConcurrentSessionsShareOneManifestStem) {
  // Satellite: N independent compilers (separate sessions, same
  // CacheFile) racing on one stem must produce byte-identical outputs
  // and one consistent, loadable manifest — the flock + write-back
  // contract, exercised in-process where flock still serializes because
  // every load/save opens the sidecar separately.
  std::string Stem = freshCachePath("shared_stem");
  std::vector<ablate::BenchKernel> Kernels = ablate::benchKernels();
  std::vector<Response> Direct;
  for (const auto &K : Kernels)
    Direct.push_back(directCompile({K.Name + ".c"}, K.Source));

  constexpr unsigned Threads = 6;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      for (size_t I = 0; I < Kernels.size(); ++I) {
        std::vector<std::string> Args = {"-cache=" + Stem,
                                         Kernels[I].Name + ".c"};
        driver::ToolInvocation Inv;
        std::string Error;
        ASSERT_TRUE(driver::parseToolArgs(Args, Inv, Error)) << Error;
        driver::CompilerSession Session;
        std::ostringstream Out, Err;
        int Exit =
            driver::runToolInvocation(Inv, Kernels[I].Source, Session, Out,
                                      Err);
        if (Exit != Direct[I].Exit || Out.str() != Direct[I].Out ||
            Err.str() != Direct[I].Err)
          ++Mismatches;
      }
    });
  for (auto &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches, 0u);

  CompileCache Manifest;
  DiagnosticEngine Diags;
  EXPECT_TRUE(CompileCache::load(Stem, Manifest, Diags)) << Diags.str();
  EXPECT_GT(Manifest.functionCount(), 0u);
  std::remove(Stem.c_str());
  std::remove((Stem + ".lock").c_str());
}

//===----------------------------------------------------------------------===//
// Socket lifecycle
//===----------------------------------------------------------------------===//

TEST(ServerTest, EndToEndOverARealSocket) {
  std::string Socket = testing::TempDir() + "/tcc_server_e2e.sock";
  std::remove(Socket.c_str());

  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = freshCachePath("e2e");
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Request Req{{K.Name + ".c"}, K.Source, ""};
  Response Direct = directCompile(Req.Args, Req.Source);

  // Two requests on one connection, then a fresh connection.
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(Socket, Error)) << Error;
  for (int I = 0; I < 2; ++I) {
    Response Resp;
    ASSERT_TRUE(Conn.roundTrip(Req, Resp, Error)) << Error;
    EXPECT_EQ(Resp.Exit, Direct.Exit);
    EXPECT_EQ(Resp.Out, Direct.Out);
    EXPECT_EQ(Resp.Err, Direct.Err);
  }
  Conn.close();
  Response Resp;
  ASSERT_TRUE(runRequest(Socket, Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Out, Direct.Out);

  Daemon.stop();
  Acceptor.join();
  std::remove(Opts.CacheFile.c_str());
  std::remove((Opts.CacheFile + ".lock").c_str());
}

TEST(ServerTest, ConnectFailsCleanlyWithNoDaemon) {
  Client Conn;
  std::string Error;
  EXPECT_FALSE(
      Conn.connect(testing::TempDir() + "/tcc_server_nobody.sock", Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Conn.connected());
}

TEST(ServerTest, StaleSocketFileIsReclaimed) {
  // A kill -9'd daemon leaves its socket file behind.  The next start
  // must probe it, find nobody listening, and rebind.
  std::string Socket = testing::TempDir() + "/tcc_server_stale.sock";
  std::remove(Socket.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Socket.c_str());
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  ::close(Fd); // Dead owner: the file stays, nobody listens.

  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  EXPECT_TRUE(Daemon.start(Diags)) << Diags.str();
  Daemon.stop();
  std::remove(Socket.c_str());
}

TEST(ServerTest, SecondDaemonOnALiveSocketFailsWithADiagnostic) {
  std::string Socket = testing::TempDir() + "/tcc_server_live.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Server First(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(First.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { First.run(); });

  Server Second(Opts);
  DiagnosticEngine SecondDiags;
  EXPECT_FALSE(Second.start(SecondDiags));
  EXPECT_TRUE(SecondDiags.hasErrors());

  First.stop();
  Acceptor.join();
  std::remove(Socket.c_str());
}

//===----------------------------------------------------------------------===//
// Protocol: optional fields (request kind, busy hints)
//===----------------------------------------------------------------------===//

TEST(ServerTest, RequestKindRoundTripsAndCompileIsNotFramed) {
  Request Ping;
  Ping.Kind = "ping";
  Request Out;
  std::string Error;
  ASSERT_TRUE(decodeRequest(encodeRequest(Ping), Out, Error)) << Error;
  EXPECT_EQ(Out.Kind, "ping");

  // "compile" is the wire default: spelling it out must produce a frame
  // byte-identical to omitting it, so pre-kind daemons/clients interop.
  Request Plain{{"k.c"}, "int main() { return 0; }", ""};
  Request Spelled = Plain;
  Spelled.Kind = "compile";
  EXPECT_EQ(encodeRequest(Plain), encodeRequest(Spelled));

  // A legacy payload (no kind field) decodes to the empty kind.
  ASSERT_TRUE(decodeRequest(encodeRequest(Plain), Out, Error)) << Error;
  EXPECT_TRUE(Out.Kind.empty());
}

TEST(ServerTest, RetryAfterHintRoundTripsAndDefaultsToAbsent) {
  Response Busy;
  Busy.Exit = BusyExit;
  Busy.RetryAfterMs = 75;
  Response Out;
  std::string Error;
  ASSERT_TRUE(decodeResponse(encodeResponse(Busy), Out, Error)) << Error;
  EXPECT_EQ(Out.Exit, BusyExit);
  EXPECT_EQ(Out.RetryAfterMs, 75);

  // Ordinary responses never carry the hint, on the wire or decoded.
  Response Ok;
  Ok.Out = "fine\n";
  EXPECT_EQ(encodeResponse(Ok).find("retryAfterMs"), std::string::npos);
  ASSERT_TRUE(decodeResponse(encodeResponse(Ok), Out, Error)) << Error;
  EXPECT_EQ(Out.RetryAfterMs, -1);
}

//===----------------------------------------------------------------------===//
// Protocol: deadline framing (dribbled frames, mid-frame timeouts)
//===----------------------------------------------------------------------===//

TEST(ServerTest, DribbledFrameIsReassembledUnderDeadline) {
  // A server writing the length prefix and payload one byte at a time
  // must still produce a whole frame on the other side — the deadline
  // bounds the frame, it does not require any single write to be large.
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  const std::string Payload = "{\"exit\":0,\"stdout\":\"\",\"stderr\":\"\"}";
  uint32_t N = static_cast<uint32_t>(Payload.size());
  std::string Wire;
  Wire.push_back(static_cast<char>(N & 0xFF));
  Wire.push_back(static_cast<char>((N >> 8) & 0xFF));
  Wire.push_back(static_cast<char>((N >> 16) & 0xFF));
  Wire.push_back(static_cast<char>((N >> 24) & 0xFF));
  Wire += Payload;

  std::thread Dribbler([&] {
    for (char C : Wire) {
      ASSERT_EQ(::write(Fds[0], &C, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::string Got, Error;
  EXPECT_EQ(readFrameDeadline(Fds[1], Got, /*TimeoutMs=*/5000, Error),
            FrameIO::Ok)
      << Error;
  EXPECT_EQ(Got, Payload);
  Dribbler.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServerTest, ReadDeadlineMidFrameNeverDecodesTruncatedPayload) {
  // Half a frame arrives, then nothing: the deadline must fire (not
  // hang), the error must say so, and the partial payload must be wiped
  // — a truncated frame is poison, never data.
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  unsigned char Hdr[4] = {100, 0, 0, 0}; // Claims 100 payload bytes.
  ASSERT_EQ(::write(Fds[0], Hdr, 4), 4);
  ASSERT_EQ(::write(Fds[0], "0123456789", 10), 10); // ...delivers 10.

  std::string Got = "poison-sentinel", Error;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_EQ(readFrameDeadline(Fds[1], Got, /*TimeoutMs=*/150, Error),
            FrameIO::Timeout);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  EXPECT_GE(Ms, 100.0);
  EXPECT_LT(Ms, 2000.0) << "deadline did not bound the read";
  EXPECT_TRUE(Got.empty()) << "truncated payload leaked to the caller";
  EXPECT_NE(Error.find("deadline"), std::string::npos) << Error;
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Client: deadlines, failure classification, retry safety
//===----------------------------------------------------------------------===//

TEST(ServerTest, ConnectErrorsNameTheFailingPhase) {
  Client Conn;
  std::string Error;

  // Path too long: rejected before any syscall, with the limit named.
  EXPECT_FALSE(Conn.connect(std::string(300, 'x'), Error));
  EXPECT_NE(Error.find("exceeds"), std::string::npos) << Error;
  EXPECT_EQ(Conn.lastError(), TransportError::ConnectFailed);
  EXPECT_FALSE(Conn.retrySafe());

  // No socket file at all: the daemon-down hint, and retry-safe (the
  // daemon may just not have started yet).
  EXPECT_FALSE(
      Conn.connect(testing::TempDir() + "/tcc_server_gone.sock", Error));
  EXPECT_NE(Error.find("is tccd running?"), std::string::npos) << Error;
  EXPECT_EQ(Conn.lastError(), TransportError::ConnectRefused);
  EXPECT_TRUE(Conn.retrySafe());

  // The mid-restart race: the socket *file* exists but nobody listens
  // (a kill -9 leftover).  Must classify as refused + retry-safe, with
  // the errno text present, not hang or mislabel.
  std::string Stale = testing::TempDir() + "/tcc_server_stale_race.sock";
  std::remove(Stale.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Stale.c_str());
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ::close(Fd); // File stays; no listener.
  EXPECT_FALSE(Conn.connect(Stale, Error));
  EXPECT_EQ(Conn.lastError(), TransportError::ConnectRefused);
  EXPECT_TRUE(Conn.retrySafe());
  EXPECT_NE(Error.find(Stale), std::string::npos) << Error;
  std::remove(Stale.c_str());
}

TEST(ServerTest, ClientDeadlineBoundsASilentServer) {
  // A listener that accepts the connection into its backlog but never
  // responds: the client must fail at its deadline, classified Timeout
  // (NOT retry-safe — the server might be mid-compile).
  std::string Socket = testing::TempDir() + "/tcc_server_silent.sock";
  std::remove(Socket.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Socket.c_str());
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ASSERT_EQ(::listen(Fd, 8), 0);

  Client Conn(/*TimeoutMs=*/200);
  std::string Error;
  ASSERT_TRUE(Conn.connect(Socket, Error)) << Error;
  Request Req{{"k.c"}, "int main() { return 0; }", ""};
  Response Resp;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Conn.roundTrip(Req, Resp, Error));
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  EXPECT_EQ(Conn.lastError(), TransportError::Timeout);
  EXPECT_FALSE(Conn.retrySafe());
  EXPECT_GE(Ms, 150.0);
  EXPECT_LT(Ms, 2000.0) << "client hung past its deadline";
  ::close(Fd);
  std::remove(Socket.c_str());
}

TEST(ServerTest, DaemonClosingBeforeReadingIsRetrySafeShutdown) {
  // Satellite: EPIPE/ECONNRESET on the request write (or clean EOF on
  // the response read) means the daemon hung up before processing —
  // the "daemon shutting down" shape, marked retry-safe.
  std::string Socket = testing::TempDir() + "/tcc_server_hangup.sock";
  std::remove(Socket.c_str());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Socket.c_str());
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ASSERT_EQ(::listen(Fd, 8), 0);
  std::thread Hanger([&] {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C >= 0)
      ::close(C); // Hang up without reading a byte.
  });

  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(Socket, Error)) << Error;
  Hanger.join();
  // Large enough that the write cannot fully buffer before the close
  // lands — either the write dies with EPIPE or the read sees EOF; both
  // must classify as PeerClosed.
  Request Req{{"k.c"}, std::string(1 << 20, 'x'), ""};
  Response Resp;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Conn.roundTrip(Req, Resp, Error));
  EXPECT_EQ(Conn.lastError(), TransportError::PeerClosed);
  EXPECT_TRUE(Conn.retrySafe());
  EXPECT_NE(Error.find("daemon"), std::string::npos) << Error;
  ::close(Fd);
  std::remove(Socket.c_str());
}

TEST(ServerTest, RetryRidesThroughADaemonRestart) {
  // No daemon at first: every early attempt is a retry-safe refusal.
  // The daemon comes up mid-budget and the same call must then succeed
  // with a byte-identical response.
  std::string Socket = testing::TempDir() + "/tcc_server_restart.sock";
  std::remove(Socket.c_str());
  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Response Direct = directCompile({K.Name + ".c"}, K.Source);

  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Server Daemon(Opts);
  std::thread LateStarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    DiagnosticEngine Diags;
    ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
    Daemon.run();
  });

  Request Req{{K.Name + ".c"}, K.Source, ""};
  ClientOptions Copts;
  Copts.TimeoutMs = 5000;
  Copts.Retries = 30;
  Copts.RetryBudgetMs = 10000;
  Response Resp;
  std::string Error;
  CallOutcome O = runRequestWithRetry(Socket, Req, Copts, Resp, Error);
  EXPECT_TRUE(O.Ok) << Error;
  EXPECT_GT(O.Attempts, 1u) << "daemon was late; one attempt cannot win";
  EXPECT_EQ(Resp.Exit, Direct.Exit);
  EXPECT_EQ(Resp.Out, Direct.Out);
  EXPECT_EQ(Resp.Err, Direct.Err);

  Daemon.stop();
  LateStarter.join();
  std::remove(Socket.c_str());
}

TEST(ServerTest, AcceptFaultDropsOneConnectionAndRetryRecovers) {
  // The daemon-side `server-accept` site: the first connection is
  // dropped before any response byte (a crash-at-admission), which the
  // client sees as a clean retry-safe EOF; attempt two succeeds.
  std::string Socket = testing::TempDir() + "/tcc_server_acceptfault.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Opts.FaultInject = "server-accept:*:throw:1";
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Response Direct = directCompile({K.Name + ".c"}, K.Source);
  Request Req{{K.Name + ".c"}, K.Source, ""};
  ClientOptions Copts;
  Copts.TimeoutMs = 10000;
  Copts.Retries = 3;
  Copts.RetryBudgetMs = 5000;
  Response Resp;
  std::string Error;
  CallOutcome O = runRequestWithRetry(Socket, Req, Copts, Resp, Error);
  EXPECT_TRUE(O.Ok) << Error;
  EXPECT_EQ(O.Attempts, 2u);
  EXPECT_EQ(Resp.Out, Direct.Out);
  EXPECT_EQ(Daemon.stats().AcceptFaults, 1u);

  Daemon.stop();
  Acceptor.join();
  std::remove(Socket.c_str());
}

//===----------------------------------------------------------------------===//
// Server: load shedding, deadlines, health, drain
//===----------------------------------------------------------------------===//

TEST(ServerTest, FullQueueShedsWithBusyResponseAndHint) {
  std::string Socket = testing::TempDir() + "/tcc_server_shed.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Opts.Workers = 1;
  Opts.MaxQueue = 1;
  Opts.RequestDeadlineMs = 0;
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  // Occupy the only worker with a 500 ms slow-fault request.
  std::thread Occupier([&] {
    Request Slow{{"-fault-inject=server:*:slow:1", K.Name + ".c"},
                 K.Source, ""};
    Response Resp;
    std::string Error;
    EXPECT_TRUE(runRequest(Socket, Slow, Resp, Error)) << Error;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Fill the queue with an idle connection (it occupies the one slot).
  Client Queued;
  std::string Error;
  ASSERT_TRUE(Queued.connect(Socket, Error)) << Error;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The next connection must be shed: a complete busy response with a
  // retry hint, before any request bytes were read.
  Client Shedded(/*TimeoutMs=*/5000);
  ASSERT_TRUE(Shedded.connect(Socket, Error)) << Error;
  Request Req{{K.Name + ".c"}, K.Source, ""};
  Response Resp;
  ASSERT_TRUE(Shedded.roundTrip(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Exit, BusyExit);
  EXPECT_GE(Resp.RetryAfterMs, 0);
  EXPECT_NE(Resp.Err.find("busy"), std::string::npos) << Resp.Err;
  EXPECT_EQ(Daemon.stats().Shed, 1u);

  Queued.close();
  Occupier.join();
  Daemon.stop();
  Acceptor.join();
  std::remove(Socket.c_str());
}

TEST(ServerTest, StalledRequestIsDeadlineKilledWhileOthersStayIdentical) {
  // The watchdog: a wedged (injected stall) request becomes an exit-2
  // deadline error at RequestDeadlineMs, while a concurrent healthy
  // request on another worker stays byte-identical.
  std::string Socket = testing::TempDir() + "/tcc_server_deadline.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = freshCachePath("deadline");
  Opts.Workers = 2;
  Opts.RequestDeadlineMs = 300;
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Response Direct = directCompile({K.Name + ".c"}, K.Source);

  Response StallResp;
  std::string StallError;
  bool StallOk = false;
  auto T0 = std::chrono::steady_clock::now();
  std::thread Wedged([&] {
    Request Stall{{"-fault-inject=server:*:stall:1", K.Name + ".c"},
                  K.Source, ""};
    StallOk = runRequest(Socket, Stall, StallResp, StallError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Request Req{{K.Name + ".c"}, K.Source, ""};
  Response Resp;
  std::string Error;
  ASSERT_TRUE(runRequest(Socket, Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Exit, Direct.Exit);
  EXPECT_EQ(Resp.Out, Direct.Out);
  EXPECT_EQ(Resp.Err, Direct.Err);

  Wedged.join();
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  EXPECT_TRUE(StallOk) << StallError;
  EXPECT_EQ(StallResp.Exit, 2);
  EXPECT_NE(StallResp.Err.find("deadline"), std::string::npos)
      << StallResp.Err;
  EXPECT_LT(Ms, 10000.0) << "watchdog did not fire";
  EXPECT_EQ(Daemon.stats().DeadlineKilled, 1u);

  Daemon.stop();
  Acceptor.join();
  Daemon.shutdown(); // Joins the cancelled zombie promptly.
  std::remove(Socket.c_str());
  std::remove(Opts.CacheFile.c_str());
  std::remove((Opts.CacheFile + ".lock").c_str());
}

TEST(ServerTest, PingReturnsHealthJsonFromTheSharedAccessors) {
  std::string Socket = testing::TempDir() + "/tcc_server_ping.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  // One compile first so the counters are nonzero.
  const ablate::BenchKernel &K = ablate::benchKernels().front();
  Request Compile{{K.Name + ".c"}, K.Source, ""};
  Response CompileResp;
  std::string Error;
  ASSERT_TRUE(runRequest(Socket, Compile, CompileResp, Error)) << Error;

  Request Ping;
  Ping.Kind = "ping";
  Response Resp;
  ASSERT_TRUE(runRequest(Socket, Ping, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_NE(Resp.Out.find("\"requests\":1"), std::string::npos) << Resp.Out;
  EXPECT_NE(Resp.Out.find("\"hotEvictions\":"), std::string::npos);
  EXPECT_NE(Resp.Out.find("\"draining\":false"), std::string::npos);
  EXPECT_EQ(Daemon.stats().Pings, 1u);
  // Pings are not compiles: the request counter must not inflate.
  EXPECT_EQ(Daemon.stats().Requests, 1u);

  // Satellite: the exit stats line and the health JSON report the
  // hot-cache eviction count through one shared accessor — the numbers
  // can never disagree.
  uint64_t Evictions = Daemon.hotCache().stats().Evictions;
  EXPECT_NE(Resp.Out.find("\"hotEvictions\":" + std::to_string(Evictions)),
            std::string::npos);
  EXPECT_NE(Daemon.statsLine().find(std::to_string(Evictions) +
                                    " evictions"),
            std::string::npos)
      << Daemon.statsLine();

  // Unknown kinds are rejected cleanly, not treated as compiles.
  Request Bogus;
  Bogus.Kind = "frobnicate";
  ASSERT_TRUE(runRequest(Socket, Bogus, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Exit, 2);
  EXPECT_NE(Resp.Err.find("unknown request kind"), std::string::npos);

  Daemon.stop();
  Acceptor.join();
  std::remove(Socket.c_str());
}

TEST(ServerTest, DrainFinishesInFlightWorkAndRefusesNewConnections) {
  std::string Socket = testing::TempDir() + "/tcc_server_drain.sock";
  std::remove(Socket.c_str());
  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.CacheFile = "";
  Opts.Workers = 2;
  Server Daemon(Opts);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Daemon.start(Diags)) << Diags.str();
  std::thread Acceptor([&] { Daemon.run(); });

  const ablate::BenchKernel &K = ablate::benchKernels().front();
  // The daemon strips `server:` fault specs before compiling, so the
  // reference is the plain compile: slow-but-identical is the contract.
  Response Direct = directCompile({K.Name + ".c"}, K.Source);

  // An idle connection (no request yet) — drain must hang it up.
  Client Idle;
  std::string Error;
  ASSERT_TRUE(Idle.connect(Socket, Error)) << Error;

  // An in-flight slow request — drain must let it finish, identically.
  Response InFlightResp;
  std::string InFlightError;
  bool InFlightOk = false;
  std::thread InFlight([&] {
    Request Slow{{"-fault-inject=server:*:slow:1", K.Name + ".c"},
                 K.Source, ""};
    InFlightOk = runRequest(Socket, Slow, InFlightResp, InFlightError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  Daemon.requestDrain();
  Acceptor.join();
  EXPECT_TRUE(Daemon.draining());

  // The in-flight request completed byte-identically despite the drain.
  InFlight.join();
  EXPECT_TRUE(InFlightOk) << InFlightError;
  EXPECT_EQ(InFlightResp.Exit, Direct.Exit);
  EXPECT_EQ(InFlightResp.Out, Direct.Out);
  EXPECT_EQ(InFlightResp.Err, Direct.Err);

  // New connections are refused (the listener is gone).
  Client Late;
  EXPECT_FALSE(Late.connect(Socket, Error));
  EXPECT_TRUE(Late.retrySafe()) << "a draining daemon will be back";

  // The idle connection was hung up, not left dangling: a round trip on
  // it fails as a retry-safe peer-close.
  Daemon.shutdown();
  Request Req{{K.Name + ".c"}, K.Source, ""};
  Response Resp;
  EXPECT_FALSE(Idle.roundTrip(Req, Resp, Error));
  EXPECT_TRUE(Idle.retrySafe()) << Error;

  std::remove(Socket.c_str());
}

TEST(ServerTest, TaskQueueReportsPendingAndActive) {
  TaskQueue Queue(1);
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;

  // Block the only worker, then pile up two more tasks.
  ASSERT_TRUE(Queue.submit([&] {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Release; });
  }));
  for (int I = 0; I < 50 && Queue.active() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(Queue.submit([] {}));
  ASSERT_TRUE(Queue.submit([] {}));

  EXPECT_EQ(Queue.active(), 1u);
  EXPECT_EQ(Queue.pending(), 2u);

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  Queue.shutdown();
  EXPECT_EQ(Queue.active(), 0u);
  EXPECT_EQ(Queue.pending(), 0u);
}

} // namespace
