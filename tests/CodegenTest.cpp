//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation tests: storage assignment policy (registers vs frame
/// vs globals), stub generation for external callees, dependence flags
/// on emitted loads, and layout of the global image.
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "driver/Compiler.h"
#include "frontend/Lower.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace tcc;

namespace {

titan::TitanProgram gen(const std::string &Source,
                        codegen::CodegenOptions Opts = {}) {
  DiagnosticEngine Diags;
  il::Program P;
  Lexer L(Source, Diags);
  ast::AstContext Ctx;
  Parser Parse(L.lexAll(), Ctx, P.getTypes(), Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, P, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  titan::TitanProgram Prog = codegen::generateProgram(P, Diags, Opts);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

TEST(CodegenTest, GlobalLayoutAndImage) {
  titan::TitanProgram P = gen(R"(
    int gi = 11;
    float gf = 2.5;
    double gd = -3.5;
    float arr[10];
    void main() {}
  )");
  ASSERT_TRUE(P.GlobalAddresses.count("gi"));
  ASSERT_TRUE(P.GlobalAddresses.count("arr"));
  // 8-byte alignment throughout.
  for (const auto &[Name, Addr] : P.GlobalAddresses)
    EXPECT_EQ(Addr % 8, 0) << Name;
  // Initial image carries the values.
  int64_t GI = P.GlobalAddresses["gi"];
  int32_t V;
  std::memcpy(&V, P.InitialImage.data() + GI, 4);
  EXPECT_EQ(V, 11);
  float F;
  std::memcpy(&F, P.InitialImage.data() + P.GlobalAddresses["gf"], 4);
  EXPECT_FLOAT_EQ(F, 2.5f);
  double D;
  std::memcpy(&D, P.InitialImage.data() + P.GlobalAddresses["gd"], 8);
  EXPECT_DOUBLE_EQ(D, -3.5);
}

TEST(CodegenTest, StaticsGetQualifiedGlobalSlots) {
  titan::TitanProgram P = gen(R"(
    int f() { static int count = 3; count += 1; return count; }
    void main() { f(); }
  )");
  ASSERT_TRUE(P.GlobalAddresses.count("f.count"));
  int32_t V;
  std::memcpy(&V, P.InitialImage.data() + P.GlobalAddresses.at("f.count"),
              4);
  EXPECT_EQ(V, 3);
}

TEST(CodegenTest, UnknownCalleeGetsStub) {
  titan::TitanProgram P = gen(R"(
    void external_thing(int x);
    void main() { external_thing(3); }
  )");
  ASSERT_TRUE(P.FunctionIndex.count("external_thing"));
  const titan::TitanFunction &Stub =
      P.Functions[P.FunctionIndex.at("external_thing")];
  EXPECT_NE(Stub.Name.find("stub"), std::string::npos);
  ASSERT_EQ(Stub.Code.size(), 1u);
  EXPECT_EQ(Stub.Code[0].Op, titan::Opcode::RET);
}

TEST(CodegenTest, AddressTakenLocalsLiveInFrame) {
  titan::TitanProgram P = gen(R"(
    void main() {
      int x; int *p;
      p = &x;
      *p = 5;
    }
  )");
  const titan::TitanFunction *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_GT(Main->FrameSize, 0);
}

TEST(CodegenTest, PlainScalarsAvoidFrame) {
  titan::TitanProgram P = gen(R"(
    void main() {
      int x; float y;
      x = 1;
      y = 2.0;
    }
  )");
  const titan::TitanFunction *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->FrameSize, 0);
  EXPECT_GT(Main->NumFpRegs, 0u);
}

TEST(CodegenTest, RegisterBudgetSpillsColdScalars) {
  // 30 integer locals with a budget of 4: the rest go to the frame.
  std::string Source = "void main() {\n";
  for (int I = 0; I < 30; ++I)
    Source += "  int v" + std::to_string(I) + "; v" + std::to_string(I) +
              " = " + std::to_string(I) + ";\n";
  Source += "}\n";
  codegen::CodegenOptions Opts;
  Opts.IntRegisterBudget = 4;
  titan::TitanProgram P = gen(Source, Opts);
  const titan::TitanFunction *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_GE(Main->FrameSize, 8 * 26);
}

TEST(CodegenTest, LocalArraysInFrame) {
  titan::TitanProgram P = gen(R"(
    void main() {
      float buf[16];
      buf[3] = 1.0;
    }
  )");
  const titan::TitanFunction *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_GE(Main->FrameSize, 16 * 4);
}

TEST(CodegenTest, DepSchedulingFlagControlsLoadMarks) {
  const char *Source = R"(
    float a[100], b[100];
    void main() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i] + 1.0;
      for (i = 0; i < 100; i++)
        b[i] = a[i] * 0.5;
    }
  )";
  // Through the driver with dep scheduling on, flagged loads exist...
  driver::CompilerOptions On = driver::CompilerOptions::scalarOnly();
  On.EnableDepScheduling = true;
  auto A = driver::compileSource(Source, On);
  ASSERT_TRUE(A->ok());
  unsigned Marked = 0;
  for (const auto &In : A->Machine.find("main")->Code)
    Marked += In.NoStoreConflict;
  EXPECT_GT(Marked, 0u);

  // ...and with it off, none (scalar loads; vector codegen is separate).
  driver::CompilerOptions Off = driver::CompilerOptions::scalarOnly();
  Off.EnableDepScheduling = false;
  auto B = driver::compileSource(Source, Off);
  unsigned MarkedOff = 0;
  for (const auto &In : B->Machine.find("main")->Code)
    if (In.Op != titan::Opcode::VLD)
      MarkedOff += In.NoStoreConflict;
  EXPECT_EQ(MarkedOff, 0u);
}

TEST(CodegenTest, VolatileGlobalAlwaysMemoryResident) {
  titan::TitanProgram P = gen(R"(
    volatile int status;
    void main() {
      int x;
      x = status;
      x = status;
      status = x;
    }
  )");
  const titan::TitanFunction *Main = P.find("main");
  // Two separate LDW instructions for the two reads.
  unsigned Loads = 0;
  for (const auto &In : Main->Code)
    Loads += In.Op == titan::Opcode::LDW;
  EXPECT_GE(Loads, 2u);
}

TEST(CodegenTest, CharOpsUseByteMemoryOps) {
  titan::TitanProgram P = gen(R"(
    char buf[8];
    void main() {
      buf[0] = 'A';
      buf[1] = buf[0];
    }
  )");
  const titan::TitanFunction *Main = P.find("main");
  unsigned ByteStores = 0, ByteLoads = 0;
  for (const auto &In : Main->Code) {
    ByteStores += In.Op == titan::Opcode::STC;
    ByteLoads += In.Op == titan::Opcode::LDC;
  }
  EXPECT_EQ(ByteStores, 2u);
  EXPECT_EQ(ByteLoads, 1u);
}

} // namespace
