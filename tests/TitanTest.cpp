//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests of the Titan machine: hand-assembled TitanISA programs
/// exercising the integer/FP/memory/vector units, calls, parallel
/// regions, the timing model's overlap behaviour, and trap conditions.
///
//===----------------------------------------------------------------------===//

#include "titan/TitanISA.h"
#include "titan/TitanMachine.h"

#include <gtest/gtest.h>

using namespace tcc::titan;

namespace {

/// Builder for small test programs.
struct Asm {
  TitanProgram Prog;
  TitanFunction F;

  Asm() {
    F.Name = "main";
    Prog.GlobalAddresses["g"] = 64;
    Prog.GlobalSize = 256;
    Prog.InitialImage.assign(256, 0);
    Prog.StackBase = 256;
  }

  Instr &emit(Opcode Op, int Dst = -1, int SrcA = -1, int SrcB = -1,
              int64_t Imm = 0) {
    Instr In;
    In.Op = Op;
    In.Dst = Dst;
    In.SrcA = SrcA;
    In.SrcB = SrcB;
    In.Imm = Imm;
    F.Code.push_back(In);
    return F.Code.back();
  }

  TitanProgram finish(unsigned IntRegs, unsigned FpRegs,
                      unsigned VecRegs = 0) {
    emit(Opcode::RET);
    F.NumIntRegs = IntRegs;
    F.NumFpRegs = FpRegs;
    F.NumVecRegs = VecRegs;
    Prog.FunctionIndex["main"] = 0;
    Prog.Functions.push_back(std::move(F));
    return std::move(Prog);
  }
};

TEST(TitanTest, IntegerALU) {
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, 20);
  A.emit(Opcode::LI, 2, -1, -1, 3);
  A.emit(Opcode::IADD, 3, 1, 2);  // 23
  A.emit(Opcode::IMUL, 4, 3, 2);  // 69
  A.emit(Opcode::IREM, 5, 4, 1);  // 69 % 20 = 9
  A.emit(Opcode::LI, 6, -1, -1, 64);
  A.emit(Opcode::STW, -1, 6, 5);
  TitanProgram P = A.finish(8, 0);
  TitanMachine M(P, {});
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(M.readInt(64), 9);
  EXPECT_EQ(R.IntMuls, 1u);
}

TEST(TitanTest, FloatPipeline) {
  Asm A;
  A.emit(Opcode::LF, 0).FImm = 1.5;
  A.emit(Opcode::LF, 1).FImm = 2.0;
  A.emit(Opcode::FMUL, 2, 0, 1); // 3.0
  A.emit(Opcode::FADD, 3, 2, 1); // 5.0
  A.emit(Opcode::LI, 1, -1, -1, 64);
  A.emit(Opcode::STD, -1, 1, 3);
  TitanProgram P = A.finish(4, 4);
  TitanMachine M(P, {});
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_DOUBLE_EQ(M.readDouble(64), 5.0);
  EXPECT_EQ(R.Flops, 2u);
}

TEST(TitanTest, SinglePrecisionRounding) {
  Asm A;
  A.emit(Opcode::LF, 0).FImm = 0.1; // not representable in float32
  A.emit(Opcode::LF, 1).FImm = 0.2;
  Instr &Add = A.emit(Opcode::FADD, 2, 0, 1);
  Add.SinglePrec = true;
  A.emit(Opcode::LI, 1, -1, -1, 64);
  A.emit(Opcode::STD, -1, 1, 2);
  TitanProgram P = A.finish(4, 4);
  TitanMachine M(P, {});
  ASSERT_TRUE(M.run().Ok);
  EXPECT_DOUBLE_EQ(M.readDouble(64),
                   static_cast<double>(static_cast<float>(0.1 + 0.2)));
}

TEST(TitanTest, BranchesAndLoop) {
  // Sum 1..10 with a BNZ loop.
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, 10); // n
  A.emit(Opcode::LI, 2, -1, -1, 0);  // sum
  size_t Top = A.F.Code.size();
  A.emit(Opcode::IADD, 2, 2, 1);
  A.emit(Opcode::LI, 3, -1, -1, 1);
  A.emit(Opcode::ISUB, 1, 1, 3);
  A.emit(Opcode::BNZ, -1, 1).Target = static_cast<int>(Top);
  A.emit(Opcode::LI, 4, -1, -1, 64);
  A.emit(Opcode::STW, -1, 4, 2);
  TitanProgram P = A.finish(8, 0);
  TitanMachine M(P, {});
  ASSERT_TRUE(M.run().Ok);
  EXPECT_EQ(M.readInt(64), 55);
}

TEST(TitanTest, VectorLoadComputeStore) {
  Asm A;
  // Initialize 8 floats at g via VIOTA + VST, then a = a*2 + 1.
  A.emit(Opcode::LI, 1, -1, -1, 0);  // lo
  A.emit(Opcode::LI, 2, -1, -1, 1);  // stride (elements for iota)
  A.emit(Opcode::LI, 3, -1, -1, 8);  // len
  Instr &Iota = A.emit(Opcode::VIOTA, 0);
  Iota.Args = {1, 2, 3};
  A.emit(Opcode::LI, 4, -1, -1, 64); // base addr
  A.emit(Opcode::LI, 5, -1, -1, 4);  // byte stride
  Instr &St = A.emit(Opcode::VST, -1, 0);
  St.Kind = ElemKind::Float32;
  St.Args = {4, 5, 3};
  Instr &Ld = A.emit(Opcode::VLD, 1);
  Ld.Kind = ElemKind::Float32;
  Ld.Args = {4, 5, 3};
  A.emit(Opcode::LF, 0).FImm = 2.0;
  Instr &Mul = A.emit(Opcode::VSMUL, 2, 1);
  Mul.Args = {0};
  A.emit(Opcode::LF, 1).FImm = 1.0;
  Instr &Add = A.emit(Opcode::VSADD, 3, 2);
  Add.Args = {1};
  Instr &St2 = A.emit(Opcode::VST, -1, 3);
  St2.Kind = ElemKind::Float32;
  St2.Args = {4, 5, 3};
  TitanProgram P = A.finish(8, 4, 4);
  TitanMachine M(P, {});
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  for (int K = 0; K < 8; ++K)
    EXPECT_FLOAT_EQ(M.readFloat(64 + 4 * K), 2.0f * K + 1.0f) << K;
  EXPECT_GT(R.VectorInstrs, 0u);
  EXPECT_EQ(R.Flops, 16u); // two 8-element arithmetic ops
}

TEST(TitanTest, StridedVectorAccess) {
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, 5); // lo value
  A.emit(Opcode::LI, 2, -1, -1, 0); // stride 0: constant vector
  A.emit(Opcode::LI, 3, -1, -1, 4); // len
  Instr &Iota = A.emit(Opcode::VIOTA, 0);
  Iota.Args = {1, 2, 3};
  A.emit(Opcode::LI, 4, -1, -1, 64);
  A.emit(Opcode::LI, 5, -1, -1, 8); // every other float
  Instr &St = A.emit(Opcode::VST, -1, 0);
  St.Kind = ElemKind::Float32;
  St.Args = {4, 5, 3};
  TitanProgram P = A.finish(8, 0, 2);
  TitanMachine M(P, {});
  ASSERT_TRUE(M.run().Ok);
  EXPECT_FLOAT_EQ(M.readFloat(64), 5.0f);
  EXPECT_FLOAT_EQ(M.readFloat(64 + 8), 5.0f);
  EXPECT_FLOAT_EQ(M.readFloat(64 + 4), 0.0f); // untouched
}

TEST(TitanTest, OverlapTimingFasterThanSerial) {
  // Independent int and FP chains: overlap must be faster.
  auto Build = []() {
    Asm A;
    for (int K = 0; K < 10; ++K) {
      A.emit(Opcode::LI, 1, -1, -1, K);
      A.emit(Opcode::LF, 0).FImm = K;
      A.emit(Opcode::FADD, 1, 0, 0);
    }
    return A.finish(4, 4);
  };
  TitanProgram P1 = Build();
  TitanConfig Overlap;
  TitanMachine M1(P1, Overlap);
  RunResult R1 = M1.run();

  TitanProgram P2 = Build();
  TitanConfig Serial;
  Serial.EnableOverlap = false;
  TitanMachine M2(P2, Serial);
  RunResult R2 = M2.run();

  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_LT(R1.Cycles, R2.Cycles);
}

TEST(TitanTest, StoreLoadConflictStallsUnlessFlagged) {
  auto Build = [](bool NoConflict) {
    Asm A;
    A.emit(Opcode::LI, 1, -1, -1, 64);
    A.emit(Opcode::LI, 2, -1, -1, 128);
    A.emit(Opcode::LI, 3, -1, -1, 7);
    A.emit(Opcode::STW, -1, 1, 3); // store to g
    Instr &Ld = A.emit(Opcode::LDW, 4, 2); // load from elsewhere
    Ld.NoStoreConflict = NoConflict;
    A.emit(Opcode::IADD, 5, 4, 4); // consume the load
    A.emit(Opcode::STW, -1, 1, 5);
    return A.finish(8, 0);
  };
  TitanProgram P1 = Build(false);
  TitanMachine M1(P1, {});
  RunResult Conservative = M1.run();
  TitanProgram P2 = Build(true);
  TitanMachine M2(P2, {});
  RunResult Disambiguated = M2.run();
  ASSERT_TRUE(Conservative.Ok && Disambiguated.Ok);
  EXPECT_LT(Disambiguated.Cycles, Conservative.Cycles);
}

TEST(TitanTest, ParallelRegionDividesCycles) {
  auto Build = []() {
    Asm A;
    A.emit(Opcode::LI, 1, -1, -1, 8); // chunk count
    A.emit(Opcode::PARBEGIN, -1, 1);
    // A pile of dependent FP work.
    A.emit(Opcode::LF, 0).FImm = 1.0;
    for (int K = 0; K < 50; ++K)
      A.emit(Opcode::FADD, 0, 0, 0);
    A.emit(Opcode::PAREND);
    return A.finish(4, 2);
  };
  TitanProgram P1 = Build();
  TitanConfig One;
  One.NumProcessors = 1;
  TitanMachine M1(P1, One);
  RunResult R1 = M1.run();

  TitanProgram P2 = Build();
  TitanConfig Four;
  Four.NumProcessors = 4;
  TitanMachine M2(P2, Four);
  RunResult R2 = M2.run();

  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_LT(R2.Cycles, R1.Cycles);
}

TEST(TitanTest, TrapInvalidLoad) {
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, -4);
  A.emit(Opcode::LDW, 2, 1);
  TitanProgram P = A.finish(4, 0);
  TitanMachine M(P, {});
  RunResult R = M.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid address"), std::string::npos);
}

TEST(TitanTest, TrapDivisionByZero) {
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, 1);
  A.emit(Opcode::LI, 2, -1, -1, 0);
  A.emit(Opcode::IDIV, 3, 1, 2);
  TitanProgram P = A.finish(4, 0);
  TitanMachine M(P, {});
  RunResult R = M.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(TitanTest, TrapMissingEntry) {
  TitanProgram P;
  TitanMachine M(P, {});
  RunResult R = M.run("nosuch");
  EXPECT_FALSE(R.Ok);
}

TEST(TitanTest, InstructionBudget) {
  Asm A;
  size_t Top = A.F.Code.size();
  A.emit(Opcode::JMP).Target = static_cast<int>(Top);
  TitanProgram P = A.finish(2, 0);
  TitanConfig C;
  C.MaxInstructions = 1000;
  TitanMachine M(P, C);
  RunResult R = M.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(TitanTest, VectorLengthLimit) {
  Asm A;
  A.emit(Opcode::LI, 1, -1, -1, 0);
  A.emit(Opcode::LI, 2, -1, -1, 1);
  A.emit(Opcode::LI, 3, -1, -1, 9000); // > 8192 register file
  Instr &Iota = A.emit(Opcode::VIOTA, 0);
  Iota.Args = {1, 2, 3};
  TitanProgram P = A.finish(4, 0, 1);
  TitanMachine M(P, {});
  RunResult R = M.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("register file"), std::string::npos);
}

TEST(TitanTest, DisassemblyRendersFlags) {
  Asm A;
  Instr &Ld = A.emit(Opcode::LDW, 2, 1);
  Ld.NoStoreConflict = true;
  TitanProgram P = A.finish(4, 0);
  std::string Text = disassemble(P.Functions[0]);
  EXPECT_NE(Text.find("ldw"), std::string::npos);
  EXPECT_NE(Text.find("[nosconf]"), std::string::npos);
}

} // namespace
