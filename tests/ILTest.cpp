//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the IL: construction, printing, cloning, structural
/// equality, traversal utilities, and catalog (de)serialization round
/// trips — the "no hard pointers" property of paper Section 7.
///
//===----------------------------------------------------------------------===//

#include "il/IL.h"
#include "il/ILPrinter.h"
#include "il/ILSerializer.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;

namespace {

TEST(ILTest, SymbolCreation) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  Symbol *X = F->createSymbol("x", P.getTypes().getIntType(),
                              StorageKind::Local);
  EXPECT_EQ(X->getName(), "x");
  EXPECT_FALSE(X->isVolatile());
  EXPECT_EQ(F->findSymbol("x"), X);
  EXPECT_EQ(F->findSymbolById(X->getId()), X);
  EXPECT_EQ(F->findSymbol("y"), nullptr);
}

TEST(ILTest, TempNamesAreUnique) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  Symbol *T1 = F->createTemp(P.getTypes().getIntType());
  Symbol *T2 = F->createTemp(P.getTypes().getIntType());
  EXPECT_NE(T1->getName(), T2->getName());
}

TEST(ILTest, PrintSimpleAssign) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getIntType(), StorageKind::Local);
  auto *S = F->create<AssignStmt>(
      SourceLoc(), F->makeVarRef(X),
      F->makeBinary(OpCode::Add, F->makeVarRef(X),
                    F->makeIntConst(Types.getIntType(), 1),
                    Types.getIntType()));
  EXPECT_EQ(printStmt(S), "x = x + 1;\n");
}

TEST(ILTest, PrintPrecedence) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *A = F->createSymbol("a", Types.getIntType(), StorageKind::Local);
  Symbol *B = F->createSymbol("b", Types.getIntType(), StorageKind::Local);
  // (a + b) * 2 must keep its parentheses.
  auto *E = F->makeBinary(
      OpCode::Mul,
      F->makeBinary(OpCode::Add, F->makeVarRef(A), F->makeVarRef(B),
                    Types.getIntType()),
      F->makeIntConst(Types.getIntType(), 2), Types.getIntType());
  EXPECT_EQ(printExpr(E), "(a + b) * 2");
}

TEST(ILTest, PrintDoLoopAndTriplet) {
  Program P;
  TypeContext &Types = P.getTypes();
  const Type *IntTy = Types.getIntType();
  const Type *FloatTy = Types.getFloatType();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *I = F->createSymbol("vi", IntTy, StorageKind::Local);
  Symbol *A = F->createSymbol(
      "a", Types.getArrayType(FloatTy, 100), StorageKind::Local);

  auto *Loop = F->create<DoLoopStmt>(
      SourceLoc(), I, F->makeIntConst(IntTy, 0), F->makeIntConst(IntTy, 99),
      F->makeIntConst(IntTy, 32));
  Loop->setParallel(true);
  auto *Triplet = F->create<TripletExpr>(
      IntTy, F->makeVarRef(I),
      F->makeBinary(OpCode::Min, F->makeIntConst(IntTy, 99),
                    F->makeBinary(OpCode::Add, F->makeVarRef(I),
                                  F->makeIntConst(IntTy, 31), IntTy),
                    IntTy),
      F->makeIntConst(IntTy, 1));
  auto *LHS = F->create<IndexExpr>(FloatTy, F->makeVarRef(A),
                                   std::vector<Expr *>{Triplet});
  Loop->getBody().Stmts.push_back(F->create<AssignStmt>(
      SourceLoc(), LHS, F->makeFloatConst(FloatTy, 0.0)));

  std::string Printed = printStmt(Loop);
  EXPECT_NE(Printed.find("do parallel vi = 0, 99, 32 {"), std::string::npos);
  EXPECT_NE(Printed.find("a[vi:min(99, vi + 31):1]"), std::string::npos);
}

TEST(ILTest, ExprEqualsStructural) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getIntType(), StorageKind::Local);
  auto *E1 = F->makeBinary(OpCode::Add, F->makeVarRef(X),
                           F->makeIntConst(Types.getIntType(), 4),
                           Types.getIntType());
  auto *E2 = F->makeBinary(OpCode::Add, F->makeVarRef(X),
                           F->makeIntConst(Types.getIntType(), 4),
                           Types.getIntType());
  auto *E3 = F->makeBinary(OpCode::Add, F->makeVarRef(X),
                           F->makeIntConst(Types.getIntType(), 8),
                           Types.getIntType());
  EXPECT_TRUE(exprEquals(E1, E2));
  EXPECT_FALSE(exprEquals(E1, E3));
}

TEST(ILTest, CloneIsDeepAndEqual) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getPointerType(Types.getFloatType()),
                              StorageKind::Local);
  auto *E = F->create<DerefExpr>(
      Types.getFloatType(),
      F->makeBinary(OpCode::Add, F->makeVarRef(X),
                    F->makeIntConst(Types.getIntType(), 4), X->getType()));
  Expr *C = F->cloneExpr(E);
  EXPECT_NE(C, E);
  EXPECT_TRUE(exprEquals(C, E));
}

TEST(ILTest, CloneRemapsSymbols) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getIntType(), StorageKind::Local);
  Symbol *Y = F->createSymbol("y", Types.getIntType(), StorageKind::Local);
  Expr *E = F->makeVarRef(X);
  Expr *C = F->cloneExprRemap(E, [&](Symbol *S) { return S == X ? Y : S; });
  EXPECT_EQ(static_cast<VarRefExpr *>(C)->getSymbol(), Y);
}

TEST(ILTest, VolatileDetection) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *V = F->createSymbol("v", Types.getIntType(), StorageKind::Local,
                              /*IsVolatile=*/true);
  Symbol *X = F->createSymbol("x", Types.getIntType(), StorageKind::Local);
  Expr *E1 = F->makeVarRef(V);
  Expr *E2 = F->makeBinary(OpCode::Add, F->makeVarRef(X),
                           F->makeIntConst(Types.getIntType(), 1),
                           Types.getIntType());
  EXPECT_TRUE(exprReadsVolatile(E1));
  EXPECT_FALSE(exprReadsVolatile(E2));
}

TEST(ILTest, TouchesMemoryDetection) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *PSym = F->createSymbol(
      "p", Types.getPointerType(Types.getFloatType()), StorageKind::Local);
  Expr *Load = F->create<DerefExpr>(Types.getFloatType(), F->makeVarRef(PSym));
  EXPECT_TRUE(exprTouchesMemory(Load));
  EXPECT_FALSE(exprTouchesMemory(F->makeVarRef(PSym)));
}

TEST(ILTest, ForEachStmtVisitsNested) {
  Program P;
  TypeContext &Types = P.getTypes();
  Function *F = P.createFunction("f", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getIntType(), StorageKind::Local);
  auto *If = F->create<IfStmt>(SourceLoc(), F->makeVarRef(X));
  If->getThen().Stmts.push_back(F->create<AssignStmt>(
      SourceLoc(), F->makeVarRef(X), F->makeIntConst(Types.getIntType(), 1)));
  If->getElse().Stmts.push_back(F->create<AssignStmt>(
      SourceLoc(), F->makeVarRef(X), F->makeIntConst(Types.getIntType(), 2)));
  F->getBody().Stmts.push_back(If);

  int Count = 0;
  forEachStmt(F->getBody(), [&Count](Stmt *) { ++Count; });
  EXPECT_EQ(Count, 3);
}

TEST(ILTest, SerializeRoundTripSimple) {
  Program P1;
  TypeContext &Types = P1.getTypes();
  Function *F = P1.createFunction("f", Types.getIntType());
  Symbol *N = F->createSymbol("n", Types.getIntType(), StorageKind::Param);
  F->addParam(N);
  F->getBody().Stmts.push_back(F->create<ReturnStmt>(
      SourceLoc(),
      F->makeBinary(OpCode::Mul, F->makeVarRef(N),
                    F->makeIntConst(Types.getIntType(), 2),
                    Types.getIntType())));

  std::string Text = serializeFunction(*F);
  Program P2;
  DiagnosticEngine Diags;
  Function *F2 = deserializeFunction(Text, P2, Diags);
  ASSERT_NE(F2, nullptr) << Diags.str();
  EXPECT_EQ(printFunction(*F2), printFunction(*F));
}

TEST(ILTest, SerializeRoundTripAllConstructs) {
  Program P1;
  TypeContext &Types = P1.getTypes();
  const Type *IntTy = Types.getIntType();
  const Type *FloatTy = Types.getFloatType();
  Function *F = P1.createFunction("kitchen_sink", Types.getVoidType());
  Symbol *X = F->createSymbol("x", Types.getPointerType(FloatTy),
                              StorageKind::Param);
  F->addParam(X);
  Symbol *I = F->createSymbol("i", IntTy, StorageKind::Local);
  Symbol *A = F->createSymbol("a", Types.getArrayType(FloatTy, 8),
                              StorageKind::Local);
  Symbol *St = F->createSymbol("counter", IntTy, StorageKind::Static);
  GlobalInit Init;
  Init.IntValue = 7;
  St->setInit(Init);
  Symbol *G = P1.createGlobal("g", IntTy, /*IsVolatile=*/true);

  // while loop with deref store.
  auto *W = F->create<WhileStmt>(SourceLoc(), F->makeVarRef(G));
  W->getBody().Stmts.push_back(F->create<AssignStmt>(
      SourceLoc(),
      F->create<DerefExpr>(FloatTy, F->makeVarRef(X)),
      F->makeFloatConst(FloatTy, 1.25)));
  F->getBody().Stmts.push_back(W);

  // do loop with index store and min().
  auto *D = F->create<DoLoopStmt>(SourceLoc(), I, F->makeIntConst(IntTy, 0),
                                  F->makeIntConst(IntTy, 7),
                                  F->makeIntConst(IntTy, 1));
  D->setParallel(true);
  D->getBody().Stmts.push_back(F->create<AssignStmt>(
      SourceLoc(),
      F->create<IndexExpr>(FloatTy, F->makeVarRef(A),
                           std::vector<Expr *>{F->makeVarRef(I)}),
      F->create<CastExpr>(FloatTy,
                          F->makeBinary(OpCode::Min, F->makeVarRef(I),
                                        F->makeIntConst(IntTy, 3), IntTy))));
  F->getBody().Stmts.push_back(D);

  // if / goto / label / call / return.
  auto *If = F->create<IfStmt>(
      SourceLoc(), F->makeBinary(OpCode::Le, F->makeVarRef(I),
                                 F->makeIntConst(IntTy, 0), IntTy));
  If->getThen().Stmts.push_back(F->create<GotoStmt>(SourceLoc(), "out"));
  F->getBody().Stmts.push_back(If);
  F->getBody().Stmts.push_back(F->create<CallStmt>(
      SourceLoc(), nullptr, "helper",
      std::vector<Expr *>{F->create<AddrOfExpr>(Types.getPointerType(FloatTy),
                                                F->makeVarRef(A))}));
  F->getBody().Stmts.push_back(F->create<LabelStmt>(SourceLoc(), "out"));
  F->getBody().Stmts.push_back(F->create<ReturnStmt>(SourceLoc(), nullptr));

  std::string Text = serializeFunction(*F);
  Program P2;
  DiagnosticEngine Diags;
  Function *F2 = deserializeFunction(Text, P2, Diags);
  ASSERT_NE(F2, nullptr) << Diags.str();
  EXPECT_EQ(printFunction(*F2), printFunction(*F));
  // The volatile global was recreated in the target program.
  Symbol *G2 = P2.findGlobal("g");
  ASSERT_NE(G2, nullptr);
  EXPECT_TRUE(G2->isVolatile());
  // The static's initializer survived.
  Symbol *St2 = F2->findSymbol("counter");
  ASSERT_NE(St2, nullptr);
  ASSERT_TRUE(St2->hasInit());
  EXPECT_EQ(St2->getInit().IntValue, 7);
  (void)G;
}

TEST(ILTest, DeserializeMalformedReportsError) {
  Program P;
  DiagnosticEngine Diags;
  EXPECT_EQ(deserializeFunction("(function", P, Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine Diags2;
  EXPECT_EQ(deserializeFunction("(banana 1 2)", P, Diags2), nullptr);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(ILTest, SerializeEscapesQuotes) {
  Program P1;
  Function *F = P1.createFunction("weird\"name", P1.getTypes().getVoidType());
  F->getBody().Stmts.push_back(F->create<ReturnStmt>(SourceLoc(), nullptr));
  std::string Text = serializeFunction(*F);
  Program P2;
  DiagnosticEngine Diags;
  Function *F2 = deserializeFunction(Text, P2, Diags);
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(F2->getName(), "weird\"name");
}

TEST(ILTest, RemoveFunction) {
  Program P;
  Function *F1 = P.createFunction("a", P.getTypes().getVoidType());
  P.createFunction("b", P.getTypes().getVoidType());
  EXPECT_EQ(P.getFunctions().size(), 2u);
  P.removeFunction(F1);
  EXPECT_EQ(P.getFunctions().size(), 1u);
  EXPECT_EQ(P.findFunction("a"), nullptr);
  EXPECT_NE(P.findFunction("b"), nullptr);
}

} // namespace
