//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for memory-reference normalization and dependence testing:
/// star forms over pointers and address constants, named arrays, the
/// ZIV/SIV/GCD/Banerjee battery, aliasing conservatism for pointer
/// parameters (Section 9), and the dependence graph's SCC structure for
/// the paper's backsolve recurrence.
///
//===----------------------------------------------------------------------===//

#include "dependence/DependenceGraph.h"
#include "dependence/MemRef.h"

#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::dep;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

/// Lowers, converts loops, substitutes IVs, and cleans — the state in
/// which dependence analysis runs.
Function *prepare(Compiled &C, const std::string &Name) {
  Function *F = C.P->findFunction(Name);
  EXPECT_NE(F, nullptr);
  scalar::convertWhileLoops(*F);
  scalar::substituteInductionVariables(*F);
  scalar::propagateConstants(*F);
  scalar::eliminateDeadCode(*F);
  return F;
}

DoLoopStmt *findDoLoop(Function *F) {
  DoLoopStmt *Found = nullptr;
  forEachStmt(F->getBody(), [&Found](Stmt *S) {
    if (!Found && S->getKind() == Stmt::DoLoopKind)
      Found = static_cast<DoLoopStmt *>(S);
  });
  return Found;
}

//===----------------------------------------------------------------------===//
// Reference normalization
//===----------------------------------------------------------------------===//

TEST(MemRefTest, ArraySubscriptForm) {
  auto C = compileToIL(R"(
    float a[100];
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = a[i] + 1.0;
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  NestContext Nest = buildNestContext(*F, D);
  ASSERT_EQ(D->getBody().size(), 1u);
  auto Refs = collectMemRefs(D->getBody().Stmts[0], Nest);
  ASSERT_EQ(Refs.size(), 2u);
  for (const MemRef &R : Refs) {
    EXPECT_TRUE(R.Addr.Valid);
    EXPECT_EQ(R.Addr.Base.K, BaseKey::Array);
    EXPECT_EQ(R.Addr.Base.Sym->getName(), "a");
    EXPECT_EQ(R.Addr.coeffOf(D->getIndexVar()), 4);
    EXPECT_EQ(R.Size, 4);
  }
  // Exactly one write.
  EXPECT_EQ(Refs[0].IsWrite + Refs[1].IsWrite, 1);
}

TEST(MemRefTest, StarFormOverAddressConstant) {
  // *(&a + 4*i) — the form the paper's inlined daxpy produces.
  auto C = compileToIL(R"(
    float a[100]; float b[100];
    void f() {
      float *p; float *q; int i;
      p = a;
      q = b;
      for (i = 0; i < 100; i++)
        *(p + i) = *(q + i);
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  NestContext Nest = buildNestContext(*F, D);
  auto Refs = collectMemRefs(D->getBody().Stmts[0], Nest);
  ASSERT_EQ(Refs.size(), 2u);
  EXPECT_EQ(Refs[0].Addr.Base.K, BaseKey::Array);
  EXPECT_EQ(Refs[1].Addr.Base.K, BaseKey::Array);
  EXPECT_NE(Refs[0].Addr.Base.Sym, Refs[1].Addr.Base.Sym);
}

TEST(MemRefTest, PointerParameterBase) {
  auto C = compileToIL(R"(
    void f(float *x, int n) {
      int i;
      for (i = 0; i < n; i++)
        x[i] = 0.0;
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  NestContext Nest = buildNestContext(*F, D);
  auto Refs = collectMemRefs(D->getBody().Stmts[0], Nest);
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_EQ(Refs[0].Addr.Base.K, BaseKey::Pointer);
  EXPECT_EQ(Refs[0].Addr.Base.Sym->getName(), "x");
}

TEST(MemRefTest, TwoDimensionalArrayStrides) {
  auto C = compileToIL(R"(
    float m[8][16];
    void f(int i, int j) {
      m[i][j] = 0.0;
    }
  )");
  Function *F = C->P->findFunction("f");
  // No loop: build an artificial nest over i and j.
  NestContext Nest;
  Nest.IndexVars.push_back(F->findSymbol("i"));
  Nest.IndexVars.push_back(F->findSymbol("j"));
  auto Refs = collectMemRefs(F->getBody().Stmts[0], Nest);
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_TRUE(Refs[0].Addr.Valid);
  EXPECT_EQ(Refs[0].Addr.coeffOf(F->findSymbol("i")), 16 * 4);
  EXPECT_EQ(Refs[0].Addr.coeffOf(F->findSymbol("j")), 4);
}

TEST(MemRefTest, NonLinearSubscriptInvalid) {
  auto C = compileToIL(R"(
    float a[100];
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        a[i * i] = 0.0;
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  NestContext Nest = buildNestContext(*F, D);
  auto Refs = collectMemRefs(D->getBody().Stmts[0], Nest);
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_FALSE(Refs[0].Addr.Valid);
}

//===----------------------------------------------------------------------===//
// Pairwise tests
//===----------------------------------------------------------------------===//

/// Builds two synthetic refs on the same array base with the given
/// coefficients/offsets (in elements of 4 bytes).
struct RefPair {
  Program P;
  Function *F;
  Symbol *Arr;
  Symbol *Idx;
  MemRef A, B;

  RefPair(int64_t CoeffA, int64_t OffA, int64_t CoeffB, int64_t OffB) {
    F = P.createFunction("f", P.getTypes().getVoidType());
    Arr = F->createSymbol(
        "x", P.getTypes().getArrayType(P.getTypes().getFloatType(), 1000),
        StorageKind::Local);
    Idx = F->createSymbol("i", P.getTypes().getIntType(), StorageKind::Temp);
    A = make(CoeffA, OffA, /*Write=*/true);
    B = make(CoeffB, OffB, /*Write=*/false);
  }

  MemRef make(int64_t Coeff, int64_t Off, bool Write) {
    MemRef R;
    R.IsWrite = Write;
    R.Size = 4;
    R.Addr.Valid = true;
    R.Addr.Base.K = BaseKey::Array;
    R.Addr.Base.Sym = Arr;
    R.Addr.Offset = scalar::LinExpr::constant(Off * 4);
    if (Coeff != 0)
      R.Addr.IdxCoeffs[Idx] = Coeff * 4;
    return R;
  }
};

TEST(DepTest, ZIVSameAddress) {
  RefPair P(0, 5, 0, 5);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_TRUE(R.Dependent);
  EXPECT_TRUE(R.Carried);
}

TEST(DepTest, ZIVDifferentAddress) {
  RefPair P(0, 5, 0, 9);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_FALSE(R.Dependent);
}

TEST(DepTest, StrongSIVDistanceOne) {
  // x[i] (write) vs x[i-1] (read): the backsolve recurrence.
  RefPair P(1, 0, 1, -1);
  DepResult R = testRefs(P.A, P.B, P.Idx, 1000);
  EXPECT_TRUE(R.Dependent);
  EXPECT_TRUE(R.Carried);
  ASSERT_TRUE(R.DistanceKnown);
  EXPECT_EQ(R.Distance, 1); // read at iteration i+1 sees write from i
}

TEST(DepTest, StrongSIVIndependentSameIteration) {
  RefPair P(1, 0, 1, 0);
  DepResult R = testRefs(P.A, P.B, P.Idx, 1000);
  EXPECT_TRUE(R.Dependent);
  EXPECT_FALSE(R.Carried);
  EXPECT_TRUE(R.LoopIndependent);
  EXPECT_EQ(R.Distance, 0);
}

TEST(DepTest, StrongSIVBeyondTripCount) {
  // Distance 50 in a 10-iteration loop: no dependence.
  RefPair P(1, 0, 1, -50);
  DepResult R = testRefs(P.A, P.B, P.Idx, 10);
  EXPECT_FALSE(R.Dependent);
}

TEST(DepTest, StrongSIVNonDivisible) {
  // x[2i] vs x[2i+1]: stride 2, offset 1, element 4 bytes → bytes 8i vs
  // 8i+4, never overlapping.
  RefPair P(2, 0, 2, 0);
  P.B.Addr.Offset = scalar::LinExpr::constant(4);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_FALSE(R.Dependent);
}

TEST(DepTest, GCDIndependent) {
  // x[2i] vs x[2i+1] with different coefficient signs exercises the GCD
  // path: 2x - 2y = 1 has no integer solution.
  RefPair P(2, 0, -2, 0);
  P.B.Addr.Offset = scalar::LinExpr::constant(4);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_FALSE(R.Dependent);
}

TEST(DepTest, BanerjeeBoundsIndependent) {
  // x[i] vs x[i+200] in a loop of 100 iterations with differing coeffs:
  // Banerjee range check proves independence.
  RefPair P(1, 0, 2, 300);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_FALSE(R.Dependent);
}

TEST(DepTest, SymbolicOffsetConservative) {
  RefPair P(1, 0, 1, 0);
  Symbol *M = P.F->createSymbol("m", P.P.getTypes().getIntType(),
                                StorageKind::Param);
  P.B.Addr.Offset = scalar::LinExpr::entry(M);
  DepResult R = testRefs(P.A, P.B, P.Idx, 100);
  EXPECT_TRUE(R.Dependent); // unknown m: conservative
}

//===----------------------------------------------------------------------===//
// Graph structure
//===----------------------------------------------------------------------===//

TEST(DepGraphTest, IndependentCopyLoopAcyclic) {
  auto C = compileToIL(R"(
    float a[100]; float b[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  EXPECT_FALSE(G.hasAnyCarriedDependence());
  auto Sccs = G.sccsInTopologicalOrder();
  ASSERT_EQ(Sccs.size(), 1u);
  EXPECT_FALSE(G.sccIsCyclic(Sccs[0]));
}

TEST(DepGraphTest, BacksolveRecurrenceCyclic) {
  // p[i] = z[i] * (y[i] - p[i-1]) — the paper's Section 6 loop.
  auto C = compileToIL(R"(
    float x[1001]; float y[1000]; float z[1000];
    void backsolve(int n) {
      float *p; float *q; int i;
      p = &x[1];
      q = &x[0];
      for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
    }
  )");
  Function *F = prepare(*C, "backsolve");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr) << printFunction(*F);
  LoopDependenceGraph G(*F, D);
  EXPECT_TRUE(G.hasAnyCarriedDependence()) << printFunction(*F);
  auto Sccs = G.sccsInTopologicalOrder();
  ASSERT_EQ(Sccs.size(), 1u);
  EXPECT_TRUE(G.sccIsCyclic(Sccs[0]));
  // And the distance is exactly 1.
  bool FoundDistanceOne = false;
  for (const DepEdge &E : G.edges())
    if (E.Carried && E.DistanceKnown && E.Distance == 1)
      FoundDistanceOne = true;
  EXPECT_TRUE(FoundDistanceOne);
}

TEST(DepGraphTest, PointerParamsAliasWithoutPragma) {
  auto C = compileToIL(R"(
    void f(float *x, float *y, int n) {
      int i;
      for (i = 0; i < n; i++)
        x[i] = y[i];
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  EXPECT_TRUE(G.hasAnyCarriedDependence());
}

TEST(DepGraphTest, FortranPointerSemanticsRemoveAliasing) {
  auto C = compileToIL(R"(
    void f(float *x, float *y, int n) {
      int i;
      for (i = 0; i < n; i++)
        x[i] = y[i];
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  DepGraphOptions Opts;
  Opts.FortranPointerSemantics = true;
  LoopDependenceGraph G(*F, D, Opts);
  EXPECT_FALSE(G.hasAnyCarriedDependence());
}

TEST(DepGraphTest, SafePragmaRemovesAliasing) {
  auto C = compileToIL(R"(
    void f(float *x, float *y, int n) {
      int i;
      #pragma safe
      for (i = 0; i < n; i++)
        x[i] = y[i];
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->hasSafeVectorPragma());
  LoopDependenceGraph G(*F, D);
  EXPECT_FALSE(G.hasAnyCarriedDependence());
}

TEST(DepGraphTest, SamePointerRecurrenceStillDetectedUnderPragma) {
  // The pragma must not erase same-base subscript analysis.
  auto C = compileToIL(R"(
    void f(float *x, int n) {
      int i;
      #pragma safe
      for (i = 1; i < n; i++)
        x[i] = x[i - 1];
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  EXPECT_TRUE(G.hasAnyCarriedDependence());
}

TEST(DepGraphTest, ReductionCreatesScalarCycle) {
  auto C = compileToIL(R"(
    float a[100]; float out;
    void f() {
      float s; int i;
      s = 0.0;
      for (i = 0; i < 100; i++)
        s = s + a[i];
      out = s;
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  auto Sccs = G.sccsInTopologicalOrder();
  bool AnyCyclic = false;
  for (const auto &Scc : Sccs)
    AnyCyclic |= G.sccIsCyclic(Scc);
  EXPECT_TRUE(AnyCyclic);
}

TEST(DepGraphTest, CallIsBarrier) {
  auto C = compileToIL(R"(
    float a[100];
    void g(void);
    void f() {
      int i;
      for (i = 0; i < 100; i++) {
        a[i] = 1.0;
        g();
      }
    }
  )");
  Function *F = C->P->findFunction("f");
  scalar::convertWhileLoops(*F);
  scalar::substituteInductionVariables(*F);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  auto Sccs = G.sccsInTopologicalOrder();
  ASSERT_EQ(Sccs.size(), 1u);
  EXPECT_TRUE(G.sccIsCyclic(Sccs[0]));
}

TEST(DepGraphTest, DistributableStatements) {
  // S1 writes a, S2 reads a from the previous iteration: carried edge
  // S1→S2 but still two acyclic SCCs (distribution splits them).
  auto C = compileToIL(R"(
    float a[101]; float b[100]; float c[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++) {
        a[i + 1] = b[i];
        c[i] = a[i];
      }
    }
  )");
  Function *F = prepare(*C, "f");
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  LoopDependenceGraph G(*F, D);
  auto Sccs = G.sccsInTopologicalOrder();
  ASSERT_EQ(Sccs.size(), 2u);
  EXPECT_FALSE(G.sccIsCyclic(Sccs[0]));
  EXPECT_FALSE(G.sccIsCyclic(Sccs[1]));
  // Topological order: the writer of a comes first.
  EXPECT_EQ(Sccs[0][0], 0u);
}

} // namespace
