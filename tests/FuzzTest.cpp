//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the differential fuzzing fleet: generator determinism and
/// validity, oracle classification, delta-debugging reducer convergence,
/// crash-bundle round-trips, and campaign sharding determinism.
///
/// Injected faults (via the deterministic fault injector) stand in for
/// real miscompiles: "constprop:*:corrupt-il" makes the verifier reject
/// constprop's output, "constprop:*:throw" makes the sandbox quarantine
/// it — both must classify, bisect, reduce, and bundle exactly like a
/// genuine bug would.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "pipeline/PassRegistry.h"
#include "pipeline/PassSandbox.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <set>
#include <sstream>

using namespace tcc;
using namespace tcc::fuzz;

namespace {

/// A unique scratch directory per test, removed on destruction.
struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const std::string &Tag) {
    Path = std::filesystem::temp_directory_path() /
           ("tcc-fuzz-test-" + Tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// Small, fast campaign shape shared by the campaign tests.
CampaignOptions quickCampaign(uint64_t Seed, uint64_t Programs,
                              unsigned Shards) {
  CampaignOptions C;
  C.Seed = Seed;
  C.Programs = Programs;
  C.Shards = Shards;
  C.Oracle.Variants = 2;
  C.ReproDir.clear();
  return C;
}

size_t countLines(const std::string &S) {
  size_t N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Rng and seeds
//===----------------------------------------------------------------------===//

TEST(FuzzRng, SplitmixStreamIsFixed) {
  // The stream is a platform contract: pinned values guard against any
  // accidental switch to std::rand or library distributions.
  Rng R(0);
  EXPECT_EQ(R.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(R.next(), 0x6e789e6aa1b965f4ull);
  Rng R2(42);
  uint64_t First = R2.next();
  EXPECT_EQ(Rng(42).next(), First);
  EXPECT_NE(Rng(43).next(), First);
}

TEST(FuzzRng, BoundedHelpers) {
  Rng R(7);
  for (int I = 0; I < 200; ++I) {
    EXPECT_LT(R.below(10), 10u);
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
  Rng Always(1);
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(Always.chance(100));
}

TEST(FuzzRng, ProgramSeedIndependentOfSharding) {
  // programSeed is a pure function of (campaign seed, index) — the same
  // program set no matter how a campaign is sharded.
  std::set<uint64_t> Seeds;
  for (uint64_t I = 0; I < 64; ++I) {
    uint64_t S = programSeed(99, I);
    EXPECT_EQ(S, programSeed(99, I));
    Seeds.insert(S);
  }
  EXPECT_EQ(Seeds.size(), 64u); // no collisions in a small campaign
  EXPECT_NE(programSeed(99, 0), programSeed(100, 0));
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, SameSeedByteIdentical) {
  for (uint64_t Seed : {1ull, 42ull, 0xdeadbeefull}) {
    GenProgram A = generateProgram(Seed);
    GenProgram B = generateProgram(Seed);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Globals, B.Globals);
  }
}

TEST(FuzzGenerator, DifferentSeedsDiffer) {
  EXPECT_NE(generateProgram(1).Source, generateProgram(2).Source);
}

TEST(FuzzGenerator, GeneratedProgramsRunCleanAtO0) {
  // The well-definedness discipline in practice: every generated program
  // must parse, verify, and run to completion unoptimized.
  for (uint64_t I = 0; I < 25; ++I) {
    uint64_t Seed = programSeed(7, I);
    GenProgram P = generateProgram(Seed);
    driver::CompilerOptions O = driver::CompilerOptions::noOpt();
    O.VerifyEach = true;
    driver::RunOutcome Out = driver::compileAndRun(P.Source, O, {});
    ASSERT_TRUE(Out.Compile->ok())
        << "seed " << Seed << ":\n" << P.Source;
    EXPECT_TRUE(Out.Compile->Telemetry.Faults.empty()) << "seed " << Seed;
    EXPECT_TRUE(Out.Run.Ok) << "seed " << Seed << ": " << Out.Run.Error;
  }
}

TEST(FuzzGenerator, CoversStatementShapes) {
  // Across a modest seed range the generator must exercise the whole
  // statement surface the issue names — loops, while/do conversion
  // shapes, conditionals, and leaf calls.
  std::string All;
  for (uint64_t I = 0; I < 40; ++I)
    All += generateProgram(programSeed(3, I)).Source;
  EXPECT_NE(All.find("for ("), std::string::npos);
  EXPECT_NE(All.find("while ("), std::string::npos);
  EXPECT_NE(All.find("do {"), std::string::npos);
  EXPECT_NE(All.find("if ("), std::string::npos);
  EXPECT_NE(All.find("leaf"), std::string::npos); // generated leaf calls
}

TEST(FuzzGenerator, ObservedGlobalsDeclared) {
  GenProgram P = generateProgram(11);
  EXPECT_FALSE(P.Globals.empty());
  for (const std::string &G : P.Globals)
    EXPECT_NE(P.Source.find(G), std::string::npos) << G;
}

//===----------------------------------------------------------------------===//
// Variant sampling and classification vocabulary
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, SampleSpecsDeterministicAndAnchored) {
  std::vector<std::string> A = sampleVariantSpecs(5, 6, false);
  std::vector<std::string> B = sampleVariantSpecs(5, 6, false);
  EXPECT_EQ(A, B);
  ASSERT_EQ(A.size(), 6u);
  // Element 0 is always the full default pipeline — the campaign's
  // baseline variant.
  EXPECT_EQ(A[0], driver::CompilerOptions::full().pipelineSpec());
  // Sampled specs are subsequences of registered transforms, no "verify".
  for (const std::string &Spec : A)
    for (const std::string &Pass : pipeline::splitSpec(Spec))
      EXPECT_NE(Pass, "verify");
  EXPECT_NE(sampleVariantSpecs(6, 6, false), A);
}

TEST(FuzzOracle, WildOrdersStillDeterministic) {
  EXPECT_EQ(sampleVariantSpecs(9, 8, true), sampleVariantSpecs(9, 8, true));
}

TEST(FuzzOracle, ClassNamesRoundTrip) {
  for (DivergenceClass C :
       {DivergenceClass::RunError, DivergenceClass::CompileError,
        DivergenceClass::Quarantine, DivergenceClass::VerifierFault,
        DivergenceClass::OutputDivergence}) {
    EXPECT_EQ(divergenceClassFromName(divergenceClassName(C)), C);
  }
  EXPECT_EQ(divergenceClassFromName("nonsense"), DivergenceClass::Ok);
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, CleanProgramAllVariantsOk) {
  GenProgram P = generateProgram(programSeed(1, 0));
  OracleOptions OO;
  OO.Variants = 4;
  OO.SampleSeed = P.Seed;
  OracleResult R = runOracle(P.Source, OO);
  ASSERT_TRUE(R.RefOk) << R.RefError;
  ASSERT_EQ(R.Variants.size(), 4u);
  EXPECT_EQ(R.worst(), DivergenceClass::Ok);
  EXPECT_EQ(R.firstBad(), nullptr);
}

TEST(FuzzOracle, CorruptILClassifiesAsVerifierFault) {
  GenProgram P = generateProgram(programSeed(1, 1));
  OracleOptions OO;
  OO.FaultInject = "constprop:*:corrupt-il";
  std::string Spec = driver::CompilerOptions::full().pipelineSpec();
  VariantResult R = checkVariant(P.Source, Spec, OO);
  EXPECT_EQ(R.Class, DivergenceClass::VerifierFault);
  EXPECT_EQ(R.FaultPass, "constprop");
  EXPECT_EQ(R.FaultKind, "verifier");
}

TEST(FuzzOracle, ThrowClassifiesAsQuarantine) {
  GenProgram P = generateProgram(programSeed(1, 2));
  OracleOptions OO;
  OO.FaultInject = "dce:*:throw";
  std::string Spec = driver::CompilerOptions::full().pipelineSpec();
  VariantResult R = checkVariant(P.Source, Spec, OO);
  EXPECT_EQ(R.Class, DivergenceClass::Quarantine);
  EXPECT_EQ(R.FaultPass, "dce");
}

TEST(FuzzOracle, ReferenceFailureIsNeverInteresting) {
  // Reducers probe candidate programs that may not compile at all; the
  // oracle must pin the blame on the reference, not report a variant bug.
  VariantResult R = checkVariant("void main() { undeclared = 1; }",
                                 "constprop", OracleOptions());
  EXPECT_EQ(R.Class, DivergenceClass::CompileError);
  EXPECT_EQ(R.FaultPass, "reference");
}

TEST(FuzzOracle, EmptySpecMeansNoPasses) {
  // The bisection's base case: an empty spec must compile with zero
  // transformations, not fall back to the default pipeline.
  driver::CompilerOptions O = oracleVariantOptions("", OracleOptions());
  for (const std::string &Pass : pipeline::splitSpec(
           O.Passes.empty() ? O.pipelineSpec() : O.Passes))
    EXPECT_EQ(Pass, "verify"); // the no-op marker, never a transform
  GenProgram P = generateProgram(programSeed(1, 3));
  VariantResult R = checkVariant(P.Source, "", OracleOptions());
  EXPECT_EQ(R.Class, DivergenceClass::Ok) << R.Detail;
}

TEST(FuzzOracle, ProcPrefixArmsSpreading) {
  // `@P4:` on a spec keeps the pass list intact but arms the spread pass
  // and the vectorizer's parallel strip marks at four processors.
  OracleOptions OO;
  std::string Spec = driver::CompilerOptions::parallel(4).pipelineSpec();
  driver::CompilerOptions O = oracleVariantOptions("@P4:" + Spec, OO);
  EXPECT_EQ(O.Passes, Spec);
  EXPECT_EQ(O.Spread.Processors, 4);
  EXPECT_TRUE(O.Vectorize.EnableParallel);
  // Without the prefix, spreading stays off.
  driver::CompilerOptions Plain = oracleVariantOptions(Spec, OO);
  EXPECT_EQ(Plain.Spread.Processors, 1);
  // `@P4:` alone is the parallel bisection base case: zero transforms.
  driver::CompilerOptions Empty = oracleVariantOptions("@P4:", OO);
  EXPECT_EQ(Empty.Passes, "verify");
  EXPECT_EQ(Empty.Spread.Processors, 4);
}

TEST(FuzzOracle, PDifferentialVariantsStayClean) {
  GenProgram P = generateProgram(programSeed(1, 7));
  OracleOptions OO;
  OO.Variants = 3;
  OO.SampleSeed = P.Seed;
  OO.PDifferential = true;
  OracleResult R = runOracle(P.Source, OO);
  ASSERT_TRUE(R.RefOk) << R.RefError;
  // 3 plain variants + the parallel(4) pipeline + the 2 sampled specs
  // re-run under @P4:.
  ASSERT_EQ(R.Variants.size(), 6u);
  unsigned Prefixed = 0;
  for (const VariantResult &V : R.Variants)
    if (V.Spec.rfind("@P4:", 0) == 0)
      ++Prefixed;
  EXPECT_EQ(Prefixed, 3u);
  EXPECT_EQ(R.worst(), DivergenceClass::Ok)
      << R.firstBad()->Spec << ": " << R.firstBad()->Detail;
}

TEST(FuzzOracle, BisectFindsInjectedCulprit) {
  GenProgram P = generateProgram(programSeed(1, 4));
  OracleOptions OO;
  OO.FaultInject = "ivsub:*:corrupt-il";
  std::string Spec = driver::CompilerOptions::full().pipelineSpec();
  VariantResult R = checkVariant(P.Source, Spec, OO);
  ASSERT_EQ(R.Class, DivergenceClass::VerifierFault);
  std::string PrefixSpec;
  std::string Culprit =
      bisectCulprit(P.Source, Spec, R.Class, OO, &PrefixSpec);
  EXPECT_EQ(Culprit, "ivsub");
  // The failing prefix ends at the culprit.
  std::vector<std::string> Prefix = pipeline::splitSpec(PrefixSpec);
  ASSERT_FALSE(Prefix.empty());
  EXPECT_EQ(Prefix.back(), "ivsub");
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(FuzzReducer, ConvergesOnInjectedFault) {
  GenProgram P = generateProgram(programSeed(1, 5));
  OracleOptions OO;
  OO.FaultInject = "constprop:*:corrupt-il";
  std::string Spec = driver::CompilerOptions::full().pipelineSpec();
  VariantResult Bad = checkVariant(P.Source, Spec, OO);
  ASSERT_EQ(Bad.Class, DivergenceClass::VerifierFault);

  ReduceResult R = reduceSource(P.Source, Spec, Bad.Class, OO);
  EXPECT_TRUE(R.Converged);
  EXPECT_LE(R.ReducedLines, 25u); // the acceptance bar for reproducers
  EXPECT_LT(R.ReducedLines, R.OriginalLines);
  EXPECT_GT(R.Checks, 0u);
  // The reduced program still shows the same class on the same spec.
  VariantResult After = checkVariant(R.Source, Spec, OO);
  EXPECT_EQ(After.Class, Bad.Class);
  EXPECT_NE(After.FaultPass, "reference");
}

TEST(FuzzReducer, UninterestingInputEchoesBack) {
  GenProgram P = generateProgram(programSeed(1, 6));
  // No injection: the program is clean, so claiming VerifierFault is not
  // reproducible and the reducer must bail without inventing a program.
  ReduceResult R =
      reduceSource(P.Source, driver::CompilerOptions::full().pipelineSpec(),
                   DivergenceClass::VerifierFault, OracleOptions());
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Source, P.Source);
}

TEST(FuzzReducer, RespectsCheckBudget) {
  GenProgram P = generateProgram(programSeed(1, 7));
  OracleOptions OO;
  OO.FaultInject = "constprop:*:corrupt-il";
  ReduceOptions RO;
  RO.MaxChecks = 3; // far too small to converge
  ReduceResult R =
      reduceSource(P.Source, driver::CompilerOptions::full().pipelineSpec(),
                   DivergenceClass::VerifierFault, OO, RO);
  EXPECT_LE(R.Checks, 4u); // one sweep may overshoot by the probe itself
  EXPECT_FALSE(R.Converged);
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

TEST(FuzzCampaign, CleanCampaignFindsNothing) {
  DiagnosticEngine Diags;
  CampaignResult R = runCampaign(quickCampaign(1, 8, 2), Diags);
  EXPECT_EQ(R.Executed, 8u);
  EXPECT_EQ(R.RefFailures, 0u);
  EXPECT_EQ(R.Crashed, 0u);
  EXPECT_TRUE(R.Findings.empty());
  EXPECT_EQ(R.unreduced(), 0u);
  EXPECT_FALSE(R.anyQuarantinedShard());
  ASSERT_EQ(R.Shards.size(), 2u);
  EXPECT_EQ(R.Shards[0].Count + R.Shards[1].Count, 8u);
}

TEST(FuzzCampaign, InjectedFaultYieldsOneReducedFinding) {
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(2, 6, 2);
  C.FaultInject = "constprop:*:corrupt-il";
  CampaignResult R = runCampaign(C, Diags);
  // Six programs all hit the same injected bug -> exactly one finding.
  ASSERT_EQ(R.Findings.size(), 1u);
  const Finding &F = R.Findings[0];
  EXPECT_EQ(F.Class, DivergenceClass::VerifierFault);
  EXPECT_EQ(F.CulpritPass, "constprop");
  EXPECT_EQ(F.Signature, "verifier|constprop");
  EXPECT_EQ(F.Hits, 6u);
  EXPECT_TRUE(F.Reduced);
  EXPECT_LE(F.ReducedLines, 25u);
  EXPECT_EQ(R.Divergent, 6u);
  EXPECT_EQ(R.unreduced(), 0u);
}

TEST(FuzzCampaign, FindingsIdenticalAcrossShardCounts) {
  // The determinism contract: same seed, same findings, byte-identical,
  // whether the fleet runs on 1 shard or 4.
  DiagnosticEngine D1, D4;
  CampaignOptions C1 = quickCampaign(3, 10, 1);
  CampaignOptions C4 = quickCampaign(3, 10, 4);
  C1.FaultInject = C4.FaultInject = "vectorize:*:corrupt-il";
  CampaignResult R1 = runCampaign(C1, D1);
  CampaignResult R4 = runCampaign(C4, D4);
  EXPECT_EQ(R1.Executed, R4.Executed);
  EXPECT_EQ(R1.Divergent, R4.Divergent);
  ASSERT_EQ(R1.Findings.size(), R4.Findings.size());
  for (size_t I = 0; I < R1.Findings.size(); ++I) {
    EXPECT_EQ(R1.Findings[I].Signature, R4.Findings[I].Signature);
    EXPECT_EQ(R1.Findings[I].Seed, R4.Findings[I].Seed);
    EXPECT_EQ(R1.Findings[I].Spec, R4.Findings[I].Spec);
    EXPECT_EQ(R1.Findings[I].Hits, R4.Findings[I].Hits);
    EXPECT_EQ(R1.Findings[I].Source, R4.Findings[I].Source);
  }
}

TEST(FuzzCampaign, ShardQuarantineSkipsRangeAndReports) {
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(4, 8, 2);
  C.FaultInject = "fuzz:shard0:throw";
  CampaignResult R = runCampaign(C, Diags);
  ASSERT_EQ(R.Shards.size(), 2u);
  EXPECT_TRUE(R.Shards[0].Quarantined);
  EXPECT_FALSE(R.Shards[0].Error.empty());
  EXPECT_FALSE(R.Shards[1].Quarantined);
  EXPECT_TRUE(R.anyQuarantinedShard());
  // Shard 1's half still executed; shard 0's range was skipped.
  EXPECT_EQ(R.Executed, R.Shards[1].Count);
  EXPECT_EQ(R.unreduced(), 0u); // a quarantine is not a finding failure
}

TEST(FuzzCampaign, BenchRowAppendsValidJson) {
  TempDir Dir("bench");
  std::string Bench = Dir.str() + "/BENCH_fuzz.json";
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(5, 4, 1);
  C.FaultInject = "inline:*:throw";
  C.BenchPath = Bench;
  CampaignResult R = runCampaign(C, Diags);
  ASSERT_FALSE(R.Findings.empty());

  std::ifstream In(Bench);
  ASSERT_TRUE(In.good());
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  // One complete JSON object per line with the campaign metrics.
  EXPECT_EQ(Line.front(), '{');
  EXPECT_EQ(Line.back(), '}');
  for (const char *Key :
       {"\"bench\":", "\"programs_per_sec\":", "\"yield_per_10k\":",
        "\"mean_reduction_ratio\":", "\"unique_bugs\":", "\"findings\":",
        "\"quarantined_shards\":"})
    EXPECT_NE(Line.find(Key), std::string::npos) << Key;
  // Appending is additive: a second campaign adds a second line.
  runCampaign(C, Diags);
  std::ifstream In2(Bench);
  size_t Lines = 0;
  while (std::getline(In2, Line))
    ++Lines;
  EXPECT_EQ(Lines, 2u);
}

TEST(FuzzCampaign, BundleRoundTripCarriesFuzzRecords) {
  TempDir Dir("bundle");
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(6, 3, 1);
  C.FaultInject = "constprop:*:corrupt-il";
  C.ReproDir = Dir.str();
  CampaignResult R = runCampaign(C, Diags);
  ASSERT_EQ(R.Findings.size(), 1u);
  const Finding &F = R.Findings[0];
  ASSERT_FALSE(F.BundlePath.empty());

  pipeline::ReproBundle B;
  DiagnosticEngine LoadDiags;
  ASSERT_TRUE(pipeline::loadReproBundle(F.BundlePath, B, LoadDiags));
  EXPECT_EQ(B.Pass, "constprop");
  EXPECT_EQ(B.Function, "main");
  EXPECT_EQ(B.Oracle, "verifier");
  EXPECT_EQ(B.VariantSpec, F.Spec);
  EXPECT_EQ(B.CSource, F.Source.back() == '\n' ? F.Source : F.Source + "\n");
  EXPECT_EQ(B.InjectSpec, C.FaultInject);
  EXPECT_FALSE(B.IL.empty());
  // The recorded C source replays to the recorded oracle class.
  OracleOptions OO;
  OO.FaultInject = B.InjectSpec;
  VariantResult V = checkVariant(B.CSource, B.VariantSpec, OO);
  EXPECT_EQ(divergenceClassName(V.Class), B.Oracle);
}

TEST(FuzzCampaign, PlainBundlesStillLoad) {
  // Backward compatibility: a sandbox bundle without the fuzz records
  // parses with the extension fields left empty.
  TempDir Dir("plain");
  std::string Path = Dir.str() + "/plain.repro";
  {
    std::ofstream OS(Path, std::ios::binary);
    OS << "tcc-repro v1\n"
       << "pass dce\n"
       << "function \"main\"\n"
       << "kind verifier\n"
       << "inject -\n"
       << "description test\n"
       << "il 22\n"
       << "func main() -> void {\n";
  }
  pipeline::ReproBundle B;
  DiagnosticEngine Diags;
  ASSERT_TRUE(pipeline::loadReproBundle(Path, B, Diags));
  EXPECT_EQ(B.Pass, "dce");
  EXPECT_TRUE(B.Oracle.empty());
  EXPECT_TRUE(B.VariantSpec.empty());
  EXPECT_TRUE(B.CSource.empty());
}

TEST(FuzzCampaign, MalformedInjectSpecDiagnosed) {
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(7, 2, 1);
  C.FaultInject = "not-a-valid-spec";
  CampaignResult R = runCampaign(C, Diags);
  EXPECT_EQ(R.Executed, 0u);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FuzzCampaign, ReductionRatioReflectsShrinkage) {
  DiagnosticEngine Diags;
  CampaignOptions C = quickCampaign(8, 3, 1);
  C.FaultInject = "whiletodo:*:corrupt-il";
  CampaignResult R = runCampaign(C, Diags);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_GT(R.YieldPer10k, 0.0);
  EXPECT_LT(R.MeanReductionRatio, 1.0);
  EXPECT_GT(R.MeanReductionRatio, 0.0);
  EXPECT_EQ(countLines(R.Findings[0].Source), R.Findings[0].ReducedLines);
}

} // namespace
