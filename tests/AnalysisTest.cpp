//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the analysis layer: CFG shape, reaching definitions /
/// use-def chains (including volatile and aliasing conservatism), loop
/// structure, and the call graph.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/UseDef.h"

#include "frontend/Lower.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::analysis;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

/// First statement of the given kind (pre-order).
template <typename T> T *findFirst(Function *F) {
  T *Found = nullptr;
  forEachStmt(F->getBody(), [&Found](Stmt *S) {
    if (!Found && T::classof(S))
      Found = static_cast<T *>(S);
  });
  return Found;
}

TEST(CFGTest, StraightLine) {
  auto R = compileToIL("void f() { int x; int y; x = 1; y = x; }");
  Function *F = R->P->findFunction("f");
  CFG G(*F);
  // entry, exit, x=1, y=x, return.
  EXPECT_EQ(G.size(), 5u);
  // Entry has one successor; exit has at least one predecessor.
  EXPECT_EQ(G.node(CFG::EntryId).Succs.size(), 1u);
  EXPECT_FALSE(G.node(CFG::ExitId).Preds.empty());
}

TEST(CFGTest, IfHasTwoSuccessors) {
  auto R = compileToIL("void f(int a) { if (a) a = 1; else a = 2; }");
  Function *F = R->P->findFunction("f");
  CFG G(*F);
  auto *If = findFirst<IfStmt>(F);
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(G.node(G.idOf(If)).Succs.size(), 2u);
}

TEST(CFGTest, WhileHasBackEdge) {
  auto R = compileToIL("void f(int n) { while (n) n = n - 1; }");
  Function *F = R->P->findFunction("f");
  CFG G(*F);
  auto *W = findFirst<WhileStmt>(F);
  ASSERT_NE(W, nullptr);
  unsigned WId = G.idOf(W);
  // Two successors: body and follow.
  EXPECT_EQ(G.node(WId).Succs.size(), 2u);
  // The while node has >= 2 preds: entry path and the back edge.
  EXPECT_GE(G.node(WId).Preds.size(), 2u);
}

TEST(CFGTest, GotoTargetsLabel) {
  auto R = compileToIL(
      "void f(int n) { top: n = n - 1; if (n) goto top; }");
  Function *F = R->P->findFunction("f");
  CFG G(*F);
  GotoStmt *Goto = findFirst<GotoStmt>(F);
  LabelStmt *Label = findFirst<LabelStmt>(F);
  ASSERT_NE(Goto, nullptr);
  ASSERT_NE(Label, nullptr);
  const auto &Succs = G.node(G.idOf(Goto)).Succs;
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], G.idOf(Label));
}

TEST(CFGTest, BranchIntoLoopDetected) {
  auto R = compileToIL(R"(
    void f(int n) {
      if (n > 5) goto inside;
      while (n) {
        inside: n = n - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  auto *W = findFirst<WhileStmt>(F);
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(CFG::hasBranchIntoBlock(*F, W->getBody()));
}

TEST(CFGTest, NoBranchIntoLoopWhenInternal) {
  auto R = compileToIL(R"(
    void f(int n) {
      while (n) {
        if (n == 3) goto skip;
        n = n - 2;
        skip: n = n - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  auto *W = findFirst<WhileStmt>(F);
  ASSERT_NE(W, nullptr);
  EXPECT_FALSE(CFG::hasBranchIntoBlock(*F, W->getBody()));
}

TEST(UseDefTest, SingleReachingDef) {
  auto R = compileToIL("void f() { int x; int y; x = 1; y = x; }");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);

  // Find 'y = x': its use of x must be reached only by 'x = 1'.
  Symbol *X = F->findSymbol("x");
  AssignStmt *XDef = nullptr;
  AssignStmt *YAssign = nullptr;
  forEachStmt(F->getBody(), [&](Stmt *S) {
    if (auto *A = S->getKind() == Stmt::AssignKind
                      ? static_cast<AssignStmt *>(S)
                      : nullptr) {
      auto *LHS = static_cast<VarRefExpr *>(A->getLHS());
      if (LHS->getSymbol() == X)
        XDef = A;
      else
        YAssign = A;
    }
  });
  ASSERT_NE(XDef, nullptr);
  ASSERT_NE(YAssign, nullptr);
  const auto &Defs = UD.defsReaching(YAssign, X);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], XDef);
  EXPECT_TRUE(UD.isOnlyReachingDef(YAssign, X, XDef));
}

TEST(UseDefTest, TwoDefsThroughIf) {
  auto R = compileToIL(R"(
    void f(int a) {
      int x; int y;
      if (a) x = 1; else x = 2;
      y = x;
    }
  )");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  Symbol *X = F->findSymbol("x");
  Symbol *Y = F->findSymbol("y");
  AssignStmt *YAssign = nullptr;
  forEachStmt(F->getBody(), [&](Stmt *S) {
    if (S->getKind() != Stmt::AssignKind)
      return;
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getLHS()->getKind() == Expr::VarRefKind &&
        static_cast<VarRefExpr *>(A->getLHS())->getSymbol() == Y)
      YAssign = A;
  });
  ASSERT_NE(YAssign, nullptr);
  EXPECT_EQ(UD.defsReaching(YAssign, X).size(), 2u);
}

TEST(UseDefTest, ParamUseReachesEntry) {
  auto R = compileToIL("void f(int n) { int y; y = n; }");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  Symbol *N = F->findSymbol("n");
  AssignStmt *YAssign = findFirst<AssignStmt>(F);
  ASSERT_NE(YAssign, nullptr);
  const auto &Defs = UD.defsReaching(YAssign, N);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], nullptr); // entry value
}

TEST(UseDefTest, LoopCarriedDef) {
  auto R = compileToIL("void f(int n) { while (n) { n = n - 1; } }");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  Symbol *N = F->findSymbol("n");
  auto *W = findFirst<WhileStmt>(F);
  auto *Dec = findFirst<AssignStmt>(F);
  ASSERT_NE(W, nullptr);
  ASSERT_NE(Dec, nullptr);
  // The while condition sees both the entry value and the loop decrement.
  const auto &Defs = UD.defsReaching(W, N);
  EXPECT_EQ(Defs.size(), 2u);
  // The decrement's RHS use of n also sees both.
  EXPECT_EQ(UD.defsReaching(Dec, N).size(), 2u);
}

TEST(UseDefTest, CallClobbersGlobals) {
  auto R = compileToIL(R"(
    int g;
    void ext(void);
    void f() {
      int y;
      g = 1;
      ext();
      y = g;
    }
  )");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  Symbol *G = R->P->findGlobal("g");
  // Find y = g.
  AssignStmt *YAssign = nullptr;
  forEachStmt(F->getBody(), [&](Stmt *S) {
    if (S->getKind() != Stmt::AssignKind)
      return;
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getRHS()->getKind() == Expr::VarRefKind &&
        static_cast<VarRefExpr *>(A->getRHS())->getSymbol() == G)
      YAssign = A;
  });
  ASSERT_NE(YAssign, nullptr);
  // Both 'g = 1' and the call reach the use.
  EXPECT_EQ(UD.defsReaching(YAssign, G).size(), 2u);
}

TEST(UseDefTest, PointerStoreClobbersAddressTaken) {
  auto R = compileToIL(R"(
    void f(int *p) {
      int x; int y;
      x = 1;
      p = &x;
      *p = 2;
      y = x;
    }
  )");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  Symbol *X = F->findSymbol("x");
  Symbol *Y = F->findSymbol("y");
  AssignStmt *YAssign = nullptr;
  forEachStmt(F->getBody(), [&](Stmt *S) {
    if (S->getKind() != Stmt::AssignKind)
      return;
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getLHS()->getKind() == Expr::VarRefKind &&
        static_cast<VarRefExpr *>(A->getLHS())->getSymbol() == Y)
      YAssign = A;
  });
  ASSERT_NE(YAssign, nullptr);
  // x = 1 and the *p store both reach.
  EXPECT_EQ(UD.defsReaching(YAssign, X).size(), 2u);
}

TEST(UseDefTest, AddressTakenComputation) {
  auto R = compileToIL(R"(
    void f() {
      int x; int y; int *p;
      p = &x;
      y = x;
    }
  )");
  Function *F = R->P->findFunction("f");
  auto Taken = computeAddressTakenScalars(*F);
  EXPECT_EQ(Taken.size(), 1u);
  EXPECT_TRUE(Taken.count(F->findSymbol("x")));
}

TEST(UseDefTest, UsesOfReverseChains) {
  auto R = compileToIL("void f() { int x; int y; int z; x = 1; y = x; "
                       "z = x; }");
  Function *F = R->P->findFunction("f");
  UseDefChains UD(*F);
  AssignStmt *XDef = findFirst<AssignStmt>(F);
  ASSERT_NE(XDef, nullptr);
  auto Uses = UD.usesOf(XDef);
  EXPECT_EQ(Uses.size(), 2u);
}

TEST(LoopInfoTest, NestingDepths) {
  auto R = compileToIL(R"(
    void f(int n, int m) {
      int i; int j;
      for (i = 0; i < n; i++) {
        for (j = 0; j < m; j++) {
          n += 1;
        }
      }
      while (m) m--;
    }
  )");
  Function *F = R->P->findFunction("f");
  LoopInfo LI(*F);
  EXPECT_EQ(LI.loops().size(), 3u);
  EXPECT_EQ(LI.topLevel().size(), 2u);
  auto Inner = LI.innermost();
  EXPECT_EQ(Inner.size(), 2u);
  // One innermost loop has depth 2.
  bool HasDepth2 = false;
  for (auto *L : Inner)
    HasDepth2 |= L->Depth == 2;
  EXPECT_TRUE(HasDepth2);
}

TEST(CallGraphTest, DirectAndRecursive) {
  auto R = compileToIL(R"(
    int fact(int n) {
      if (n <= 1) return 1;
      return n * fact(n - 1);
    }
    int helper(int x) { return x + 1; }
    int top(int x) { return helper(fact(x)); }
  )");
  CallGraph CG(*R->P);
  EXPECT_TRUE(CG.isRecursive("fact"));
  EXPECT_FALSE(CG.isRecursive("helper"));
  EXPECT_FALSE(CG.isRecursive("top"));
  EXPECT_TRUE(CG.calleesOf("top").count("helper"));
  EXPECT_TRUE(CG.calleesOf("top").count("fact"));

  auto Order = CG.bottomUpOrder();
  // helper and fact come before top.
  auto Pos = [&](const std::string &N) {
    return std::find(Order.begin(), Order.end(), N) - Order.begin();
  };
  EXPECT_LT(Pos("helper"), Pos("top"));
  EXPECT_LT(Pos("fact"), Pos("top"));
}

} // namespace
