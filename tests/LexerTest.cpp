//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the C lexer: token kinds, literal decoding, operators,
/// comments, pragmas, and error recovery.
///
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace tcc;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  auto Tokens = lex("foo _bar baz_2 keyboard_status");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "baz_2");
  EXPECT_EQ(Tokens[3].Text, "keyboard_status");
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
}

TEST(LexerTest, Keywords) {
  auto Tokens = lex("void char int float double if else while do for return "
                    "break continue goto static extern volatile register");
  std::vector<TokenKind> Expected = {
      TokenKind::KwVoid,     TokenKind::KwChar,     TokenKind::KwInt,
      TokenKind::KwFloat,    TokenKind::KwDouble,   TokenKind::KwIf,
      TokenKind::KwElse,     TokenKind::KwWhile,    TokenKind::KwDo,
      TokenKind::KwFor,      TokenKind::KwReturn,   TokenKind::KwBreak,
      TokenKind::KwContinue, TokenKind::KwGoto,     TokenKind::KwStatic,
      TokenKind::KwExtern,   TokenKind::KwVolatile, TokenKind::KwRegister,
      TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lex("0 42 100 0x1f 017");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 100);
  EXPECT_EQ(Tokens[3].IntValue, 31);
  EXPECT_EQ(Tokens[4].IntValue, 15); // octal
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lex("1.0 0.5 2.5e3 1e-2 3.f 1.");
  EXPECT_DOUBLE_EQ(Tokens[0].FloatValue, 1.0);
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 0.5);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 2500.0);
  EXPECT_DOUBLE_EQ(Tokens[3].FloatValue, 0.01);
  EXPECT_DOUBLE_EQ(Tokens[4].FloatValue, 3.0);
  EXPECT_DOUBLE_EQ(Tokens[5].FloatValue, 1.0);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::FloatLiteral) << "token " << I;
}

TEST(LexerTest, IntSuffixesIgnored) {
  auto Tokens = lex("10L 10u 10UL");
  for (int I = 0; I < 3; ++I) {
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntLiteral);
    EXPECT_EQ(Tokens[I].IntValue, 10);
  }
}

TEST(LexerTest, CharLiterals) {
  auto Tokens = lex("'a' '\\n' '\\0'");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
}

TEST(LexerTest, OperatorsSingleAndMulti) {
  auto Tokens = lex("+ - * / % ++ -- += -= *= /= %= == != <= >= < > << >> "
                    "<<= >>= && || & | ^ ~ ! = ? : , ; ");
  std::vector<TokenKind> K = kinds(Tokens);
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,          TokenKind::Minus,
      TokenKind::Star,          TokenKind::Slash,
      TokenKind::Percent,       TokenKind::PlusPlus,
      TokenKind::MinusMinus,    TokenKind::PlusEqual,
      TokenKind::MinusEqual,    TokenKind::StarEqual,
      TokenKind::SlashEqual,    TokenKind::PercentEqual,
      TokenKind::EqualEqual,    TokenKind::BangEqual,
      TokenKind::LessEqual,     TokenKind::GreaterEqual,
      TokenKind::Less,          TokenKind::Greater,
      TokenKind::LessLess,      TokenKind::GreaterGreater,
      TokenKind::LessLessEqual, TokenKind::GreaterGreaterEqual,
      TokenKind::AmpAmp,        TokenKind::PipePipe,
      TokenKind::Amp,           TokenKind::Pipe,
      TokenKind::Caret,         TokenKind::Tilde,
      TokenKind::Bang,          TokenKind::Equal,
      TokenKind::Question,      TokenKind::Colon,
      TokenKind::Comma,         TokenKind::Semi};
  ASSERT_GE(K.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(K[I], Expected[I]) << "token " << I;
}

TEST(LexerTest, MaximalMunchPlusPlus) {
  // a+++b lexes as a ++ + b.
  auto Tokens = lex("a+++b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::PlusPlus, TokenKind::Plus,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(LexerTest, LineComments) {
  auto Tokens = lex("a // comment with * / tokens\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, BlockComments) {
  auto Tokens = lex("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  // Line numbers advance through comments.
  EXPECT_EQ(Tokens[1].Loc.Line, 3u);
}

TEST(LexerTest, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("a /* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, SourceLocations) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(LexerTest, PragmaToken) {
  auto Tokens = lex("#pragma safe\nwhile");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Pragma);
  EXPECT_EQ(Tokens[0].Text, "safe");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwWhile);
}

TEST(LexerTest, NonPragmaDirectivesSkipped) {
  auto Tokens = lex("#include <stdio.h>\nint x;");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
}

TEST(LexerTest, PragmaBodyTrimmed) {
  auto Tokens = lex("#pragma   fortran_pointers   \nint");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Pragma);
  EXPECT_EQ(Tokens[0].Text, "fortran_pointers");
}

TEST(LexerTest, StringLiteral) {
  auto Tokens = lex("\"hello\\nworld\"");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello\nworld");
}

TEST(LexerTest, UnknownCharacterDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("int @ x;", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PaperWhileLoopLexes) {
  // The paper's volatile example.
  auto Tokens = lex("keyboard_status = 0; while(!keyboard_status);");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Equal,   TokenKind::IntLiteral,
      TokenKind::Semi,       TokenKind::KwWhile, TokenKind::LParen,
      TokenKind::Bang,       TokenKind::Identifier, TokenKind::RParen,
      TokenKind::Semi,       TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

} // namespace
