
  float a[100], b[100], c[100];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0)
      return;
    if (alpha == 0)
      return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 1.0, 100);
    titan_toc();
  }
