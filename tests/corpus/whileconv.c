
  float src[4096], dst[4096];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; float *a; float *b; int n;
    for (i = 0; i < 4096; i++) src[i] = i;
    a = dst;
    b = src;
    n = 4096;
    titan_tic();
    while (n) {
      *a++ = *b++;
      n--;
    }
    titan_toc();
  }
