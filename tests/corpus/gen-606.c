/* tcc-fuzz seed=606 */
float fa0[128];
float fa1[64];
float fa2[256];
int ia0[64];
float m0[8][8];
float gf0;
float gf1;
int gi0;
int gi1;
float leaf0(float x, float y) {
  if (x > y)
    return ((((236 != 19) & 1) ? -7.75 : x) + (1.25 + 2.00));
  return (5.50 * 0.50);
}
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 16;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 128; i++) {
    fa0[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa1[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 256; i++) {
    fa2[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    ia0[i] = (i * 2) & 255;
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = (i - j) * 0.25;
    }
  }
  for (i = 0; i < 128; i++) {
    fa0[i] = leaf0(fa2[i], 2.25);
  }
  p = &fa1[0];
  q = &fa1[4];
  n = 60;
  while (n) {
    *p++ = *q++ + -2.00;
    n--;
  }
  p = &fa2[0];
  q = &fa2[3];
  n = 253;
  while (n) {
    *p++ = *q++ + -0.75;
    n--;
  }
  t = 0;
  for (i = 0; i < 64; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[126];
}
