/* tcc-fuzz seed=7 */
float fa0[64];
float fa1[64];
float fa2[64];
int ia0[128];
float gf0;
float gf1;
int gi0;
int gi1;
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 1;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 64; i++) {
    fa0[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa1[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa2[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 128; i++) {
    ia0[i] = (i * 7) & 255;
  }
  for (i = 0; i < 64; i++) {
    if (((130 + ia0[i]) & 255) & 1) {
      fa1[i] = (-(((((gi1 & 1) ? i : gi0) & 1) ? fa0[i] : fa0[((ia0[((i * 5) & 127)]) & 63)])));
    }
  }
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 4095;
  }
  gi0 = t;
  acc = 0.00;
  for (i = 0; i < 64; i++) {
    acc = acc + fa1[i];
  }
  gf1 = acc;
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[62];
}
