
  float a[1024], b[1024], c[1024];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i;
    for (i = 0; i < 1024; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    for (i = 0; i < 1024; i++)
      a[i] = b[i] + c[i];
    titan_toc();
  }
