void main() {
  int i; int j; int n; int t;
  for (i = 0; i < 0; i++) {
    if ((0 % 0) & 0) {
    }
  }
  for (i = 0; i < 1; i++) {
  }
}
