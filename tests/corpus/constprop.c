
  float a[2048], b[2048], c[2048];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    titan_tic();
    daxpy(a, b, c, 0.0, 2048);
    titan_toc();
  }
