/* tcc-fuzz seed=99 */
float fa0[64];
float fa1[128];
float fa2[256];
int ia0[128];
float m0[8][8];
float gf0;
float gf1;
int gi0;
int gi1;
int ileaf0(int a, int b) {
  return ((((44 - 31) & 1023) << 4) & 255);
}
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 19;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 64; i++) {
    fa0[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 128; i++) {
    fa1[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 256; i++) {
    fa2[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 128; i++) {
    ia0[i] = (i * 5) & 1023;
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = (i - j) * 0.25;
    }
  }
  for (i = 0; i < 128; i++) {
    if (ia0[i] & 1) {
      continue;
    }
    if (i > 40) {
      break;
    }
    ia0[i] = ((208 <= 21) & ((gi0 * 188) & 1023));
  }
  for (i = 0; i < 128; i++) {
    if (ia0[i] & 2) {
      continue;
    }
    if (i > 71) {
      break;
    }
    ia0[i] = ileaf0((((gi1 + ia0[i]) & 255) & 65535), ((gi0 & gi0) & 65535));
  }
  if ((30 > 18) > 3 && (22 >> 1) != 0) {
    gi1 = ((15 & 1) ? ((ia0[98] & 1) ? gi1 : gi1) : ((15 * gi1) & 255));
  } else {
    gi1 = ((16 < 3) ^ ((ia0[83] * ia0[110]) & 255));
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = m0[j][i] + (fa1[(i & 127)] - gf1);
    }
  }
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[62];
}
