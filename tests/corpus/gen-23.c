/* tcc-fuzz seed=23 */
float fa0[128];
float fa1[64];
int ia0[64];
int ia1[64];
float m0[8][8];
float gf0;
float gf1;
int gi0;
int gi1;
float leaf0(float x, float y) {
  if (x > y)
    return ((y - 6.25) / 4.00);
  return (((5 != 52) & 1) ? 3.25 : -3.50);
}
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 30;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 128; i++) {
    fa0[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa1[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    ia0[i] = (i * 6) & 4095;
  }
  for (i = 0; i < 64; i++) {
    ia1[i] = (i * 4) & 1023;
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = (i - j) * 0.25;
    }
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = m0[j][i] + (-2.00 - gf1);
    }
  }
  for (i = 0; i < 64; i++) {
    if (ia1[i] & 1) {
      continue;
    }
    if (i > 62) {
      break;
    }
    ia1[i] = ((gi1 | 119) != ((gi0 - 140) & 65535));
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = m0[j][i] + ((((ia0[(j & 63)] << 3) & 255) & 1) ? 4.00 : 4.00);
    }
  }
  p = fa1;
  q = fa0;
  n = 64;
  while (n) {
    *p++ = *q++ + 0.50;
    n--;
  }
  if (((4 << 3) & 1023) > 3 || (gi1 && 27) != 0) {
    gi0 = (((gi0 & 1) ? 3 : ia1[7]) & ((40 + gi0) & 255));
  } else {
    gi0 = (((235 * 30) & 255) ^ ((24 * 133) & 65535));
  }
  t = 0;
  for (i = 0; i < 64; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  t = t;
  for (i = 0; i < 64; i++) {
    t = (t + ia1[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[126];
}
