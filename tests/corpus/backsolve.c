
  float x[4002], y[4000], z[4000];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; int n;
    float *p; float *q;
    n = 4000;
    x[0] = 1.0;
    for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
    p = &x[1];
    q = &x[0];
    titan_tic();
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
    titan_toc();
    out = x[7];
  }
