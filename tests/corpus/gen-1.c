/* tcc-fuzz seed=1 */
float fa0[128];
float fa1[64];
float fa2[256];
int ia0[64];
int ia1[128];
float m0[8][8];
float gf0;
float gf1;
int gi0;
int gi1;
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 22;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 128; i++) {
    fa0[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa1[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 256; i++) {
    fa2[i] = (i & 15) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    ia0[i] = (i * 7) & 255;
  }
  for (i = 0; i < 128; i++) {
    ia1[i] = (i * 5) & 65535;
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = (i - j) * 0.25;
    }
  }
  for (i = 0; i < 64; i++) {
    ia0[i] = (((gi0 << 4) & 1023) == (i | 186));
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      m0[i][j] = m0[j][i] + (-(fa2[((i * 4) & 255)]));
    }
  }
  for (i = 0; i < 13; i++) {
    fa0[i] = ((6.50 + fa2[((i * 4) & 255)]) * (-(6.50)));
  }
  t = 0;
  for (i = 0; i < 64; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  t = t;
  for (i = 0; i < 128; i++) {
    t = (t + ia1[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[126];
}
