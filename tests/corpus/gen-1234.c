/* tcc-fuzz seed=1234 */
float fa0[256];
float fa1[128];
float fa2[64];
int ia0[128];
int ia1[64];
float gf0;
float gf1;
int gi0;
int gi1;
void main() {
  int i; int j; int n; int t;
  float acc;
  float *p; float *q;
  t = 3;
  acc = 0.00;
  n = 0;
  j = 0;
  for (i = 0; i < 256; i++) {
    fa0[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 128; i++) {
    fa1[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 64; i++) {
    fa2[i] = (i & 31) * 0.25;
  }
  for (i = 0; i < 128; i++) {
    ia0[i] = (i * 6) & 4095;
  }
  for (i = 0; i < 64; i++) {
    ia1[i] = (i * 4) & 4095;
  }
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 4095;
  }
  gi0 = t;
  for (i = 0; i < 128; i++) {
    ia0[i] = (((209 / ((i & 7) + 1)) << 2) & 65535);
  }
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 1023;
  }
  gi1 = t;
  t = 0;
  for (i = 0; i < 128; i++) {
    t = (t + ia0[i]) & 16777215;
  }
  t = t;
  for (i = 0; i < 64; i++) {
    t = (t + ia1[i]) & 16777215;
  }
  gi1 = t;
  gf1 = fa0[1] + fa0[254];
}
