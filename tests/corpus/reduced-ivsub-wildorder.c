float fa0[0];
int ia1[1];
float leaf1(float x, float y) {
    return ((0.00 + -0.25) * (0.25 * 0.25));
  return (0.00 * x);
}
void main() {
  int i; int j; int n; int t;
  for (i = 0; i < 1; i++) {
    fa0[i] = leaf1(fa0[i], 0.00);
  }
}
