
  float a[4096], b[4096], c[4096];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 2.0, 4096);
    titan_toc();
  }
