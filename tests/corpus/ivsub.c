
  float arr0[512]; float arr1[512]; float arr2[512]; float arr3[512];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    float *p0; float *p1; float *p2; float *p3;
    int n;
    p0 = arr0;
    p1 = arr1;
    p2 = arr2;
    p3 = arr3;
    n = 512;
    titan_tic();
    while (n) {
      *p0++ = 1.0;
      *p1++ = 2.0;
      *p2++ = 3.0;
      *p3++ = 4.0;
      n--;
    }
    titan_toc();
  }
