//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the scalar optimization pipeline: constant folding,
/// while→DO conversion (Section 5.2), induction-variable substitution
/// with blocking/backtracking (Section 5.3), constant propagation with
/// the unreachable-code heuristic (Section 8), and dead-code
/// elimination — including the paper's worked examples.
///
//===----------------------------------------------------------------------===//

#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/Fold.h"
#include "scalar/InductionVarSub.h"
#include "scalar/LinearValues.h"
#include "scalar/WhileToDo.h"

#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

DoLoopStmt *findDoLoop(Function *F) {
  DoLoopStmt *Found = nullptr;
  forEachStmt(F->getBody(), [&Found](Stmt *S) {
    if (!Found && S->getKind() == Stmt::DoLoopKind)
      Found = static_cast<DoLoopStmt *>(S);
  });
  return Found;
}

WhileStmt *findWhile(Function *F) {
  WhileStmt *Found = nullptr;
  forEachStmt(F->getBody(), [&Found](Stmt *S) {
    if (!Found && S->getKind() == Stmt::WhileKind)
      Found = static_cast<WhileStmt *>(S);
  });
  return Found;
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(FoldTest, IntegerArithmetic) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  const Type *IntTy = P.getTypes().getIntType();
  auto *E = F->makeBinary(OpCode::Add, F->makeIntConst(IntTy, 2),
                          F->makeBinary(OpCode::Mul, F->makeIntConst(IntTy, 3),
                                        F->makeIntConst(IntTy, 4), IntTy),
                          IntTy);
  Expr *Folded = foldExpr(*F, E);
  ASSERT_EQ(Folded->getKind(), Expr::ConstIntKind);
  EXPECT_EQ(static_cast<ConstIntExpr *>(Folded)->getValue(), 14);
}

TEST(FoldTest, Comparisons) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  const Type *IntTy = P.getTypes().getIntType();
  auto *E = F->makeBinary(OpCode::Le, F->makeIntConst(IntTy, 100),
                          F->makeIntConst(IntTy, 0), IntTy);
  Expr *Folded = foldExpr(*F, E);
  ASSERT_EQ(Folded->getKind(), Expr::ConstIntKind);
  EXPECT_EQ(static_cast<ConstIntExpr *>(Folded)->getValue(), 0);
}

TEST(FoldTest, FloatEqualityGuard) {
  // The daxpy guard: 1.0 == 0.0 folds to 0.
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  const Type *FloatTy = P.getTypes().getFloatType();
  const Type *IntTy = P.getTypes().getIntType();
  auto *E = F->makeBinary(OpCode::Eq, F->makeFloatConst(FloatTy, 1.0),
                          F->makeFloatConst(FloatTy, 0.0), IntTy);
  Expr *Folded = foldExpr(*F, E);
  ASSERT_EQ(Folded->getKind(), Expr::ConstIntKind);
  EXPECT_EQ(static_cast<ConstIntExpr *>(Folded)->getValue(), 0);
}

TEST(FoldTest, Identities) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  const Type *IntTy = P.getTypes().getIntType();
  const Type *FloatTy = P.getTypes().getFloatType();
  Symbol *X = F->createSymbol("x", IntTy, StorageKind::Local);
  Symbol *Y = F->createSymbol("y", FloatTy, StorageKind::Local);

  // x + 0 => x
  EXPECT_EQ(foldExpr(*F, F->makeBinary(OpCode::Add, F->makeVarRef(X),
                                       F->makeIntConst(IntTy, 0), IntTy))
                ->getKind(),
            Expr::VarRefKind);
  // 1.0 * y => y
  EXPECT_EQ(foldExpr(*F, F->makeBinary(OpCode::Mul,
                                       F->makeFloatConst(FloatTy, 1.0),
                                       F->makeVarRef(Y), FloatTy))
                ->getKind(),
            Expr::VarRefKind);
  // x / 1 => x
  EXPECT_EQ(foldExpr(*F, F->makeBinary(OpCode::Div, F->makeVarRef(X),
                                       F->makeIntConst(IntTy, 1), IntTy))
                ->getKind(),
            Expr::VarRefKind);
  // min(3, 7) => 3
  Expr *M = foldExpr(*F, F->makeBinary(OpCode::Min, F->makeIntConst(IntTy, 3),
                                       F->makeIntConst(IntTy, 7), IntTy));
  ASSERT_EQ(M->getKind(), Expr::ConstIntKind);
  EXPECT_EQ(static_cast<ConstIntExpr *>(M)->getValue(), 3);
}

TEST(FoldTest, CastFolding) {
  Program P;
  Function *F = P.createFunction("f", P.getTypes().getVoidType());
  const Type *FloatTy = P.getTypes().getFloatType();
  auto *E = F->create<CastExpr>(FloatTy,
                                F->makeIntConst(P.getTypes().getIntType(), 3));
  Expr *Folded = foldExpr(*F, E);
  ASSERT_EQ(Folded->getKind(), Expr::ConstFloatKind);
  EXPECT_DOUBLE_EQ(static_cast<ConstFloatExpr *>(Folded)->getValue(), 3.0);
}

//===----------------------------------------------------------------------===//
// Linear symbolic evaluation
//===----------------------------------------------------------------------===//

TEST(LinearValuesTest, DetectsPointerBumpChain) {
  // The paper's lowered *a++ chain: temp_1 = a; a = temp_1 + 4.
  auto R = compileToIL(R"(
    void f(float *a, int n) {
      while (n) {
        *a++ = 0.0;
        n--;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileStmt *W = findWhile(F);
  ASSERT_NE(W, nullptr);
  BodyLinearState BLS(*F, W->getBody());
  EXPECT_FALSE(BLS.hasIrregularFlow());

  Symbol *A = F->findSymbol("a");
  Symbol *N = F->findSymbol("n");
  LinExpr DA = BLS.deltaOf(A);
  ASSERT_TRUE(DA.Known);
  EXPECT_TRUE(DA.isConstant());
  EXPECT_EQ(DA.C0, 4);
  LinExpr DN = BLS.deltaOf(N);
  ASSERT_TRUE(DN.Known);
  EXPECT_EQ(DN.C0, -1);
}

TEST(LinearValuesTest, SymbolicStep) {
  // The paper's while(i) { ... i = temp - s; } example: delta is -s.
  auto R = compileToIL(R"(
    void f(int n, int s) {
      int i; int temp;
      i = n;
      while (i) {
        temp = i;
        i = temp - s;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileStmt *W = findWhile(F);
  ASSERT_NE(W, nullptr);
  BodyLinearState BLS(*F, W->getBody());
  Symbol *I = F->findSymbol("i");
  Symbol *S = F->findSymbol("s");
  LinExpr DI = BLS.deltaOf(I);
  ASSERT_TRUE(DI.Known);
  EXPECT_FALSE(DI.isConstant());
  EXPECT_EQ(DI.coeffOfEntry(S), -1);
}

TEST(LinearValuesTest, ConditionalDefMakesUnknown) {
  auto R = compileToIL(R"(
    void f(int n, int c) {
      while (n) {
        if (c) n = n - 2;
        n = n - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileStmt *W = findWhile(F);
  BodyLinearState BLS(*F, W->getBody());
  EXPECT_FALSE(BLS.deltaOf(F->findSymbol("n")).Known);
}

TEST(LinearValuesTest, VolatileIsUnknown) {
  auto R = compileToIL(R"(
    volatile int v;
    void f(int n) {
      while (n) { n = n - v; }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileStmt *W = findWhile(F);
  BodyLinearState BLS(*F, W->getBody());
  EXPECT_FALSE(BLS.deltaOf(F->findSymbol("n")).Known);
}

//===----------------------------------------------------------------------===//
// While → DO conversion
//===----------------------------------------------------------------------===//

TEST(WhileToDoTest, ConvertsForLoopForm) {
  auto R = compileToIL(R"(
    float a[100];
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = 0.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileToDoStats Stats = convertWhileLoops(*F);
  EXPECT_EQ(Stats.Converted, 1u);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  // After propagating i's initial value into the bound, the loop is the
  // normalized `do temp_i = 0, n-1, 1`.
  propagateConstants(*F);
  std::string Printed = printStmt(D);
  EXPECT_NE(Printed.find("= 0, n - 1, 1 {"), std::string::npos) << Printed;
}

TEST(WhileToDoTest, ConvertsPaperCountdown) {
  // for(;n;n--) — the daxpy loop form.
  auto R = compileToIL(R"(
    void f(float *x, int n) {
      for (; n; n--)
        *x++ = 0.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileToDoStats Stats = convertWhileLoops(*F);
  EXPECT_EQ(Stats.Converted, 1u);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  std::string Printed = printStmt(D);
  EXPECT_NE(Printed.find("= 0, n - 1, 1 {"), std::string::npos) << Printed;
}

TEST(WhileToDoTest, ConvertsSymbolicStride) {
  // while(i) { temp=i; i=temp-s; }: DO with trip i/s (the paper's
  // DO dummy = n, 1, -s, normalized).
  auto R = compileToIL(R"(
    void f(int n, int s) {
      int i; int temp;
      i = n;
      while (i) {
        temp = i;
        i = temp - s;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileToDoStats Stats = convertWhileLoops(*F);
  EXPECT_EQ(Stats.Converted, 1u);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  std::string Printed = printExpr(D->getLimit());
  EXPECT_NE(Printed.find("i / s"), std::string::npos) << Printed;
}

TEST(WhileToDoTest, VolatileConditionNotConverted) {
  // The paper's keyboard_status loop must stay a while loop.
  auto R = compileToIL(R"(
    volatile int keyboard_status;
    void f() {
      while (!keyboard_status) { }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileToDoStats Stats = convertWhileLoops(*F);
  EXPECT_EQ(Stats.Converted, 0u);
  EXPECT_NE(findWhile(F), nullptr);
}

TEST(WhileToDoTest, BranchIntoLoopNotConverted) {
  auto R = compileToIL(R"(
    void f(int n) {
      if (n > 5) goto inside;
      while (n) {
        inside: n = n - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  WhileToDoStats Stats = convertWhileLoops(*F);
  EXPECT_EQ(Stats.Converted, 0u);
}

TEST(WhileToDoTest, VaryingBoundNotConverted) {
  auto R = compileToIL(R"(
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        n = n - 1;
    }
  )");
  Function *F = R->P->findFunction("f");
  EXPECT_EQ(convertWhileLoops(*F).Converted, 0u);
}

TEST(WhileToDoTest, EarlyExitNotConverted) {
  auto R = compileToIL(R"(
    void f(int n) {
      int i;
      for (i = 0; i < n; i++) {
        if (i == 3) break;
        n = n + 0;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  EXPECT_EQ(convertWhileLoops(*F).Converted, 0u);
}

TEST(WhileToDoTest, ConditionalUpdateNotConverted) {
  auto R = compileToIL(R"(
    void f(int n, int c) {
      while (n) {
        if (c) n = n - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  EXPECT_EQ(convertWhileLoops(*F).Converted, 0u);
}

TEST(WhileToDoTest, GreaterThanCountdown) {
  auto R = compileToIL(R"(
    float a[100];
    void f(int n) {
      int i;
      for (i = n; i > 0; i--)
        a[i] = 0.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  EXPECT_EQ(convertWhileLoops(*F).Converted, 1u);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  // trip-1 = (i-1-0)/1 = i - 1 evaluated at entry (i = n).
  std::string Printed = printExpr(D->getLimit());
  EXPECT_NE(Printed.find("i - 1"), std::string::npos) << Printed;
}

TEST(WhileToDoTest, IncrementalChainPatch) {
  auto R = compileToIL(R"(
    float a[100];
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = 0.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  analysis::UseDefChains UD(*F);
  WhileStmt *W = findWhile(F);
  ASSERT_NE(W, nullptr);
  convertWhileLoops(*F, &UD);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  // The DO header's use of n transfers from the while condition.
  Symbol *N = F->findSymbol("n");
  const auto &Defs = UD.defsReaching(D, N);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], nullptr); // entry def (parameter)
  // Index var def registered.
  EXPECT_TRUE(UD.isOnlyReachingDef(D, D->getIndexVar(), D));
}

//===----------------------------------------------------------------------===//
// Induction-variable substitution
//===----------------------------------------------------------------------===//

TEST(IVSubTest, PaperCopyLoop) {
  // while(n){*a++ = *b++; n--;} → after conversion + IV substitution the
  // star assignment must reference *(a + 4*i) / *(b + 4*i).
  auto R = compileToIL(R"(
    void copy(float *a, float *b, int n) {
      while (n) {
        *a++ = *b++;
        n--;
      }
    }
  )");
  Function *F = R->P->findFunction("copy");
  convertWhileLoops(*F);
  IVSubStats Stats = substituteInductionVariables(*F);
  EXPECT_GE(Stats.FamilyMembers, 3u); // a, b, n
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  std::string Printed = printStmt(D);
  EXPECT_NE(Printed.find("*(a + 4 * temp_i"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("*(b + 4 * temp_i"), std::string::npos) << Printed;
  // The pointer updates are gone from the body.
  EXPECT_EQ(Printed.find("a = "), std::string::npos) << Printed;
}

TEST(IVSubTest, BacktrackingObserved) {
  // The temp chain forces blocking: temp_1 = a is blocked by a = temp_1+4
  // until the update is substituted (deleted), then re-examined.
  auto R = compileToIL(R"(
    void copy(float *a, float *b, int n) {
      while (n) {
        *a++ = *b++;
        n--;
      }
    }
  )");
  Function *F = R->P->findFunction("copy");
  convertWhileLoops(*F);
  IVSubStats Stats = substituteInductionVariables(*F);
  EXPECT_GT(Stats.Blocked, 0u);
  EXPECT_GT(Stats.Backtracks, 0u);
}

TEST(IVSubTest, NoBacktrackingStillConverges) {
  auto R = compileToIL(R"(
    void copy(float *a, float *b, int n) {
      while (n) {
        *a++ = *b++;
        n--;
      }
    }
  )");
  Function *F = R->P->findFunction("copy");
  convertWhileLoops(*F);
  IVSubOptions Opts;
  Opts.EnableBacktracking = false;
  IVSubStats Stats = substituteInductionVariables(*F, Opts);
  EXPECT_EQ(Stats.Backtracks, 0u);
  DoLoopStmt *D = findDoLoop(F);
  std::string Printed = printStmt(D);
  EXPECT_NE(Printed.find("*(a + 4 * temp_i"), std::string::npos) << Printed;
  // Without backtracking more passes are needed.
  EXPECT_GE(Stats.Passes, 2u);
}

TEST(IVSubTest, FinalValuesPlacedAfterLoop) {
  auto R = compileToIL(R"(
    float out;
    void f(float *a, int n) {
      for (; n; n--)
        *a++ = 1.0;
      out = *a;
    }
  )");
  Function *F = R->P->findFunction("f");
  convertWhileLoops(*F);
  substituteInductionVariables(*F);
  std::string Printed = printFunction(*F);
  // a's final value (a = a + 4*trip) appears after the loop, so the
  // trailing *a reads the right element.
  EXPECT_NE(Printed.find("a = a + 4 *"), std::string::npos) << Printed;
}

TEST(IVSubTest, PaperBackwardLoop) {
  // Section 5.3's Fortran example, in C: IV = N; for(I=1;I<=N;I++) {
  // A[IV] = A[IV] + B[I]; IV = IV - 1; }
  auto R = compileToIL(R"(
    float a[128]; float b[128];
    void f(int n) {
      int iv; int i;
      iv = n;
      for (i = 1; i <= n; i++) {
        a[iv] = a[iv] + b[i];
        iv = iv - 1;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  convertWhileLoops(*F);
  substituteInductionVariables(*F);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  std::string Printed = printStmt(D);
  // The iv subscript became explicit in the loop index (iv - temp_i with
  // iv's entry value), and iv's update left the body.
  EXPECT_EQ(Printed.find("iv = "), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("iv"), std::string::npos) << Printed;
}

TEST(IVSubTest, MultipleUpdatesPerIteration) {
  auto R = compileToIL(R"(
    void f(float *a, int n) {
      for (; n; n--) {
        *a++ = 1.0;
        *a++ = 2.0;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  convertWhileLoops(*F);
  IVSubStats Stats = substituteInductionVariables(*F);
  EXPECT_GE(Stats.FamilyMembers, 1u);
  DoLoopStmt *D = findDoLoop(F);
  std::string Printed = printStmt(D);
  // a advances 8 bytes per trip; the second store is at offset +4.
  EXPECT_NE(Printed.find("8 * temp_i"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("+ 4"), std::string::npos) << Printed;
}

TEST(IVSubTest, VolatilePointerNotSubstituted) {
  auto R = compileToIL(R"(
    void f(float * volatile p, int n) {
      for (; n; n--)
        *p = 0.0;
    }
  )");
  // `* volatile p` parses as volatile pointer: skip if parse differs; the
  // point is a volatile IV must not join the family.
  Function *F = R->P->findFunction("f");
  convertWhileLoops(*F);
  substituteInductionVariables(*F);
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Constant propagation + unreachable code
//===----------------------------------------------------------------------===//

TEST(ConstPropTest, SimplePropagation) {
  auto R = compileToIL(R"(
    int g;
    void f() {
      int x; int y;
      x = 5;
      y = x + 2;
      g = y;
    }
  )");
  Function *F = R->P->findFunction("f");
  propagateConstants(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = 7;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, GuardEliminationDaxpyStyle) {
  // The inlined daxpy guards: if (in_n <= 0) and if (in_alpha == 0.0)
  // fold away once the constants propagate.
  auto R = compileToIL(R"(
    int g;
    void f() {
      int n; float alpha;
      n = 100;
      alpha = 1.0;
      if (n <= 0) goto out;
      if (alpha == 0.0) goto out;
      g = 1;
      out: ;
    }
  )");
  Function *F = R->P->findFunction("f");
  ConstPropStats Stats = propagateConstants(*F);
  EXPECT_EQ(Stats.BranchesFolded, 2u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find("if ("), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("g = 1;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, UnreachableHeuristicExposesConstants) {
  // x's second definition sits in an unreachable branch; deleting it
  // leaves a single constant def, which the heuristic re-queues, folding
  // the second guard too.
  auto R = compileToIL(R"(
    int g;
    void f() {
      int x; int flag;
      flag = 0;
      x = 3;
      if (flag) {
        x = 99;
      }
      if (x == 3) {
        g = 10;
      } else {
        g = 20;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  ConstPropStats Stats = propagateConstants(*F);
  EXPECT_GE(Stats.BranchesFolded, 2u);
  EXPECT_GT(Stats.Requeues, 0u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = 10;"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("g = 20;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, HeuristicDisabledMissesSecondRound) {
  auto R = compileToIL(R"(
    int g;
    void f() {
      int x; int flag;
      flag = 0;
      x = 3;
      if (flag) {
        x = 99;
      }
      if (x == 3) {
        g = 10;
      } else {
        g = 20;
      }
    }
  )");
  Function *F = R->P->findFunction("f");
  ConstPropOptions Opts;
  Opts.EnableUnreachableHeuristic = false;
  ConstPropStats Stats = propagateConstants(*F, Opts);
  // Only the first branch folds in one run.
  EXPECT_EQ(Stats.BranchesFolded, 1u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = 20;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, AddressConstantsPropagate) {
  auto R = compileToIL(R"(
    float a[100];
    void f(int i) {
      float *p;
      p = a;
      *(p + i) = 1.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  propagateConstants(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("*(&a + "), std::string::npos) << Printed;
}

TEST(ConstPropTest, VolatileNotPropagated) {
  auto R = compileToIL(R"(
    volatile int v;
    int g;
    void f() {
      v = 5;
      g = v;
    }
  )");
  Function *F = R->P->findFunction("f");
  propagateConstants(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = v;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, DifferentDefsNotMerged) {
  auto R = compileToIL(R"(
    int g;
    void f(int c) {
      int x;
      if (c) x = 1; else x = 2;
      g = x;
    }
  )");
  Function *F = R->P->findFunction("f");
  propagateConstants(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = x;"), std::string::npos) << Printed;
}

TEST(ConstPropTest, ZeroTripDoLoopDeleted) {
  auto R = compileToIL(R"(
    float a[100];
    void f() {
      int i; int n;
      n = 0;
      for (i = 0; i < n; i++)
        a[i] = 1.0;
    }
  )");
  Function *F = R->P->findFunction("f");
  convertWhileLoops(*F);
  ConstPropStats Stats = propagateConstants(*F);
  EXPECT_EQ(Stats.LoopsDeleted, 1u);
  EXPECT_EQ(findDoLoop(F), nullptr);
}

TEST(ConstPropTest, AlwaysTakenPostpass) {
  auto R = compileToIL(R"(
    int g;
    void f() {
      goto out;
      g = 1;
      g = 2;
      out: ;
    }
  )");
  Function *F = R->P->findFunction("f");
  ConstPropStats Stats = propagateConstants(*F);
  EXPECT_EQ(Stats.PostpassRemoved, 2u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find("g = 1;"), std::string::npos) << Printed;
}

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

TEST(DCETest, RemovesDeadTempChain) {
  auto R = compileToIL(R"(
    int g;
    void f(int n) {
      int a; int b; int c;
      a = n + 1;
      b = a * 2;
      c = b - 3;
      g = n;
    }
  )");
  Function *F = R->P->findFunction("f");
  DCEStats Stats = eliminateDeadCode(*F);
  EXPECT_EQ(Stats.AssignsRemoved, 3u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("g = n;"), std::string::npos);
  EXPECT_EQ(Printed.find("a ="), std::string::npos) << Printed;
}

TEST(DCETest, KeepsStoresAndCalls) {
  auto R = compileToIL(R"(
    void ext(int x);
    void f(float *p) {
      *p = 1.0;
      ext(3);
    }
  )");
  Function *F = R->P->findFunction("f");
  eliminateDeadCode(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("*p = "), std::string::npos);
  EXPECT_NE(Printed.find("ext(3);"), std::string::npos);
}

TEST(DCETest, KeepsVolatileSpinLoop) {
  // while(!keyboard_status); must survive (paper Section 1).
  auto R = compileToIL(R"(
    volatile int keyboard_status;
    void f() {
      keyboard_status = 0;
      while (!keyboard_status) { }
    }
  )");
  Function *F = R->P->findFunction("f");
  eliminateDeadCode(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("while (!keyboard_status)"), std::string::npos)
      << Printed;
  EXPECT_NE(Printed.find("keyboard_status = 0;"), std::string::npos);
}

TEST(DCETest, RemovesIVResidue) {
  // After conversion + IV substitution the temp chains and final value
  // assignments are dead in this function and must vanish.
  auto R = compileToIL(R"(
    void copy(float *a, float *b, int n) {
      while (n) {
        *a++ = *b++;
        n--;
      }
    }
  )");
  Function *F = R->P->findFunction("copy");
  convertWhileLoops(*F);
  substituteInductionVariables(*F);
  eliminateDeadCode(*F);
  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr);
  // Body is the single vector-copy star assignment.
  EXPECT_EQ(D->getBody().size(), 1u) << printStmt(D);
  std::string Printed = printFunction(*F);
  // Final-value updates of a/b/n after the loop are dead too.
  EXPECT_EQ(Printed.find("a = a +"), std::string::npos) << Printed;
}

TEST(DCETest, LiveThroughLoopKept) {
  auto R = compileToIL(R"(
    int g;
    void f(int n) {
      int s;
      s = 0;
      while (n) {
        s = s + n;
        n = n - 1;
      }
      g = s;
    }
  )");
  Function *F = R->P->findFunction("f");
  eliminateDeadCode(*F);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("s = s + n;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("g = s;"), std::string::npos);
}

TEST(DCETest, UnusedLabelRemoved) {
  auto R = compileToIL(R"(
    int g;
    void f() {
      g = 1;
      unused: g = 2;
    }
  )");
  Function *F = R->P->findFunction("f");
  DCEStats Stats = eliminateDeadCode(*F);
  EXPECT_EQ(Stats.LabelsRemoved, 1u);
}

//===----------------------------------------------------------------------===//
// Full scalar pipeline on the paper's Section 9 example
//===----------------------------------------------------------------------===//

TEST(ScalarPipelineTest, DaxpyHandInlinedReachesPaperForm) {
  // The hand-inlined daxpy from Section 9 (the inliner reproduces this
  // mechanically; here the scalar pipeline is validated in isolation).
  auto R = compileToIL(R"(
    float a[100]; float b[100]; float c[100];
    void main() {
      float *in_x; float *in_y; float *in_z; float in_alpha;
      float *in_2; float *in_3; float *in_4;
      int in_n; int in_1;
      in_x = a;
      in_y = b;
      in_z = c;
      in_alpha = 1.0;
      in_n = 100;
      if (in_n <= 0) goto lb_1;
      if (in_alpha == 0.0) goto lb_1;
      while (in_n) {
        in_2 = in_x;
        in_x = in_2 + 1;
        in_3 = in_y;
        in_y = in_3 + 1;
        in_4 = in_z;
        in_z = in_4 + 1;
        *in_2 = *in_3 + in_alpha * *in_4;
        in_1 = in_n;
        in_n = in_1 - 1;
      }
      lb_1: ;
    }
  )");
  Function *F = R->P->findFunction("main");
  convertWhileLoops(*F);
  substituteInductionVariables(*F);
  propagateConstants(*F);
  eliminateDeadCode(*F);

  DoLoopStmt *D = findDoLoop(F);
  ASSERT_NE(D, nullptr) << printFunction(*F);
  std::string Printed = printFunction(*F);
  // Guards folded away.
  EXPECT_EQ(Printed.find("if ("), std::string::npos) << Printed;
  // The loop runs 0..99 and the body is the single element-wise add on
  // the arrays' address constants (paper's final listing).
  EXPECT_NE(Printed.find("= 0, 99, 1 {"), std::string::npos) << Printed;
  EXPECT_EQ(D->getBody().size(), 1u) << Printed;
  EXPECT_NE(Printed.find("*(&a + 4 * temp_i"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("*(&b + 4 * temp_i"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("*(&c + 4 * temp_i"), std::string::npos) << Printed;
  // alpha's 1.0 multiply folded away entirely.
  EXPECT_EQ(Printed.find("in_alpha"), std::string::npos) << Printed;
}

} // namespace
