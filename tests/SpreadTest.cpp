//===----------------------------------------------------------------------===//
///
/// \file
/// The spread pass and its call-safety analysis: summary construction,
/// legality and profitability rejections (with missedParallel remarks),
/// reduction handling, hardened -P parsing, and the differential bar —
/// every corpus program and every kernel of both suites must produce
/// word-identical named-global memory at P=1 and P=4.  `do parallel`
/// marks change the timing model, never what the program computes.
///
//===----------------------------------------------------------------------===//

#include "ablate/Kernels.h"
#include "driver/Compiler.h"
#include "driver/ToolMain.h"
#include "parallel/CallSafety.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace tcc;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Compiles without running; the caller inspects IL / stats / remarks.
std::unique_ptr<driver::CompileResult>
compileWith(const std::string &Source, const driver::CompilerOptions &Opts) {
  auto R = driver::compileSource(Source, Opts);
  EXPECT_TRUE(R->ok()) << R->Diags.str();
  return R;
}

driver::CompilerOptions suiteOptions(const ablate::ParallelKernel &K, int P) {
  driver::CompilerOptions O = P > 1 ? driver::CompilerOptions::parallel(P)
                                    : driver::CompilerOptions::full();
  if (K.DisableInline)
    O.EnableInline = false;
  return O;
}

/// All remark messages from \p Pass of \p Kind, concatenated for
/// substring assertions.
std::string remarkText(const remarks::CompilationTelemetry &T,
                       const std::string &Pass, remarks::RemarkKind Kind) {
  std::string Out;
  for (const remarks::Remark &R : T.Remarks)
    if (R.Pass == Pass && R.Kind == Kind) {
      Out += R.Message;
      Out += '\n';
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// Call-safety summaries
//===----------------------------------------------------------------------===//

/// IL for summary unit tests: only loop and induction-variable
/// canonicalization run (no inlining, no vectorize), so the summaries
/// see DO loops with clean index subscripts — the same shape the spread
/// pass sees mid-pipeline.
std::unique_ptr<driver::CompileResult> lowerOnly(const std::string &Source) {
  driver::CompilerOptions O = driver::CompilerOptions::noOpt();
  O.EnableWhileToDo = true;
  O.EnableIVSub = true;
  O.EnableConstProp = true;
  O.EnableDCE = true;
  O.Passes = "whiletodo,ivsub,constprop,dce";
  return compileWith(Source, O);
}

TEST(CallSafety, BoundedParamWindows) {
  auto R = lowerOnly(R"(
    void scale(float *dst, float *src, float s) {
      int j;
      for (j = 0; j < 128; j++)
        dst[j] = s * src[j];
    }
    void main() {}
  )");
  par::CallSafetyAnalysis CS(*R->IL);
  const par::CalleeSummary *S = CS.summary("scale");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->HasBody);
  EXPECT_FALSE(S->Recursive);
  EXPECT_FALSE(S->UnknownWrites);
  EXPECT_TRUE(S->GlobalWrites.empty());
  ASSERT_EQ(S->ParamWrites.size(), 3u);
  EXPECT_TRUE(S->ParamWrites[0].Accessed);
  EXPECT_TRUE(S->ParamWrites[0].Bounded);
  EXPECT_EQ(S->ParamWrites[0].Lo, 0);
  EXPECT_EQ(S->ParamWrites[0].Hi, 128 * 4);
  EXPECT_FALSE(S->ParamWrites[1].Accessed); // src is only read
  EXPECT_TRUE(S->ParamReads[1].Accessed);
  EXPECT_TRUE(S->ParamReads[1].Bounded);
  EXPECT_FALSE(S->pure());
}

TEST(CallSafety, GlobalWriteIsRecorded) {
  auto R = lowerOnly(R"(
    float acc;
    void bump(float *dst) {
      acc = acc + 1.0;
      dst[0] = acc;
    }
    void main() {}
  )");
  par::CallSafetyAnalysis CS(*R->IL);
  const par::CalleeSummary *S = CS.summary("bump");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->GlobalWrites.count("acc"), 1u);
  EXPECT_EQ(S->GlobalReads.count("acc"), 1u);
  EXPECT_FALSE(S->pure());
}

TEST(CallSafety, PureFunction) {
  auto R = lowerOnly(R"(
    float table[64];
    float probe(float *p) {
      return p[3] + table[5];
    }
    void main() {}
  )");
  par::CallSafetyAnalysis CS(*R->IL);
  const par::CalleeSummary *S = CS.summary("probe");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->pure());
  EXPECT_EQ(S->GlobalReads.count("table"), 1u);
  ASSERT_GE(S->ParamReads.size(), 1u);
  EXPECT_TRUE(S->ParamReads[0].Bounded);
  EXPECT_EQ(S->ParamReads[0].Lo, 12);
  EXPECT_EQ(S->ParamReads[0].Hi, 16);
}

TEST(CallSafety, RecursionIsUnknown) {
  auto R = lowerOnly(R"(
    int count(int n) {
      if (n <= 0)
        return 0;
      return 1 + count(n - 1);
    }
    void main() {}
  )");
  par::CallSafetyAnalysis CS(*R->IL);
  const par::CalleeSummary *S = CS.summary("count");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->Recursive);
  EXPECT_TRUE(S->UnknownWrites);
}

TEST(CallSafety, CompositionThroughCalls) {
  // outer writes inner's window shifted by the +4 element offset.
  auto R = lowerOnly(R"(
    void inner(float *q) {
      q[0] = 1.0;
      q[1] = 2.0;
    }
    void outer(float *p) {
      inner(&p[4]);
    }
    void main() {}
  )");
  par::CallSafetyAnalysis CS(*R->IL);
  const par::CalleeSummary *S = CS.summary("outer");
  ASSERT_NE(S, nullptr);
  EXPECT_FALSE(S->UnknownWrites);
  ASSERT_GE(S->ParamWrites.size(), 1u);
  EXPECT_TRUE(S->ParamWrites[0].Bounded);
  EXPECT_EQ(S->ParamWrites[0].Lo, 16);
  EXPECT_EQ(S->ParamWrites[0].Hi, 24);
}

//===----------------------------------------------------------------------===//
// Spread pass behavior on the scaling suite
//===----------------------------------------------------------------------===//

TEST(Spread, SafeCallLoopSpreads) {
  const ablate::ParallelKernel *K = ablate::findParallelKernel("spreadcall");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 4));
  EXPECT_GE(R->Stats.Spread.LoopsSpread, 1u);
  EXPECT_EQ(R->Stats.Spread.RejectedCalls, 0u);
  // The call loop itself (trip 8) must be among the spread loops.
  EXPECT_NE(remarkText(R->Telemetry, "spread", remarks::RemarkKind::Applied)
                .find("trip 8"),
            std::string::npos);
}

TEST(Spread, ImpureCalleeBlocksSpreading) {
  const ablate::ParallelKernel *K =
      ablate::findParallelKernel("spreadcall_unsafe");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 4));
  EXPECT_GE(R->Stats.Spread.RejectedCalls, 1u);
  std::string Missed =
      remarkText(R->Telemetry, "spread", remarks::RemarkKind::Missed);
  EXPECT_NE(Missed.find("call to 'bump'"), std::string::npos) << Missed;
  EXPECT_NE(Missed.find("writes global 'acc'"), std::string::npos) << Missed;
}

TEST(Spread, RecurrenceIsRejectedWithAccessPair) {
  const ablate::ParallelKernel *K = ablate::findParallelKernel("tridiag");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 4));
  EXPECT_GE(R->Stats.Spread.RejectedDependence, 1u);
  bool FoundPair = false;
  for (const remarks::Remark &Rk : R->Telemetry.Remarks) {
    if (Rk.Pass != "spread" || Rk.Kind != remarks::RemarkKind::Missed)
      continue;
    for (const auto &[Key, Val] : Rk.Args)
      if (Key == "refA" && Val.find("x") != std::string::npos)
        FoundPair = true;
  }
  EXPECT_TRUE(FoundPair)
      << "missedParallel remark should carry the blocking access pair";
}

TEST(Spread, ReductionSpreads) {
  const ablate::ParallelKernel *K = ablate::findParallelKernel("innerprod");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 4));
  EXPECT_GE(R->Stats.Spread.Reductions, 1u);
  EXPECT_GE(R->Stats.Spread.LoopsSpread, 1u);
}

TEST(Spread, OuterLoopOfNestSpreads) {
  const ablate::ParallelKernel *K = ablate::findParallelKernel("stencil2d");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 4));
  EXPECT_GE(R->Stats.Spread.LoopsSpread, 1u);
  // The outer row loop (trip 64) is the one the pass must take.
  EXPECT_NE(remarkText(R->Telemetry, "spread", remarks::RemarkKind::Applied)
                .find("trip 64"),
            std::string::npos);
}

TEST(Spread, SmallTripIsUnprofitable) {
  auto R = compileWith(R"(
    float a[8];
    void main() {
      int i;
      for (i = 0; i < 2; i++)
        a[i] = i;
    }
  )",
                       driver::CompilerOptions::parallel(4));
  EXPECT_EQ(R->Stats.Spread.LoopsSpread, 0u);
  EXPECT_GE(R->Stats.Spread.RejectedUnprofitable, 1u);
}

TEST(Spread, GateOffAtOneProcessor) {
  const ablate::ParallelKernel *K = ablate::findParallelKernel("hydro");
  ASSERT_NE(K, nullptr);
  auto R = compileWith(K->Source, suiteOptions(*K, 1));
  EXPECT_EQ(R->Stats.Spread.LoopsConsidered, 0u);
  EXPECT_EQ(R->Stats.Spread.LoopsSpread, 0u);
}

TEST(Spread, SpecAndFingerprintIncludeSpread) {
  driver::CompilerOptions Par = driver::CompilerOptions::parallel(3);
  EXPECT_NE(Par.pipelineSpec().find("spread"), std::string::npos);
  EXPECT_EQ(driver::CompilerOptions::full().pipelineSpec().find("spread"),
            std::string::npos);
  // Different -P targets must never share compile-cache entries.
  EXPECT_NE(driver::configFingerprint(driver::CompilerOptions::parallel(2)),
            driver::configFingerprint(driver::CompilerOptions::parallel(4)));
}

//===----------------------------------------------------------------------===//
// Hardened -P parsing
//===----------------------------------------------------------------------===//

TEST(ProcessorFlag, RejectsNonNumeric) {
  driver::ToolInvocation Inv;
  std::string Error;
  EXPECT_FALSE(driver::parseToolArgs({"-P", "junk", "x.c"}, Inv, Error));
  EXPECT_NE(Error.find("junk"), std::string::npos);
}

TEST(ProcessorFlag, RejectsZeroAndNegative) {
  for (const char *Bad : {"0", "-3"}) {
    driver::ToolInvocation Inv;
    std::string Error;
    EXPECT_FALSE(driver::parseToolArgs({"-P", Bad, "x.c"}, Inv, Error))
        << Bad;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(ProcessorFlag, RejectsTrailingGarbage) {
  driver::ToolInvocation Inv;
  std::string Error;
  EXPECT_FALSE(driver::parseToolArgs({"-P", "2x", "x.c"}, Inv, Error));
}

TEST(ProcessorFlag, ClampsToTitanMaximum) {
  driver::ToolInvocation Inv;
  std::string Error;
  ASSERT_TRUE(driver::parseToolArgs({"-P", "8", "x.c"}, Inv, Error)) << Error;
  EXPECT_EQ(Inv.Machine.NumProcessors, titan::TitanConfig::MaxProcessors);
  EXPECT_EQ(Inv.Opts.Spread.Processors, titan::TitanConfig::MaxProcessors);
}

TEST(ProcessorFlag, ValidCountConfiguresSpread) {
  driver::ToolInvocation Inv;
  std::string Error;
  ASSERT_TRUE(driver::parseToolArgs({"-P", "3", "x.c"}, Inv, Error)) << Error;
  EXPECT_EQ(Inv.Machine.NumProcessors, 3);
  EXPECT_EQ(Inv.Opts.Spread.Processors, 3);
  EXPECT_TRUE(Inv.Opts.Vectorize.EnableParallel);
}

TEST(ProcessorFlag, OneProcessorDisablesParallel) {
  driver::ToolInvocation Inv;
  std::string Error;
  ASSERT_TRUE(driver::parseToolArgs({"-P", "1", "x.c"}, Inv, Error)) << Error;
  EXPECT_EQ(Inv.Machine.NumProcessors, 1);
  EXPECT_EQ(Inv.Opts.Spread.Processors, 1);
  EXPECT_FALSE(Inv.Opts.Vectorize.EnableParallel);
}

//===----------------------------------------------------------------------===//
// The P=1 vs P=4 memory differential
//===----------------------------------------------------------------------===//

struct DiffInput {
  std::string Name;
  std::string Source;
  bool DisableInline = false;
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<DiffInput> diffInputs() {
  std::vector<DiffInput> Out;
  const std::filesystem::path Dir(TCC_CORPUS_DIR);
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &P : Paths)
    Out.push_back({"corpus_" + std::filesystem::path(P).stem().string(),
                   readFile(P), false});
  for (const ablate::BenchKernel &K : ablate::benchKernels())
    Out.push_back({"kernel_" + K.Name, K.Source, false});
  for (const ablate::ParallelKernel &K : ablate::parallelKernels())
    Out.push_back({"suite_" + K.Name, K.Source, K.DisableInline});
  return Out;
}

/// Word-for-word comparison of every named global between the serial and
/// the spread build (the DifferentialTest pattern: compare by (name,
/// contents), since the two builds may differ in vectorizer
/// temporaries).
void compareGlobals(const driver::RunOutcome &Ref,
                    const driver::RunOutcome &Var, const std::string &Name) {
  const titan::TitanProgram &RefP = Ref.Compile->Machine;
  const titan::TitanProgram &VarP = Var.Compile->Machine;
  std::vector<std::pair<std::string, int64_t>> Extents(
      RefP.GlobalAddresses.begin(), RefP.GlobalAddresses.end());
  std::sort(Extents.begin(), Extents.end(),
            [](const auto &A, const auto &B) { return A.second < B.second; });
  for (size_t I = 0; I < Extents.size(); ++I) {
    int64_t End =
        (I + 1 < Extents.size()) ? Extents[I + 1].second : RefP.GlobalSize;
    auto It = VarP.GlobalAddresses.find(Extents[I].first);
    ASSERT_NE(It, VarP.GlobalAddresses.end())
        << Name << ": global '" << Extents[I].first << "' missing at P=4";
    int64_t Words = (End - Extents[I].second) / 4;
    for (int64_t W = 0; W < Words; ++W) {
      int32_t R = Ref.Machine->readInt(Extents[I].second + 4 * W);
      int32_t V = Var.Machine->readInt(It->second + 4 * W);
      ASSERT_EQ(R, V) << Name << ": global '" << Extents[I].first
                      << "' word " << W << " diverges between P=1 and P=4";
    }
  }
}

class SpreadDifferential : public ::testing::TestWithParam<DiffInput> {};

std::string testName(const ::testing::TestParamInfo<DiffInput> &Info) {
  std::string N = Info.param.Name;
  for (char &C : N)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

} // namespace

TEST_P(SpreadDifferential, IdenticalMemory) {
  const DiffInput &In = GetParam();
  ASSERT_FALSE(In.Source.empty()) << In.Name;

  driver::CompilerOptions SerialOpts = driver::CompilerOptions::full();
  driver::CompilerOptions SpreadOpts = driver::CompilerOptions::parallel(4);
  SerialOpts.EnableInline = SpreadOpts.EnableInline = !In.DisableInline;
  titan::TitanConfig One, Four;
  One.NumProcessors = 1;
  Four.NumProcessors = 4;

  driver::RunOutcome Ref =
      driver::compileAndRun(In.Source, SerialOpts, One);
  ASSERT_TRUE(Ref.Compile->ok()) << In.Name << ": P=1 compile failed";
  ASSERT_TRUE(Ref.Run.Ok) << In.Name << ": P=1 run failed: " << Ref.Run.Error;

  driver::RunOutcome Var =
      driver::compileAndRun(In.Source, SpreadOpts, Four);
  ASSERT_TRUE(Var.Compile->ok()) << In.Name << ": P=4 compile failed";
  ASSERT_TRUE(Var.Run.Ok) << In.Name << ": P=4 run failed: " << Var.Run.Error;

  compareGlobals(Ref, Var, In.Name);
}

TEST(SpreadDifferential, InputsArePresent) {
  size_t Corpus = 0, Suite = 0, Kernels = 0;
  for (const DiffInput &In : diffInputs()) {
    if (In.Name.rfind("corpus_", 0) == 0)
      ++Corpus;
    else if (In.Name.rfind("suite_", 0) == 0)
      ++Suite;
    else
      ++Kernels;
  }
  EXPECT_GE(Corpus, 10u);
  EXPECT_GE(Suite, 6u);
  EXPECT_GE(Kernels, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, SpreadDifferential,
                         ::testing::ValuesIn(diffInputs()), testName);
