//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end execution tests: compile C through the full pipeline, run
/// on the simulated Titan, check results — and differentially test that
/// every optimization level computes identical memory contents.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::driver;

namespace {

/// Compile+run with the given options; asserts success.
RunOutcome runWith(const std::string &Source, CompilerOptions Opts,
                   titan::TitanConfig Config = {}) {
  RunOutcome Out = compileAndRun(Source, Opts, Config);
  EXPECT_TRUE(Out.Run.Ok) << Out.Run.Error;
  return Out;
}

RunOutcome run(const std::string &Source) {
  return runWith(Source, CompilerOptions::full());
}

int32_t globalInt(RunOutcome &Out, const std::string &Name) {
  int64_t Addr = Out.Machine->addressOf(Name);
  EXPECT_GE(Addr, 0) << Name;
  return Out.Machine->readInt(Addr);
}

float globalFloat(RunOutcome &Out, const std::string &Name, int Index = 0) {
  int64_t Addr = Out.Machine->addressOf(Name);
  EXPECT_GE(Addr, 0) << Name;
  return Out.Machine->readFloat(Addr + 4 * Index);
}

double globalDouble(RunOutcome &Out, const std::string &Name,
                    int Index = 0) {
  int64_t Addr = Out.Machine->addressOf(Name);
  EXPECT_GE(Addr, 0) << Name;
  return Out.Machine->readDouble(Addr + 8 * Index);
}

//===----------------------------------------------------------------------===//
// Basic semantics
//===----------------------------------------------------------------------===//

TEST(ExecTest, ArithmeticAndGlobals) {
  auto Out = run(R"(
    int r1; int r2; int r3; int r4; int r5;
    void main() {
      r1 = 2 + 3 * 4;
      r2 = (10 - 4) / 3;
      r3 = 17 % 5;
      r4 = (1 << 4) | 3;
      r5 = ~0 & 255;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 14);
  EXPECT_EQ(globalInt(Out, "r2"), 2);
  EXPECT_EQ(globalInt(Out, "r3"), 2);
  EXPECT_EQ(globalInt(Out, "r4"), 19);
  EXPECT_EQ(globalInt(Out, "r5"), 255);
}

TEST(ExecTest, FloatArithmetic) {
  auto Out = run(R"(
    float f1; double d1; float f2;
    void main() {
      f1 = 1.5 + 2.25;
      d1 = 1.0 / 3.0;
      f2 = 10.0;
      f2 = f2 / 4.0;
    }
  )");
  EXPECT_FLOAT_EQ(globalFloat(Out, "f1"), 3.75f);
  EXPECT_NEAR(globalDouble(Out, "d1"), 1.0 / 3.0, 1e-15);
  EXPECT_FLOAT_EQ(globalFloat(Out, "f2"), 2.5f);
}

TEST(ExecTest, GlobalInitializers) {
  auto Out = run(R"(
    int gi = 42; float gf = 2.5; double gd = -1.25; int result;
    void main() { result = gi; }
  )");
  EXPECT_EQ(globalInt(Out, "result"), 42);
  EXPECT_FLOAT_EQ(globalFloat(Out, "gf"), 2.5f);
  EXPECT_DOUBLE_EQ(globalDouble(Out, "gd"), -1.25);
}

TEST(ExecTest, ControlFlow) {
  auto Out = run(R"(
    int r;
    void main() {
      int i; int s;
      s = 0;
      for (i = 1; i <= 10; i++) {
        if (i % 2 == 0) s += i;
        else s -= 1;
      }
      r = s;
    }
  )");
  // evens 2+4+6+8+10 = 30, minus 5 odds = 25.
  EXPECT_EQ(globalInt(Out, "r"), 25);
}

TEST(ExecTest, WhileAndDoWhile) {
  auto Out = run(R"(
    int r1; int r2;
    void main() {
      int n; int s;
      n = 5; s = 0;
      while (n) { s += n; n--; }
      r1 = s;
      n = 0; s = 0;
      do { s += 1; n++; } while (n < 3);
      r2 = s;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 15);
  EXPECT_EQ(globalInt(Out, "r2"), 3);
}

TEST(ExecTest, BreakContinueGoto) {
  auto Out = run(R"(
    int r;
    void main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 100; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
      }
      goto skip;
      s = 999;
      skip: r = s;
    }
  )");
  // 0+1+2+4+5+6 = 18.
  EXPECT_EQ(globalInt(Out, "r"), 18);
}

TEST(ExecTest, TernaryAndLogicalOps) {
  auto Out = run(R"(
    int r1; int r2; int r3; int calls;
    int bump() { calls += 1; return 1; }
    void main() {
      int a; int b;
      a = 5; b = 0;
      r1 = a > 3 ? 10 : 20;
      r2 = (a && b) || (a > 4);
      calls = 0;
      r3 = b && bump();   /* short-circuit: bump must not run */
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 10);
  EXPECT_EQ(globalInt(Out, "r2"), 1);
  EXPECT_EQ(globalInt(Out, "r3"), 0);
  EXPECT_EQ(globalInt(Out, "calls"), 0);
}

TEST(ExecTest, ArraysAndPointers) {
  auto Out = run(R"(
    float a[10]; int r;
    void main() {
      int i; float *p;
      for (i = 0; i < 10; i++) a[i] = i * 1.5;
      p = &a[3];
      r = (int)(*p + p[2]);
    }
  )");
  // a[3]=4.5, a[5]=7.5 → 12.
  EXPECT_EQ(globalInt(Out, "r"), 12);
  EXPECT_FLOAT_EQ(globalFloat(Out, "a", 9), 13.5f);
}

TEST(ExecTest, TwoDimensionalArrays) {
  auto Out = run(R"(
    float m[4][4]; float r;
    void main() {
      int i; int j;
      for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
          m[i][j] = i * 10 + j;
      r = m[2][3];
    }
  )");
  EXPECT_FLOAT_EQ(globalFloat(Out, "r"), 23.0f);
}

TEST(ExecTest, PointerWalkCopy) {
  // The paper's Section 5.3 loop shape.
  auto Out = run(R"(
    float src[64]; float dst[64]; int r;
    void main() {
      int i; float *a; float *b; int n;
      for (i = 0; i < 64; i++) src[i] = i;
      a = dst; b = src; n = 64;
      while (n) {
        *a++ = *b++;
        n--;
      }
      r = (int)dst[63];
    }
  )");
  EXPECT_EQ(globalInt(Out, "r"), 63);
  EXPECT_FLOAT_EQ(globalFloat(Out, "dst", 17), 17.0f);
}

TEST(ExecTest, FunctionCallsAndRecursion) {
  auto Out = run(R"(
    int r1; int r2;
    int add(int a, int b) { return a + b; }
    int fact(int n) {
      if (n <= 1) return 1;
      return n * fact(n - 1);
    }
    void main() {
      r1 = add(add(1, 2), add(3, 4));
      r2 = fact(6);
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 10);
  EXPECT_EQ(globalInt(Out, "r2"), 720);
}

TEST(ExecTest, FloatArgumentsAndReturns) {
  auto Out = run(R"(
    float r;
    float lerp(float a, float b, float t) { return a + t * (b - a); }
    void main() { r = lerp(2.0, 10.0, 0.25); }
  )");
  EXPECT_FLOAT_EQ(globalFloat(Out, "r"), 4.0f);
}

TEST(ExecTest, PointerArguments) {
  auto Out = run(R"(
    int r;
    void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }
    void main() {
      int x; int y;
      x = 3; y = 17;
      swap(&x, &y);
      r = x * 100 + y;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r"), 1703);
}

TEST(ExecTest, StaticPersistsAcrossCalls) {
  auto Out = run(R"(
    int r;
    int counter() {
      static int count = 100;
      count += 1;
      return count;
    }
    void main() {
      counter();
      counter();
      r = counter();
    }
  )");
  EXPECT_EQ(globalInt(Out, "r"), 103);
}

TEST(ExecTest, CharArithmetic) {
  auto Out = run(R"(
    int r;
    void main() {
      char c;
      c = 'A';
      c = c + 1;
      r = c;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r"), 66);
}

TEST(ExecTest, IntFloatConversions) {
  auto Out = run(R"(
    int r1; float r2;
    void main() {
      float f; int i;
      f = 7.9;
      r1 = (int)f;
      i = 3;
      r2 = i / 2 + (float)i / 2.0;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 7);
  EXPECT_FLOAT_EQ(globalFloat(Out, "r2"), 2.5f);
}

TEST(ExecTest, CommaAndCompoundAssignOps) {
  auto Out = run(R"(
    int r1; int r2;
    void main() {
      int a; int b;
      a = 1;
      b = (a += 2, a *= 3, a - 1);
      r1 = a;
      r2 = b;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 9);
  EXPECT_EQ(globalInt(Out, "r2"), 8);
}

TEST(ExecTest, EmbeddedAssignmentChain) {
  auto Out = run(R"(
    int r1; int r2; int r3;
    void main() {
      int a; int b; int c;
      a = b = c = 5;
      r1 = a; r2 = b; r3 = c;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 5);
  EXPECT_EQ(globalInt(Out, "r2"), 5);
  EXPECT_EQ(globalInt(Out, "r3"), 5);
}

//===----------------------------------------------------------------------===//
// Subset semantics the fuzzer's well-definedness discipline leans on:
// these idioms must mean the same thing at every optimization level, or
// the differential oracle has no fixed reference to compare against.
//===----------------------------------------------------------------------===//

TEST(ExecTest, MaskedWraparoundIdioms) {
  // The generator keeps every intermediate in range by masking after each
  // step; the masks themselves must behave like the C operators they are.
  auto Out = run(R"(
    int r1; int r2; int r3; int r4;
    void main() {
      int a; int i;
      a = 0;
      for (i = 0; i < 100; i++)
        a = (a * 37 + i) & 1023;
      r1 = a;
      r2 = (255 + 1) & 255;
      r3 = ((1 << 4) - 1) & (7 << 2);
      r4 = (12345 & 4095) >> 3;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 1014);
  EXPECT_EQ(globalInt(Out, "r2"), 0);
  EXPECT_EQ(globalInt(Out, "r3"), 12);
  EXPECT_EQ(globalInt(Out, "r4"), 7);
}

TEST(ExecTest, DivisionAndRemainderTruncation) {
  // Non-negative operands only (the generator's discipline): quotient
  // truncates toward zero and (a/b)*b + a%b == a.
  auto Out = run(R"(
    int r1; int r2; int r3; int r4;
    void main() {
      int a; int b;
      a = 1003; b = (a & 7) + 1;
      r1 = a / b;
      r2 = a % b;
      r3 = r1 * b + r2;
      r4 = 17 / 5 + 17 % 5;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 250);
  EXPECT_EQ(globalInt(Out, "r2"), 3);
  EXPECT_EQ(globalInt(Out, "r3"), 1003);
  EXPECT_EQ(globalInt(Out, "r4"), 5);
}

TEST(ExecTest, ShortCircuitEvaluationSkipsRHS) {
  // The RHS of && / || must not execute when the LHS decides: the
  // embedded assignments observe evaluation, and a division whose guard
  // failed must never run.
  auto Out = run(R"(
    int r1; int r2; int touched;
    void main() {
      int a; int d;
      touched = 0;
      a = 0;
      d = 0;
      if (a != 0 && (touched = 1) != 0) r1 = 99; else r1 = 1;
      if (a == 0 || (touched = 2) != 0) r2 = 2; else r2 = 99;
      if (d != 0 && 100 / d > 0) r2 = r2 + 10;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 1);
  EXPECT_EQ(globalInt(Out, "r2"), 2);
  EXPECT_EQ(globalInt(Out, "touched"), 0);
}

TEST(ExecTest, ShortCircuitInLoopCondition) {
  auto Out = run(R"(
    int a[16]; int r1;
    void main() {
      int i; int n;
      for (i = 0; i < 16; i++) a[i] = i;
      n = 0;
      i = 0;
      while (i < 16 && a[i] < 10) { n = n + 1; i = i + 1; }
      r1 = n;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 10);
}

TEST(ExecTest, ArrayOfArrayIndexing) {
  // Row-major [i][j] addressing, aliased row/column walks, and a
  // transpose-style update reading one element while writing another.
  auto Out = run(R"(
    int m[4][4]; int r1; int r2; int r3;
    void main() {
      int i; int j;
      for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
          m[i][j] = i * 4 + j;
      r1 = m[2][3];
      for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
          if (i < j) m[i][j] = m[j][i];
      r2 = m[1][2];
      r3 = m[0][3] + m[3][0] * 100;
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 11);
  EXPECT_EQ(globalInt(Out, "r2"), 9);
  EXPECT_EQ(globalInt(Out, "r3"), 1212);
}

TEST(ExecTest, MaskedIndirectIndexing) {
  // Index expressions masked into a power-of-two array size — the
  // generator's only indirect-addressing shape.
  auto Out = run(R"(
    int a[8]; int b[8]; int r1;
    void main() {
      int i;
      for (i = 0; i < 8; i++) { a[i] = 7 - i; b[i] = 0; }
      for (i = 0; i < 8; i++) b[a[i] & 7] = i;
      r1 = b[0] * 10 + b[7];
    }
  )");
  EXPECT_EQ(globalInt(Out, "r1"), 70);
}

TEST(ExecTest, EmptiedWhileBodyStillAdvances) {
  // Regression for a DCE liveness hole found by the fuzzer: when dead
  // code elimination empties a while body, the increments feeding the
  // loop condition via the back edge must survive, or a terminating
  // loop becomes an infinite spin.
  titan::TitanConfig C;
  C.MaxInstructions = 1000000;
  for (const char *Spec : {"dce", "constprop,dce", "ivsub,dce"}) {
    CompilerOptions O = CompilerOptions::full();
    O.Passes = Spec;
    auto Out = compileAndRun(R"(
      int r1;
      void main() {
        int i; int dead;
        for (i = 0; i < 5; i++) {
          dead = i * 3;
          if ((dead & 0) != 0) { }
        }
        r1 = i;
      }
    )",
                             O, C);
    ASSERT_TRUE(Out.Run.Ok) << Spec << ": " << Out.Run.Error;
    int64_t Addr = Out.Machine->addressOf("r1");
    ASSERT_GE(Addr, 0);
    EXPECT_EQ(Out.Machine->readInt(Addr), 5) << Spec;
  }
}

TEST(ExecTest, InfiniteLoopTrapsOnBudget) {
  titan::TitanConfig C;
  C.MaxInstructions = 100000;
  auto Out = compileAndRun("void main() { for (;;) ; }",
                           CompilerOptions::noOpt(), C);
  EXPECT_FALSE(Out.Run.Ok);
  EXPECT_NE(Out.Run.Error.find("budget"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The paper's kernels
//===----------------------------------------------------------------------===//

const char *DaxpySource = R"(
  float a[100], b[100], c[100];
  int checksum;
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 2 * i; }
    daxpy(a, b, c, 1.0, 100);
    checksum = 0;
    for (i = 0; i < 100; i++) checksum += (int)a[i];
  }
)";

TEST(ExecTest, DaxpyCorrectAtAllLevels) {
  for (auto &Opts :
       {CompilerOptions::noOpt(), CompilerOptions::scalarOnly(),
        CompilerOptions::full(), CompilerOptions::parallel()}) {
    titan::TitanConfig C;
    C.NumProcessors = 2;
    auto Out = runWith(DaxpySource, Opts, C);
    EXPECT_EQ(globalInt(Out, "checksum"), 14850);
    EXPECT_FLOAT_EQ(globalFloat(Out, "a", 33), 99.0f);
  }
}

TEST(ExecTest, DaxpyVectorizesAfterInlining) {
  auto Out = runWith(DaxpySource, CompilerOptions::full());
  EXPECT_GE(Out.Compile->Stats.Inline.CallsInlined, 1u);
  EXPECT_GE(Out.Compile->Stats.Vectorize.LoopsVectorized, 1u);
  EXPECT_GT(Out.Run.VectorInstrs, 0u);
}

TEST(ExecTest, DaxpyPerformanceOrdering) {
  // A vector long enough that the per-loop barrier cost cannot mask the
  // parallel gain (at the paper's n=100, spreading barely pays — see the
  // E2 bench).
  const char *BigDaxpy = R"(
    float a[4096], b[4096], c[4096];
    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0) return;
      if (alpha == 0) return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
    void main()
    {
      int i;
      for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 2 * i; }
      daxpy(a, b, c, 1.0, 4096);
    }
  )";
  titan::TitanConfig Scalar;
  Scalar.EnableOverlap = false;
  auto S = runWith(BigDaxpy, CompilerOptions::scalarOnly(), Scalar);

  titan::TitanConfig Vec;
  auto V = runWith(BigDaxpy, CompilerOptions::full(), Vec);

  titan::TitanConfig Par;
  Par.NumProcessors = 2;
  auto P = runWith(BigDaxpy, CompilerOptions::parallel(), Par);

  EXPECT_LT(V.Run.Cycles, S.Run.Cycles);
  EXPECT_LT(P.Run.Cycles, V.Run.Cycles);
}

const char *BacksolveSource = R"(
  float x[1002], y[1000], z[1000];
  float out;
  void main() {
    int i; int n;
    float *p; float *q;
    n = 1000;
    for (i = 0; i < 1002; i++) x[i] = 0.0;
    x[0] = 1.0;
    for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
    p = &x[1];
    q = &x[0];
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
    out = x[5];
  }
)";

TEST(ExecTest, BacksolveCorrectAtAllLevels) {
  // Reference: x[i+1] = 0.5*(1 - x[i]), x[0]=1 → x1=0, x2=.5, x3=.25,
  // x4=.375, x5=.3125.
  for (auto &Opts : {CompilerOptions::noOpt(), CompilerOptions::scalarOnly(),
                     CompilerOptions::full()}) {
    auto Out = runWith(BacksolveSource, Opts);
    EXPECT_FLOAT_EQ(globalFloat(Out, "out"), 0.3125f);
  }
}

TEST(ExecTest, BacksolveRecurrenceNotVectorizedButOptimized) {
  auto Out = runWith(BacksolveSource, CompilerOptions::full());
  // The recurrence loop stays serial but gets scalar replacement and
  // strength reduction.
  EXPECT_GE(Out.Compile->Stats.ScalarReplace.LoopsApplied, 1u);
  EXPECT_GE(Out.Compile->Stats.StrengthReduce.LoopsApplied, 1u);
}

TEST(ExecTest, BacksolvePerformanceShape) {
  // Paper Section 6: dependence-driven optimization vs plain scalar is a
  // large factor (0.5 → 1.9 MFLOPS).
  titan::TitanConfig Scalar;
  Scalar.EnableOverlap = false;
  auto S = runWith(BacksolveSource, CompilerOptions::scalarOnly(), Scalar);
  auto F = runWith(BacksolveSource, CompilerOptions::full());
  EXPECT_LT(F.Run.Cycles, S.Run.Cycles);
  // Strength reduction removes the integer multiplies from the loop.
  EXPECT_LT(F.Run.IntMuls, S.Run.IntMuls);
  // Scalar replacement removes loads.
  EXPECT_LT(F.Run.Loads, S.Run.Loads);
}

//===----------------------------------------------------------------------===//
// Differential testing: all levels must agree bit-for-bit
//===----------------------------------------------------------------------===//

struct DifferentialCase {
  const char *Name;
  const char *Source;
  std::vector<std::string> IntOutputs;
  std::vector<std::string> FloatOutputs;
};

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(DifferentialTest, AllLevelsAgree) {
  const DifferentialCase &Case = GetParam();
  std::vector<std::pair<std::string, CompilerOptions>> Levels = {
      {"noOpt", CompilerOptions::noOpt()},
      {"scalarOnly", CompilerOptions::scalarOnly()},
      {"full", CompilerOptions::full()},
      {"parallel", CompilerOptions::parallel()},
  };
  std::map<std::string, int32_t> IntRef;
  std::map<std::string, float> FloatRef;
  bool First = true;
  for (auto &[LevelName, Opts] : Levels) {
    titan::TitanConfig C;
    C.NumProcessors = 4;
    auto Out = compileAndRun(Case.Source, Opts, C);
    ASSERT_TRUE(Out.Run.Ok)
        << Case.Name << " at " << LevelName << ": " << Out.Run.Error;
    for (const std::string &G : Case.IntOutputs) {
      int32_t V = Out.Machine->readInt(Out.Machine->addressOf(G));
      if (First)
        IntRef[G] = V;
      else
        EXPECT_EQ(V, IntRef[G]) << Case.Name << "::" << G << " at "
                                << LevelName;
    }
    for (const std::string &G : Case.FloatOutputs) {
      float V = Out.Machine->readFloat(Out.Machine->addressOf(G));
      if (First)
        FloatRef[G] = V;
      else
        EXPECT_EQ(V, FloatRef[G]) << Case.Name << "::" << G << " at "
                                  << LevelName;
    }
    First = false;
  }
}

const DifferentialCase DifferentialCases[] = {
    {"vector_add",
     R"(
       float a[200], b[200], c[200]; int sum;
       void main() {
         int i;
         for (i = 0; i < 200; i++) { b[i] = i * 3; c[i] = 200 - i; }
         for (i = 0; i < 200; i++) a[i] = b[i] + c[i];
         sum = 0;
         for (i = 0; i < 200; i++) sum += (int)a[i];
       }
     )",
     {"sum"},
     {}},
    {"strided_updates",
     R"(
       float a[128]; int sum;
       void main() {
         int i;
         for (i = 0; i < 128; i++) a[i] = 1.0;
         for (i = 0; i < 64; i++) a[2 * i] = a[2 * i] + 2.0;
         for (i = 0; i < 32; i++) a[4 * i + 1] = a[4 * i + 1] * 3.0;
         sum = 0;
         for (i = 0; i < 128; i++) sum += (int)a[i];
       }
     )",
     {"sum"},
     {}},
    {"recurrence_and_reduction",
     R"(
       float x[301]; float total;
       void main() {
         int i; float s;
         x[0] = 1.0;
         for (i = 0; i < 300; i++) x[i + 1] = 0.5 * x[i] + 1.0;
         s = 0.0;
         for (i = 0; i <= 300; i++) s = s + x[i];
         total = s;
       }
     )",
     {},
     {"total"}},
    {"pointer_copy_overlapping_guard",
     R"(
       float buf[100]; int sum;
       void main() {
         int i; float *d; float *s; int n;
         for (i = 0; i < 100; i++) buf[i] = i;
         d = &buf[1]; s = &buf[0]; n = 99;
         /* overlapping copy: must stay serial and smear buf[0] */
         while (n) { *d++ = *s++; n--; }
         sum = 0;
         for (i = 0; i < 100; i++) sum += (int)buf[i];
       }
     )",
     {"sum"},
     {}},
    {"matrix_transform",
     R"(
       float m[4][4]; float v[4]; float r[4]; float r2;
       void main() {
         int i; int j;
         for (i = 0; i < 4; i++) {
           v[i] = i + 1;
           for (j = 0; j < 4; j++) m[i][j] = i == j ? 2.0 : 1.0;
         }
         for (i = 0; i < 4; i++) {
           float s;
           s = 0.0;
           for (j = 0; j < 4; j++) s = s + m[i][j] * v[j];
           r[i] = s;
         }
         r2 = r[2];
       }
     )",
     {},
     {"r2"}},
    {"inlined_helpers",
     R"(
       float data[50]; int result;
       float square(float x) { return x * x; }
       float accumulate(float *p, int n) {
         float s; int i;
         s = 0.0;
         for (i = 0; i < n; i++) s = s + square(p[i]);
         return s;
       }
       void main() {
         int i;
         for (i = 0; i < 50; i++) data[i] = i % 4;
         result = (int)accumulate(data, 50);
       }
     )",
     {"result"},
     {}},
    {"conditional_stores",
     R"(
       int a[100]; int evens; int odds;
       void main() {
         int i;
         for (i = 0; i < 100; i++) {
           if (i % 2) a[i] = -i;
           else a[i] = i;
         }
         evens = 0; odds = 0;
         for (i = 0; i < 100; i++) {
           if (a[i] >= 0) evens += a[i];
           else odds -= a[i];
         }
       }
     )",
     {"evens", "odds"},
     {}},
    {"countdown_loops",
     R"(
       float w[64]; int sum;
       void main() {
         int i; int n;
         n = 64;
         for (i = n; i > 0; i--) w[i - 1] = i * 2;
         sum = 0;
         i = n;
         while (i) { sum += (int)w[i - 1]; i--; }
       }
     )",
     {"sum"},
     {}},
};

INSTANTIATE_TEST_SUITE_P(AllPrograms, DifferentialTest,
                         ::testing::ValuesIn(DifferentialCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Stage capture (the Section 9 walkthrough support)
//===----------------------------------------------------------------------===//

TEST(ExecTest, StageSnapshotsCaptured) {
  CompilerOptions Opts = CompilerOptions::full();
  Opts.CaptureStages = true;
  auto Result = compileSource(DaxpySource, Opts);
  ASSERT_TRUE(Result->ok()) << Result->Diags.str();
  EXPECT_TRUE(Result->Stages.count("lower"));
  EXPECT_TRUE(Result->Stages.count("inline"));
  EXPECT_TRUE(Result->Stages.count("whiletodo"));
  EXPECT_TRUE(Result->Stages.count("ivsub"));
  EXPECT_TRUE(Result->Stages.count("constprop"));
  EXPECT_TRUE(Result->Stages.count("dce"));
  EXPECT_TRUE(Result->Stages.count("vectorize"));
  // The inline stage shows the in_ temporaries; the vectorize stage shows
  // colon notation.
  EXPECT_NE(Result->Stages["inline"].find("in_"), std::string::npos);
  EXPECT_NE(Result->Stages["vectorize"].find(":"), std::string::npos);
}

} // namespace
