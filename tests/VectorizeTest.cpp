//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorizer tests: Allen–Kennedy distribution, triplet generation,
/// strip-mining, `do parallel` emission, recurrence serialization, and
/// the aliasing behaviour of Section 9.
///
//===----------------------------------------------------------------------===//

#include "vector/Vectorize.h"

#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::vec;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

Function *prepare(Compiled &C, const std::string &Name) {
  Function *F = C.P->findFunction(Name);
  EXPECT_NE(F, nullptr);
  scalar::convertWhileLoops(*F);
  scalar::substituteInductionVariables(*F);
  scalar::propagateConstants(*F);
  scalar::eliminateDeadCode(*F);
  return F;
}

TEST(VectorizeTest, VectorAddBecomesStripLoop) {
  auto C = compileToIL(R"(
    float a[100]; float b[100]; float c[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i] + c[i];
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.EnableParallel = true;
  Opts.StripLength = 32;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
  EXPECT_EQ(Stats.VectorStmts, 1u);
  EXPECT_EQ(Stats.StripLoops, 1u);
  EXPECT_EQ(Stats.ParallelLoops, 1u);

  std::string Printed = printFunction(*F);
  // The paper's Section 9 shape.
  EXPECT_NE(Printed.find("do parallel vi_"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("= 0, 99, 32 {"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("min(99, vi_"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("a[vi_"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find(":1]"), std::string::npos) << Printed;
}

TEST(VectorizeTest, ShortConstantTripNoStripLoop) {
  // The graphics 4x4 case: vector length fits a strip; no strip loop.
  auto C = compileToIL(R"(
    float a[4]; float b[4];
    void f() {
      int i;
      for (i = 0; i < 4; i++)
        a[i] = 2.0 * b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.VectorStmts, 1u);
  EXPECT_EQ(Stats.StripLoops, 0u);
  EXPECT_EQ(Stats.UnstripedVectorStmts, 1u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("a[0:3:1]"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("do "), std::string::npos) << Printed;
}

TEST(VectorizeTest, RecurrenceStaysSerial) {
  // Backsolve: cyclic SCC must stay a serial loop.
  auto C = compileToIL(R"(
    float x[1001]; float y[1000]; float z[1000];
    void backsolve(int n) {
      float *p; float *q; int i;
      p = &x[1];
      q = &x[0];
      for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
    }
  )");
  Function *F = prepare(*C, "backsolve");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 0u);
  EXPECT_EQ(Stats.VectorStmts, 0u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find(":1]"), std::string::npos) << Printed;
}

TEST(VectorizeTest, DistributionSplitsLoop) {
  // S2 reads what S1 wrote on a previous iteration: distribute into a
  // vector statement for S1 followed by one for S2.
  auto C = compileToIL(R"(
    float a[101]; float b[100]; float c[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++) {
        a[i + 1] = b[i];
        c[i] = a[i];
      }
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
  EXPECT_EQ(Stats.LoopsDistributed, 1u);
  EXPECT_EQ(Stats.VectorStmts, 2u);
  std::string Printed = printFunction(*F);
  // Writer strip loop appears before reader strip loop.
  size_t WritePos = Printed.find("+ 1:");
  size_t ReadPos = Printed.find("= a[vi");
  EXPECT_NE(WritePos, std::string::npos) << Printed;
  EXPECT_NE(ReadPos, std::string::npos) << Printed;
  EXPECT_LT(WritePos, ReadPos) << Printed;
}

TEST(VectorizeTest, PartialDistributionMixedSerialVector) {
  // A reduction plus an independent statement: the reduction loop stays
  // serial, the copy vectorizes.
  auto C = compileToIL(R"(
    float a[100]; float b[100]; float out;
    void f() {
      float s; int i;
      s = 0.0;
      for (i = 0; i < 100; i++) {
        s = s + a[i];
        b[i] = a[i];
      }
      out = s;
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
  EXPECT_EQ(Stats.VectorStmts, 1u);
  EXPECT_EQ(Stats.SerialLoops, 1u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("s = s + a["), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("b[vi"), std::string::npos) << Printed;
}

TEST(VectorizeTest, PointerAliasingBlocksVectorization) {
  // The un-inlined daxpy: pointer parameters may alias (Section 9).
  auto C = compileToIL(R"(
    void daxpy(float *x, float *y, float *z, float alpha, int n) {
      if (n <= 0) return;
      if (alpha == 0) return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
  )");
  Function *F = prepare(*C, "daxpy");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 0u);
}

TEST(VectorizeTest, SafePragmaEnablesVectorization) {
  auto C = compileToIL(R"(
    void daxpy(float *x, float *y, float *z, float alpha, int n) {
      if (n <= 0) return;
      if (alpha == 0) return;
      #pragma safe
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
  )");
  Function *F = prepare(*C, "daxpy");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
  std::string Printed = printFunction(*F);
  // Star form with triplet bounds over the strip.
  EXPECT_NE(Printed.find("min("), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("do vi_"), std::string::npos) << Printed;
}

TEST(VectorizeTest, FortranPointerOptionEnablesVectorization) {
  auto C = compileToIL(R"(
    void daxpy(float *x, float *y, float *z, float alpha, int n) {
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
  )");
  Function *F = prepare(*C, "daxpy");
  VectorizeOptions Opts;
  Opts.FortranPointerSemantics = true;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
}

TEST(VectorizeTest, PointerRefsKeepStarFormWithTriplet) {
  auto C = compileToIL(R"(
    void f(float *x, int n) {
      int i;
      #pragma safe
      for (i = 0; i < n; i++)
        x[i] = 1.0;
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.VectorStmts, 1u);
  std::string Printed = printFunction(*F);
  // Star form with an embedded triplet over the strip bounds:
  // *(x + 4*vi : x + 4*vr : 4).
  EXPECT_NE(Printed.find("*(x + 4 * vi"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("4 * vr_"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find(":4)"), std::string::npos) << Printed;
}

TEST(VectorizeTest, VolatileNotVectorized) {
  auto C = compileToIL(R"(
    volatile float a[100]; float b[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        b[i] = a[i];
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 0u);
}

TEST(VectorizeTest, CallBlocksVectorization) {
  auto C = compileToIL(R"(
    float a[100];
    float g(float v);
    void f() {
      int i; float t;
      for (i = 0; i < 100; i++) {
        t = g(1.0);
        a[i] = t;
      }
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeStats Stats = vectorizeLoops(*F);
  EXPECT_EQ(Stats.LoopsVectorized, 0u);
}

TEST(VectorizeTest, NoParallelWhenDisabled) {
  auto C = compileToIL(R"(
    float a[100]; float b[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.EnableParallel = false;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.StripLoops, 1u);
  EXPECT_EQ(Stats.ParallelLoops, 0u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find("do parallel"), std::string::npos) << Printed;
}

TEST(VectorizeTest, StripLengthConfigurable) {
  auto C = compileToIL(R"(
    float a[100]; float b[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.StripLength = 64;
  vectorizeLoops(*F, Opts);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("= 0, 99, 64 {"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("+ 63"), std::string::npos) << Printed;
}

TEST(VectorizeTest, WholePipelineDaxpyMainMatchesPaper) {
  // Hand-inlined daxpy main, full scalar pipeline, then vectorize +
  // parallelize: the Section 9 final form.
  auto C = compileToIL(R"(
    float a[100]; float b[100]; float c[100];
    void main() {
      float *in_x; float *in_y; float *in_z; float in_alpha;
      float *in_2; float *in_3; float *in_4;
      int in_n; int in_1;
      in_x = a;
      in_y = b;
      in_z = c;
      in_alpha = 1.0;
      in_n = 100;
      if (in_n <= 0) goto lb_1;
      if (in_alpha == 0.0) goto lb_1;
      while (in_n) {
        in_2 = in_x;
        in_x = in_2 + 1;
        in_3 = in_y;
        in_y = in_3 + 1;
        in_4 = in_z;
        in_z = in_4 + 1;
        *in_2 = *in_3 + in_alpha * *in_4;
        in_1 = in_n;
        in_n = in_1 - 1;
      }
      lb_1: ;
    }
  )");
  Function *F = prepare(*C, "main");
  VectorizeOptions Opts;
  Opts.EnableParallel = true;
  Opts.StripLength = 32;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.LoopsVectorized, 1u);
  std::string Printed = printFunction(*F);
  // do parallel vi = 0, 99, 32 { vr = min(99, vi+31);
  //   a[vi:vr:1] = b[vi:vr:1] + c[vi:vr:1]; }
  EXPECT_NE(Printed.find("do parallel"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("= 0, 99, 32 {"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("min(99,"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("a["), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("b["), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("c["), std::string::npos) << Printed;
}

} // namespace

// (appended) Scalar spreading of non-vectorizable but independent loops.
namespace {
TEST(VectorizeTest, IndependentSerialLoopSpreadsAcrossProcessors) {
  // i % 4 has no vector form, but iterations are independent: the loop
  // should stay scalar yet become `do parallel` (paper Section 2).
  auto C = compileToIL(R"(
    float a[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = i % 4;
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.EnableParallel = true;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.VectorStmts, 0u);
  EXPECT_EQ(Stats.SpreadSerialLoops, 1u);
  std::string Printed = printFunction(*F);
  EXPECT_NE(Printed.find("do parallel"), std::string::npos) << Printed;
}

TEST(VectorizeTest, RecurrenceNeverSpread) {
  // A carried dependence with a non-vectorizable value use: neither
  // vectorized nor spread.
  auto C = compileToIL(R"(
    int x[101];
    void f() {
      int i;
      for (i = 1; i <= 100; i++)
        x[i] = x[i - 1] % 7;
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.EnableParallel = true;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.SpreadSerialLoops, 0u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find("do parallel"), std::string::npos) << Printed;
}

TEST(VectorizeTest, ReductionNeverSpread) {
  auto C = compileToIL(R"(
    float a[100]; float out;
    void f() {
      float s; int i;
      s = 0.0;
      for (i = 0; i < 100; i++)
        s = s + a[i] * (i % 3);
      out = s;
    }
  )");
  Function *F = prepare(*C, "f");
  VectorizeOptions Opts;
  Opts.EnableParallel = true;
  VectorizeStats Stats = vectorizeLoops(*F, Opts);
  EXPECT_EQ(Stats.SpreadSerialLoops, 0u);
  std::string Printed = printFunction(*F);
  EXPECT_EQ(Printed.find("do parallel"), std::string::npos) << Printed;
}
} // namespace
