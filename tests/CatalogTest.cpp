//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parallel sharded catalog builder (paper Section 7) and
/// its correctness backbone:
///
///  - the differential determinism harness: the merged serialized catalog
///    must be byte-identical across worker counts (1/2/8) and repeated
///    runs — parallel catalog builds may not change the database;
///  - the serializer round-trip property: serialization is a fixed point
///    (serialize(deserialize(text)) == text), including after
///    prepareFunctionForInlining leaves symbol-id gaps and after the
///    optimizer introduces DO loops and vector triplets;
///  - error paths: malformed catalog text (truncated lists, unterminated
///    strings, non-function entries, bad framing, duplicate procedure
///    names) produces located diagnostics, never a crash;
///  - materialization failures name the offending catalog entry, both
///    from ProcedureCatalog::materialize directly and through the
///    inliner's catalog-resolution path.
///
//===----------------------------------------------------------------------===//

#include "catalog/CatalogBuilder.h"

#include "driver/Compiler.h"
#include "frontend/Lower.h"
#include "il/ILSerializer.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "support/CompileCache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

using namespace tcc;
using namespace tcc::catalog;
using namespace tcc::inliner;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

/// A small multi-file "math library" exercising loops, statics,
/// conditionals, pointers, and multi-dimensional arrays.
const std::pair<const char *, const char *> LibraryFiles[] = {
    {"vec.c", R"(
      void vfill(float *x, float v, int n) {
        for (; n; n--)
          *x++ = v;
      }
      void vaxpy(float *x, float *y, float alpha, int n) {
        for (; n; n--) {
          *x = *x + alpha * *y++;
          x++;
        }
      }
    )"},
    {"dot.c", R"(
      float vdot(float *x, float *y, int n) {
        float s;
        s = 0.0;
        for (; n; n--)
          s = s + *x++ * *y++;
        return s;
      }
    )"},
    {"stat.c", R"(
      int counter() {
        static int calls;
        calls = calls + 1;
        return calls;
      }
      int scratch(int n) {
        static int t;
        t = n * 2;
        return t + 1;
      }
    )"},
    {"ctl.c", R"(
      int clampi(int x, int lo, int hi) {
        if (x < lo)
          return lo;
        if (x > hi)
          return hi;
        return x;
      }
      int ipow(int b, int e) {
        int r;
        r = 1;
        while (e) {
          r = r * b;
          e = e - 1;
        }
        return r;
      }
    )"},
    {"mat.c", R"(
      void mscale(float m[8][8], float s) {
        int i, j;
        for (i = 0; i < 8; i++)
          for (j = 0; j < 8; j++)
            m[i][j] = m[i][j] * s;
      }
    )"},
    {"misc.c", R"(
      double dsum3(double a, double b, double c) {
        return a + b + c;
      }
      char pick(char *s, int i) {
        return s[i];
      }
    )"},
};

CatalogBuilder libraryBuilder() {
  CatalogBuilder B;
  for (const auto &[File, Text] : LibraryFiles)
    B.addSource(File, Text);
  return B;
}

std::string buildSerialized(unsigned Workers) {
  CatalogBuildOptions Opts;
  Opts.Workers = Workers;
  CatalogBuildResult R = libraryBuilder().build(Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return R.Catalog.serialize();
}

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

/// Frames \p Body as one `#entry` record exactly as
/// ProcedureCatalog::serialize does.
std::string frameEntry(const std::string &Body) {
  std::string Out = "#entry " + std::to_string(Body.size()) + "\n" + Body;
  if (!Body.empty() && Body.back() != '\n')
    Out += '\n';
  return Out;
}

/// The round-trip property: serializing the function read back from
/// \p Text reproduces \p Text byte for byte.
void expectRoundTripFixedPoint(const std::string &Text) {
  il::Program P;
  DiagnosticEngine Diags;
  il::Function *F = il::deserializeFunction(Text, P, Diags);
  ASSERT_NE(F, nullptr) << Diags.str() << "\nwhile reading:\n" << Text;
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(il::serializeFunction(*F), Text);
}

//===----------------------------------------------------------------------===//
// Differential determinism harness
//===----------------------------------------------------------------------===//

TEST(CatalogTest, DifferentialWorkerCounts) {
  // The headline correctness artifact: parallel builds must produce a
  // merged serialized database byte-identical to the serial build.
  std::string Serial = buildSerialized(1);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(buildSerialized(2), Serial);
  EXPECT_EQ(buildSerialized(8), Serial);
}

TEST(CatalogTest, DifferentialRepeatedRuns) {
  std::string First = buildSerialized(8);
  EXPECT_EQ(buildSerialized(8), First);
  EXPECT_EQ(buildSerialized(8), First);
}

TEST(CatalogTest, MergedCatalogIsNameSortedAndComplete) {
  CatalogBuildResult R = libraryBuilder().build();
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  std::vector<std::string> Names;
  for (const auto &[Name, Text] : R.Catalog.entries())
    Names.push_back(Name);
  // std::map iteration is sorted; the catalog must hold every procedure
  // from every shard.
  EXPECT_EQ(Names, (std::vector<std::string>{
                       "clampi", "counter", "dsum3", "ipow", "mscale",
                       "pick", "scratch", "vaxpy", "vdot", "vfill"}));
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(CatalogTest, WorkerCountExceedingShardsIsSafe) {
  CatalogBuilder B;
  B.addSource("one.c", "int one() { return 1; }");
  B.addSource("two.c", "int two() { return 2; }");
  CatalogBuildOptions Opts;
  Opts.Workers = 16;
  CatalogBuildResult R = B.build(Opts);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Catalog.entries().size(), 2u);
  CatalogBuildResult Serial = B.build();
  EXPECT_EQ(R.Catalog.serialize(), Serial.Catalog.serialize());
}

TEST(CatalogTest, EmptyBuildSucceeds) {
  CatalogBuilder B;
  CatalogBuildResult R = B.build();
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Catalog.entries().empty());
  EXPECT_TRUE(R.Catalog.serialize().empty());
}

//===----------------------------------------------------------------------===//
// Serializer round-trip property
//===----------------------------------------------------------------------===//

TEST(CatalogTest, RoundTripLowerFixtures) {
  // Every function the front end lowers from the library fixtures must
  // serialize to a fixed point.
  for (const auto &[File, Text] : LibraryFiles) {
    auto C = compileToIL(Text);
    for (const auto &F : C->P->getFunctions())
      expectRoundTripFixedPoint(il::serializeFunction(*F));
  }
}

TEST(CatalogTest, RoundTripAfterPrepareWithSymbolIdGaps) {
  // prepareFunctionForInlining externalizes statics and drops unused
  // symbols, leaving gaps in the in-memory symbol ids.  The serializer
  // renumbers densely on write, so the text still round-trips.
  auto C = compileToIL(R"(
    int counter() {
      static int calls;
      calls = calls + 1;
      return calls;
    }
  )");
  il::Function *F = C->P->findFunction("counter");
  ASSERT_NE(F, nullptr);
  InlineStats Stats = prepareFunctionForInlining(*F);
  EXPECT_EQ(Stats.StaticsExternalized, 1u);
  expectRoundTripFixedPoint(il::serializeFunction(*F));
}

TEST(CatalogTest, RoundTripOptimizedILWithDoLoopsAndTriplets) {
  // Scalar + vector pipeline output exercises the (do ...) and
  // (triplet ...) serialized forms.
  auto R = driver::compileSource(R"(
    float a[1024], b[1024];
    void main() {
      int i;
      for (i = 0; i < 1024; i++)
        a[i] = b[i] * 2.0 + 1.0;
    }
  )");
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  bool SawVector = false;
  for (const auto &F : R->IL->getFunctions()) {
    std::string Text = il::serializeFunction(*F);
    SawVector = SawVector || Text.find("(triplet") != std::string::npos;
    expectRoundTripFixedPoint(Text);
  }
  EXPECT_TRUE(SawVector) << "fixture no longer vectorizes";
}

TEST(CatalogTest, RoundTripPreservesConflictFreeLoadsMark) {
  // The dependence pass marks assignments whose loads provably cannot
  // conflict with in-flight stores; codegen turns the mark into
  // [nosconf] memory ops.  A serialize/deserialize round trip (the
  // compile cache's restore path) must preserve it — dropping it keeps
  // the output *valid* but silently deoptimizes every cache-restored
  // function, which is exactly the kind of divergence the compile
  // server's byte-identity bar exists to catch.
  auto R = driver::compileSource(R"(
    float a[512], b[512], c[512];
    void main() {
      int i;
      for (i = 0; i < 512; i++)
        a[i] = b[i] + c[i];
    }
  )");
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  bool SawMark = false;
  for (const auto &F : R->IL->getFunctions()) {
    std::string Text = il::serializeFunction(*F);
    SawMark = SawMark || Text.find("(assign 1 ") != std::string::npos;
    expectRoundTripFixedPoint(Text);
  }
  EXPECT_TRUE(SawMark)
      << "fixture no longer produces conflict-free loads";
}

TEST(CatalogTest, AssignWithoutFlagAtomStillParses) {
  // Entries serialized before the conflict-free mark existed spell
  // assignments as (assign LHS RHS).  They must still read — as
  // not-conflict-free — so an old on-disk catalog or manifest degrades
  // to a cold-ish restore instead of a parse failure.
  std::string Legacy = "(function \"f\" (ret void) (fortran-pointers 0)\n"
                       " (symbols\n"
                       "  (sym 1 \"x\" int local 0)\n"
                       " )\n"
                       " (params)\n"
                       " (body\n"
                       "  (assign (var 1) (cint int 7))\n"
                       " ))\n";
  il::Program P;
  DiagnosticEngine Diags;
  il::Function *F = il::deserializeFunction(Legacy, P, Diags);
  ASSERT_NE(F, nullptr) << Diags.str();
  // Re-serializing writes the current form with the flag defaulted off.
  EXPECT_NE(il::serializeFunction(*F).find("(assign 0 "),
            std::string::npos);
}

TEST(CatalogTest, ConcurrentBuildsShareOneCacheStem) {
  // Several catalog builders (think: parallel CI jobs, or tcc-catalog
  // racing the tccd daemon) pointed at one manifest stem must not
  // corrupt it: flock serializes load/write-back, entries merge by key,
  // and every build still produces the canonical catalog.
  std::string Path = testing::TempDir() + "/tcc_catalog_cache_race.tcc-cache";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());

  std::string Canonical = libraryBuilder().build().Catalog.serialize();
  constexpr unsigned Builders = 6;
  std::vector<std::string> Serialized(Builders);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Builders; ++T)
    Threads.emplace_back([&, T] {
      CatalogBuildOptions Opts;
      Opts.Workers = 2;
      Opts.CacheFile = Path;
      CatalogBuildResult R = libraryBuilder().build(Opts);
      if (R.ok())
        Serialized[T] = R.Catalog.serialize();
    });
  for (auto &T : Threads)
    T.join();
  for (unsigned T = 0; T < Builders; ++T)
    EXPECT_EQ(Serialized[T], Canonical) << "builder " << T;

  // The surviving manifest is loadable and warm: a fresh build hits
  // every shard.
  CompileCache Manifest;
  DiagnosticEngine Diags;
  EXPECT_TRUE(CompileCache::load(Path, Manifest, Diags)) << Diags.str();
  EXPECT_GT(Manifest.shardCount(), 0u);
  CatalogBuildOptions Opts;
  Opts.CacheFile = Path;
  CatalogBuildResult Warm = libraryBuilder().build(Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.Diags.str();
  for (const ShardReport &S : Warm.Shards)
    EXPECT_TRUE(S.CacheHit) << S.File;
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

TEST(CatalogTest, RoundTripWholeCatalogText) {
  CatalogBuildResult R = libraryBuilder().build();
  ASSERT_TRUE(R.ok());
  std::string Text = R.Catalog.serialize();
  ProcedureCatalog Reparsed;
  DiagnosticEngine Diags;
  ASSERT_TRUE(ProcedureCatalog::parse(Text, Reparsed, Diags))
      << Diags.str();
  EXPECT_EQ(Reparsed.serialize(), Text);
}

//===----------------------------------------------------------------------===//
// Error paths: malformed catalog text
//===----------------------------------------------------------------------===//

TEST(CatalogTest, TruncatedListProducesLocatedDiagnostic) {
  // A body cut off mid-list: the reader must diagnose, not crash.
  std::string Body = "(function \"f\" (ret void) (fortran-pointers 0)\n"
                     " (symbols\n";
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse(frameEntry(Body), Out, Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unterminated list"), std::string::npos)
      << Diags.str();
  EXPECT_TRUE(Diags.diagnostics()[0].Loc.isValid()) << Diags.str();
}

TEST(CatalogTest, UnterminatedStringProducesLocatedDiagnostic) {
  std::string Body = "(function \"f (ret void))";
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse(frameEntry(Body), Out, Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unterminated string"), std::string::npos)
      << Diags.str();
  EXPECT_TRUE(Diags.diagnostics()[0].Loc.isValid()) << Diags.str();
}

TEST(CatalogTest, NonFunctionEntryProducesLocatedDiagnostic) {
  std::string Body = "(globals \"g\" int)";
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse(frameEntry(Body), Out, Diags));
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("not a function"), std::string::npos)
      << Diags.str();
}

TEST(CatalogTest, MalformedHeaderLengthProducesDiagnostic) {
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse("#entry banana\n(function)\n", Out,
                                       Diags));
  EXPECT_NE(Diags.str().find("malformed '#entry' length"),
            std::string::npos)
      << Diags.str();
}

TEST(CatalogTest, TruncatedEntryBodyProducesDiagnostic) {
  // Header claims more bytes than the file holds (a torn write).
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      ProcedureCatalog::parse("#entry 4096\n(function \"f\"", Out, Diags));
  EXPECT_NE(Diags.str().find("truncated catalog"), std::string::npos)
      << Diags.str();
}

TEST(CatalogTest, MissingHeaderProducesDiagnostic) {
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse("(function \"f\")\n", Out, Diags));
  EXPECT_NE(Diags.str().find("#entry"), std::string::npos) << Diags.str();
}

TEST(CatalogTest, DuplicateEntriesInCatalogTextAreDiagnosed) {
  auto C = compileToIL("int one() { return 1; }");
  std::string Body =
      il::serializeFunction(*C->P->findFunction("one"));
  std::string Text = frameEntry(Body) + frameEntry(Body);
  ProcedureCatalog Out;
  DiagnosticEngine Diags;
  EXPECT_FALSE(ProcedureCatalog::parse(Text, Out, Diags));
  EXPECT_NE(Diags.str().find("duplicate catalog entry for procedure 'one'"),
            std::string::npos)
      << Diags.str();
  // The first copy is still usable.
  EXPECT_TRUE(Out.contains("one"));
}

TEST(CatalogTest, GarbageTextDoesNotCrash) {
  const char *Garbage[] = {
      "#entry 3\n)))", "#entry 0\n", "#entry\n", "####",
      "#entry 18\n(function \"f\" ())",
      "#entry 12\n((((((((((((",
  };
  for (const char *Text : Garbage) {
    ProcedureCatalog Out;
    DiagnosticEngine Diags;
    ProcedureCatalog::parse(Text, Out, Diags);
    EXPECT_TRUE(Diags.hasErrors()) << "accepted: " << Text;
  }
}

//===----------------------------------------------------------------------===//
// Error paths: shard compilation and cross-shard conflicts
//===----------------------------------------------------------------------===//

TEST(CatalogTest, DuplicateAcrossShardsNamesBothFiles) {
  CatalogBuilder B;
  B.addSource("a.c", "int twice(int x) { return x + x; }");
  B.addSource("b.c", "int twice(int x) { return 2 * x; }");
  CatalogBuildOptions Opts;
  Opts.Workers = 2;
  CatalogBuildResult R = B.build(Opts);
  EXPECT_FALSE(R.ok());
  std::string Text = R.Diags.str();
  EXPECT_NE(Text.find("duplicate procedure 'twice'"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("a.c"), std::string::npos) << Text;
  EXPECT_NE(Text.find("b.c"), std::string::npos) << Text;
  // The first definition wins in the merged database.
  EXPECT_TRUE(R.Catalog.contains("twice"));
}

TEST(CatalogTest, ShardCompileErrorsCarryFileName) {
  CatalogBuilder B;
  B.addSource("good.c", "int ok() { return 1; }");
  B.addSource("broken.c", "int nope( { return; }");
  CatalogBuildResult R = B.build();
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.str().find("broken.c"), std::string::npos)
      << R.Diags.str();
  // The healthy shard still contributes.
  EXPECT_TRUE(R.Catalog.contains("ok"));
  ASSERT_EQ(R.Shards.size(), 2u);
  EXPECT_TRUE(R.Shards[0].Ok);
  EXPECT_FALSE(R.Shards[1].Ok);
}

//===----------------------------------------------------------------------===//
// Materialization failures name the entry
//===----------------------------------------------------------------------===//

TEST(CatalogTest, MaterializeNamesMalformedEntry) {
  // Well-formed framing and S-expression, semantically broken body (bad
  // storage class): accepted at parse time, rejected at materialization —
  // and the diagnostic must say which entry.
  std::string Body = "(function \"badstore\" (ret void) "
                     "(fortran-pointers 0)\n (symbols\n"
                     "  (sym 1 \"x\" int wat 0)\n )\n (params)\n (body\n ))";
  ProcedureCatalog Catalog;
  DiagnosticEngine ParseDiags;
  ASSERT_TRUE(
      ProcedureCatalog::parse(frameEntry(Body), Catalog, ParseDiags))
      << ParseDiags.str();

  il::Program P;
  DiagnosticEngine Diags;
  EXPECT_EQ(Catalog.materialize("badstore", P, Diags), nullptr);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("catalog entry 'badstore'"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("bad storage class"), std::string::npos) << Text;
  // The failed read may not leave a half-built function behind.
  EXPECT_EQ(P.findFunction("badstore"), nullptr);
}

TEST(CatalogTest, InlinerSurfacesMalformedCatalogEntry) {
  // The Inliner.cpp catalog-resolution path: a call site whose callee
  // exists in the catalog but cannot be materialized must fail the
  // compile with the entry named, not silently skip the call.
  std::string Body = "(function \"mangled\" (ret int) "
                     "(fortran-pointers 0)\n (symbols\n"
                     "  (sym 1 \"x\" int wat 0)\n )\n (params 1)\n (body\n ))";
  ProcedureCatalog Catalog;
  DiagnosticEngine ParseDiags;
  ASSERT_TRUE(
      ProcedureCatalog::parse(frameEntry(Body), Catalog, ParseDiags))
      << ParseDiags.str();

  auto C = compileToIL(R"(
    int mangled(int x);
    int g;
    void main() { g = mangled(7); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags, {}, &Catalog);
  EXPECT_TRUE(C->Diags.hasErrors());
  EXPECT_NE(C->Diags.str().find("catalog entry 'mangled'"),
            std::string::npos)
      << C->Diags.str();
  EXPECT_EQ(Stats.CallsInlined, 0u);
  EXPECT_EQ(Stats.CallsLeft, 1u);
}

//===----------------------------------------------------------------------===//
// Telemetry, file I/O, end-to-end inlining
//===----------------------------------------------------------------------===//

TEST(CatalogTest, TelemetryHasPerShardRecords) {
  CatalogBuildOptions Opts;
  Opts.Workers = 2;
  CatalogBuildResult R = libraryBuilder().build(Opts);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Telemetry.Passes.size(), std::size(LibraryFiles));
  // Shard records keep input order and flow through the same PassRecord
  // type the optimization pipeline uses.
  const remarks::PassRecord *Vec = R.Telemetry.find("catalog:vec.c");
  ASSERT_NE(Vec, nullptr);
  EXPECT_EQ(Vec->Stats.get("procedures"), 2u);
  EXPECT_GT(Vec->Stats.get("serializedBytes"), 0u);
  EXPECT_EQ(Vec->After.Functions, 2u);
  EXPECT_GE(Vec->Millis, 0.0);
  EXPECT_GT(R.Telemetry.TotalMillis, 0.0);
  EXPECT_EQ(R.Telemetry.Remarks.size(), std::size(LibraryFiles));
  // And the whole record serializes as JSON like any compile telemetry.
  std::ostringstream OS;
  R.Telemetry.writeJSON(OS);
  EXPECT_NE(OS.str().find("catalog:vec.c"), std::string::npos);
}

TEST(CatalogTest, SaveAndLoadCatalogFile) {
  CatalogBuildResult R = libraryBuilder().build();
  ASSERT_TRUE(R.ok());
  std::string Path = testing::TempDir() + "/tcc_catalog_test.tcat";
  DiagnosticEngine Diags;
  ASSERT_TRUE(saveCatalogFile(R.Catalog, Path, Diags)) << Diags.str();
  ProcedureCatalog Loaded;
  ASSERT_TRUE(loadCatalogFile(Path, Loaded, Diags)) << Diags.str();
  EXPECT_EQ(Loaded.serialize(), R.Catalog.serialize());
  std::remove(Path.c_str());

  ProcedureCatalog Missing;
  DiagnosticEngine MissingDiags;
  EXPECT_FALSE(loadCatalogFile(Path + ".does-not-exist", Missing,
                               MissingDiags));
  EXPECT_TRUE(MissingDiags.hasErrors());
}

TEST(CatalogTest, ParallelBuiltCatalogDrivesInlining) {
  // End to end: a catalog produced by the 8-worker sharded build feeds
  // the compiler exactly like a serially built one.
  CatalogBuildOptions Opts;
  Opts.Workers = 8;
  CatalogBuildResult Built = libraryBuilder().build(Opts);
  ASSERT_TRUE(Built.ok()) << Built.Diags.str();

  driver::CompilerOptions CompOpts;
  CompOpts.Catalog = &Built.Catalog;
  auto R = driver::compileSource(R"(
    void vfill(float *x, float v, int n);
    float vdot(float *x, float *y, int n);
    float u[512], v[512];
    float result;
    void main() {
      vfill(u, 2.0, 512);
      vfill(v, 0.25, 512);
      result = vdot(u, v, 512);
    }
  )",
                                 CompOpts);
  ASSERT_TRUE(R->ok()) << R->Diags.str();
  EXPECT_EQ(R->Stats.Inline.CallsInlined, 3u);
}

//===----------------------------------------------------------------------===//
// Shard compile-cache
//===----------------------------------------------------------------------===//

TEST(CatalogTest, ShardCacheWarmRunHitsEveryShard) {
  std::string Path = testing::TempDir() + "/tcc_catalog_cache_warm.tcc-cache";
  std::remove(Path.c_str());

  CatalogBuildOptions Opts;
  Opts.Workers = 4;
  Opts.CacheFile = Path;
  CatalogBuildResult Cold = libraryBuilder().build(Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.Diags.str();
  for (const ShardReport &S : Cold.Shards)
    EXPECT_FALSE(S.CacheHit) << S.File;

  CatalogBuildResult Warm = libraryBuilder().build(Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.Diags.str();
  for (const ShardReport &S : Warm.Shards)
    EXPECT_TRUE(S.CacheHit) << S.File;

  // The warm catalog is byte-identical to the cold one, and the per-shard
  // telemetry carries the reuse counter.
  EXPECT_EQ(Warm.Catalog.serialize(), Cold.Catalog.serialize());
  unsigned Hits = 0;
  for (const remarks::PassRecord &Rec : Warm.Telemetry.Passes)
    Hits += Rec.Stats.get("cacheHit");
  EXPECT_EQ(Hits, static_cast<unsigned>(Warm.Shards.size()));
  std::remove(Path.c_str());
}

TEST(CatalogTest, ShardCacheMutatedSourceMissesOnlyThatShard) {
  std::string Path = testing::TempDir() + "/tcc_catalog_cache_miss.tcc-cache";
  std::remove(Path.c_str());

  CatalogBuildOptions Opts;
  Opts.Workers = 4;
  Opts.CacheFile = Path;
  CatalogBuildResult Cold = libraryBuilder().build(Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.Diags.str();

  // Any text change (even whitespace) must invalidate exactly the shard
  // that changed.
  CatalogBuilder Mutated;
  for (const auto &[File, Text] : LibraryFiles)
    Mutated.addSource(File, std::string(File) == "dot.c"
                                ? std::string(Text) + "\n"
                                : std::string(Text));
  CatalogBuildResult Warm = Mutated.build(Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.Diags.str();
  for (const ShardReport &S : Warm.Shards)
    EXPECT_EQ(S.CacheHit, S.File != "dot.c") << S.File;
  EXPECT_EQ(Warm.Catalog.serialize(), Cold.Catalog.serialize());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Fault containment in the worker pool
//===----------------------------------------------------------------------===//

TEST(CatalogTest, InjectedWorkerFaultCostsExactlyOneShard) {
  CatalogBuildOptions Opts;
  Opts.FaultInject = "catalog:mat.c:throw";

  // A worker that dies mid-shard may not take the process (or any other
  // shard) with it, and the merged catalog of survivors must stay
  // byte-identical across worker counts.
  std::string Previous;
  for (unsigned Workers : {1u, 2u, 8u}) {
    Opts.Workers = Workers;
    CatalogBuildResult R = libraryBuilder().build(Opts);
    EXPECT_FALSE(R.ok()) << Workers << " workers";
    std::string Text = R.Diags.str();
    EXPECT_NE(Text.find("mat.c"), std::string::npos) << Text;
    EXPECT_NE(Text.find("internal error"), std::string::npos) << Text;
    EXPECT_NE(Text.find("worker contained the failure"), std::string::npos)
        << Text;

    unsigned Failed = 0;
    for (const ShardReport &S : R.Shards) {
      if (!S.Ok)
        ++Failed;
      EXPECT_EQ(S.Ok, S.File != "mat.c") << S.File;
    }
    EXPECT_EQ(Failed, 1u);

    // The survivors' procedures are all present; the dead shard's are
    // not.
    EXPECT_TRUE(R.Catalog.contains("vfill"));
    EXPECT_FALSE(R.Catalog.contains("mscale"));

    // The per-shard telemetry record carries the failure bit.
    const remarks::PassRecord *Rec = nullptr;
    for (const auto &P : R.Telemetry.Passes)
      if (P.Pass == "catalog:mat.c")
        Rec = &P;
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(Rec->Stats.get("failed"), 1u);

    const std::string Merged = R.Catalog.serialize();
    if (!Previous.empty()) {
      EXPECT_EQ(Merged, Previous) << Workers << " workers";
    }
    Previous = Merged;
  }
}

TEST(CatalogTest, MalformedInjectionSpecFailsTheBuildUpFront) {
  CatalogBuildOptions Opts;
  Opts.FaultInject = "catalog:mat.c:frobnicate";
  CatalogBuildResult R = libraryBuilder().build(Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.str().find("fault-injection spec"), std::string::npos)
      << R.Diags.str();
  // No shard ran: a typo'd spec must never produce a silently
  // un-injected build.
  EXPECT_TRUE(R.Shards.empty());
}

} // namespace
