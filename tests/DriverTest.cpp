//===----------------------------------------------------------------------===//
///
/// \file
/// Driver-level tests: option plumbing, catalogs through the pipeline,
/// region markers, and parameterized property sweeps — trip counts
/// around the strip boundary, strip lengths, and processor counts must
/// never change program results.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::driver;

namespace {

//===----------------------------------------------------------------------===//
// Property: results are invariant across trip counts at every level
//===----------------------------------------------------------------------===//

/// A kernel whose checksum has a closed form: sum of a[i] = 3i + 7 over n.
std::string tripSource(int N) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf), R"(
    float a[%d]; int sum;
    void main() {
      int i;
      for (i = 0; i < %d; i++)
        a[i] = 3 * i + 7;
      sum = 0;
      for (i = 0; i < %d; i++)
        sum += (int)a[i];
    }
  )",
                N > 0 ? N : 1, N, N);
  return Buf;
}

class TripCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(TripCountSweep, AllLevelsComputeClosedForm) {
  int N = GetParam();
  long Expected = 0;
  for (int I = 0; I < N; ++I)
    Expected += 3 * I + 7;

  for (auto &Opts : {CompilerOptions::noOpt(), CompilerOptions::full(),
                     CompilerOptions::parallel()}) {
    titan::TitanConfig C;
    C.NumProcessors = 2;
    auto Out = compileAndRun(tripSource(N), Opts, C);
    ASSERT_TRUE(Out.Run.Ok) << "n=" << N << ": " << Out.Run.Error;
    EXPECT_EQ(Out.Machine->readInt(Out.Machine->addressOf("sum")),
              Expected)
        << "n=" << N;
  }
}

// Trip counts straddling the strip length (32), including empty and
// single-iteration loops.
INSTANTIATE_TEST_SUITE_P(StripBoundaries, TripCountSweep,
                         ::testing::Values(0, 1, 2, 31, 32, 33, 63, 64, 65,
                                           100, 256));

//===----------------------------------------------------------------------===//
// Property: strip length never changes results
//===----------------------------------------------------------------------===//

class StripLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(StripLengthSweep, ResultsInvariant) {
  CompilerOptions Opts = CompilerOptions::parallel();
  Opts.Vectorize.StripLength = GetParam();
  titan::TitanConfig C;
  C.NumProcessors = 3;
  auto Out = compileAndRun(tripSource(200), Opts, C);
  ASSERT_TRUE(Out.Run.Ok) << Out.Run.Error;
  long Expected = 0;
  for (int I = 0; I < 200; ++I)
    Expected += 3 * I + 7;
  EXPECT_EQ(Out.Machine->readInt(Out.Machine->addressOf("sum")), Expected);
}

INSTANTIATE_TEST_SUITE_P(Lengths, StripLengthSweep,
                         ::testing::Values(1, 2, 8, 16, 32, 64, 128, 512,
                                           2048));

//===----------------------------------------------------------------------===//
// Property: processor count changes cycles, never results
//===----------------------------------------------------------------------===//

class ProcessorSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProcessorSweep, ResultsInvariantAndNotSlower) {
  titan::TitanConfig C;
  C.NumProcessors = GetParam();
  auto Out = compileAndRun(tripSource(2048), CompilerOptions::parallel(), C);
  ASSERT_TRUE(Out.Run.Ok) << Out.Run.Error;
  long Expected = 0;
  for (int I = 0; I < 2048; ++I)
    Expected += 3 * I + 7;
  EXPECT_EQ(Out.Machine->readInt(Out.Machine->addressOf("sum")), Expected);

  titan::TitanConfig One;
  One.NumProcessors = 1;
  auto Base = compileAndRun(tripSource(2048), CompilerOptions::parallel(),
                            One);
  ASSERT_TRUE(Base.Run.Ok);
  // Allow 5% slack: the post-region pipeline state differs slightly
  // between rewound and non-rewound timelines (the serial reduction that
  // follows dominates this program).
  EXPECT_LE(Out.Run.Cycles,
            Base.Run.Cycles + Base.Run.Cycles / 20);
}

INSTANTIATE_TEST_SUITE_P(Processors, ProcessorSweep,
                         ::testing::Values(1, 2, 3, 4));

//===----------------------------------------------------------------------===//
// Options plumbing
//===----------------------------------------------------------------------===//

TEST(DriverTest, DiagnosticsSurfaceParseErrors) {
  auto R = compileSource("void main( { }", {});
  EXPECT_FALSE(R->ok());
  EXPECT_GT(R->Diags.errorCount(), 0u);
}

TEST(DriverTest, DiagnosticsSurfaceSemanticErrors) {
  auto R = compileSource("void main() { undeclared = 3; }", {});
  EXPECT_FALSE(R->ok());
}

TEST(DriverTest, RunFailsGracefullyWithoutMain) {
  auto Out = compileAndRun("int helper(int x) { return x; }", {});
  EXPECT_FALSE(Out.Run.Ok);
  EXPECT_NE(Out.Run.Error.find("main"), std::string::npos);
}

TEST(DriverTest, CatalogFlowsThroughOptions) {
  // Library → catalog → application compile via CompilerOptions::Catalog.
  inliner::ProcedureCatalog Catalog;
  {
    auto Lib = compileSource("float halve(float x) { return x / 2.0; }",
                             CompilerOptions::noOpt());
    ASSERT_TRUE(Lib->ok());
    Catalog.store(*Lib->IL->findFunction("halve"));
  }
  CompilerOptions Opts = CompilerOptions::full();
  Opts.Catalog = &Catalog;
  auto Out = compileAndRun(R"(
    float halve(float x);
    float r;
    void main() { r = halve(9.0); }
  )",
                           Opts);
  ASSERT_TRUE(Out.Run.Ok) << Out.Run.Error;
  EXPECT_FLOAT_EQ(Out.Machine->readFloat(Out.Machine->addressOf("r")),
                  4.5f);
  EXPECT_EQ(Out.Compile->Stats.Inline.CallsInlined, 1u);
}

TEST(DriverTest, RegionMarkersMeasureKernelOnly) {
  const char *Source = R"(
    float a[512]; float s;
    void titan_tic(void);
    void titan_toc(void);
    void main() {
      int i;
      for (i = 0; i < 512; i++) a[i] = 1.0;
      titan_tic();
      s = 0.0;
      for (i = 0; i < 512; i++) s = s + a[i];
      titan_toc();
    }
  )";
  auto Out = compileAndRun(Source, CompilerOptions::full());
  ASSERT_TRUE(Out.Run.Ok) << Out.Run.Error;
  EXPECT_GT(Out.Run.RegionCycles, 0u);
  EXPECT_LT(Out.Run.RegionCycles, Out.Run.Cycles);
  EXPECT_EQ(Out.Run.RegionFlops, 512u);
  EXPECT_FLOAT_EQ(Out.Machine->readFloat(Out.Machine->addressOf("s")),
                  512.0f);
}

TEST(DriverTest, IVSubBacktrackingOptionPlumbs) {
  const char *Source = R"(
    float a[64], b[64];
    void main() {
      float *p; float *q; int n;
      p = a; q = b; n = 64;
      while (n) { *p++ = *q++; n--; }
    }
  )";
  CompilerOptions On = CompilerOptions::full();
  auto A = compileSource(Source, On);
  CompilerOptions Off = CompilerOptions::full();
  Off.IVSub.EnableBacktracking = false;
  auto B = compileSource(Source, Off);
  ASSERT_TRUE(A->ok() && B->ok());
  EXPECT_GT(A->Stats.IVSub.Backtracks, 0u);
  EXPECT_EQ(B->Stats.IVSub.Backtracks, 0u);
  EXPECT_GT(B->Stats.IVSub.Passes, A->Stats.IVSub.Passes);
}

TEST(DriverTest, ScalarOnlyProducesNoVectorInstrs) {
  auto Out = compileAndRun(tripSource(128), CompilerOptions::scalarOnly());
  ASSERT_TRUE(Out.Run.Ok);
  EXPECT_EQ(Out.Run.VectorInstrs, 0u);
}

TEST(DriverTest, FullProducesVectorInstrs) {
  auto Out = compileAndRun(tripSource(128), CompilerOptions::full());
  ASSERT_TRUE(Out.Run.Ok);
  EXPECT_GT(Out.Run.VectorInstrs, 0u);
}

TEST(DriverTest, StageCaptureOffByDefault) {
  auto R = compileSource(tripSource(16), CompilerOptions::full());
  EXPECT_TRUE(R->Stages.empty());
}

} // namespace
