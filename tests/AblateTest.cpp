//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation sweep tests: spec enumeration (leave-one-out and prefix
/// families, registry shadowing), the two-sample attribution math on
/// synthetic rows, line-atomicity of the JSON-Lines appenders under
/// concurrent writers, fault-isolated sweep cells, and the end-to-end
/// daxpy acceptance property (vectorize is the dominant MFLOPS
/// contributor).
///
//===----------------------------------------------------------------------===//

#include "ablate/Ablate.h"
#include "pipeline/PassRegistry.h"
#include "pipeline/Passes.h"
#include "support/JSONWriter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace tcc;
using namespace tcc::ablate;

namespace {

//===----------------------------------------------------------------------===//
// Spec enumeration
//===----------------------------------------------------------------------===//

TEST(SpecEnumeration, LeaveOneOutDropsEachPassOnce) {
  std::vector<std::string> Base = {"a", "b", "c"};
  auto Specs = pipeline::leaveOneOutSpecs(Base);
  ASSERT_EQ(Specs.size(), 3u);
  EXPECT_EQ(Specs[0], (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(Specs[1], (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Specs[2], (std::vector<std::string>{"a", "b"}));
}

TEST(SpecEnumeration, PrefixChainIncludesEmptyBaseline) {
  std::vector<std::string> Base = {"a", "b"};
  auto Specs = pipeline::prefixSpecs(Base);
  ASSERT_EQ(Specs.size(), 3u);
  EXPECT_TRUE(Specs[0].empty());
  EXPECT_EQ(Specs[1], (std::vector<std::string>{"a"}));
  EXPECT_EQ(Specs[2], (std::vector<std::string>{"a", "b"}));
}

TEST(SpecEnumeration, JoinAndSplitRoundTrip) {
  std::vector<std::string> Base = {"inline", "dce"};
  EXPECT_EQ(pipeline::joinSpec(Base), "inline,dce");
  EXPECT_EQ(pipeline::splitSpec("inline, dce"), Base);
  EXPECT_TRUE(pipeline::splitSpec("").empty());
  // Empty segments are preserved so callers can diagnose them.
  auto WithEmpty = pipeline::splitSpec("a,,b");
  ASSERT_EQ(WithEmpty.size(), 3u);
  EXPECT_EQ(WithEmpty[1], "");
}

TEST(SpecEnumeration, LeaveOneOutModeEmitsFullLOOAndPrefixCells) {
  AblateOptions Opts;
  Opts.Mode = SweepMode::LeaveOneOut;
  Opts.BasePasses = {"whiletodo", "ivsub", "vectorize"};
  DiagnosticEngine Diags;
  auto Cells = enumerateSpecs(Opts, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  // full + 3 leave-one-out + prefixes of length 0..2 (length 3 would
  // duplicate "full").
  ASSERT_EQ(Cells.size(), 7u);
  EXPECT_EQ(Cells[0].Id, "full");
  EXPECT_EQ(Cells[0].Spec, "whiletodo,ivsub,vectorize");
  EXPECT_EQ(Cells[1].Id, "-whiletodo");
  EXPECT_EQ(Cells[1].Spec, "ivsub,vectorize");
  EXPECT_EQ(Cells[1].Ablated, "whiletodo");
  EXPECT_EQ(Cells[4].Id, "prefix:0");
  EXPECT_EQ(Cells[4].Spec, "");
  EXPECT_EQ(Cells[6].Id, "prefix:2");
  EXPECT_EQ(Cells[6].Spec, "whiletodo,ivsub");
}

TEST(SpecEnumeration, UnknownBasePassIsDiagnosed) {
  AblateOptions Opts;
  Opts.BasePasses = {"whiletodo", "frobnicate"};
  DiagnosticEngine Diags;
  auto Cells = enumerateSpecs(Opts, Diags);
  EXPECT_TRUE(Cells.empty());
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("frobnicate"), std::string::npos);
}

TEST(SpecEnumeration, CustomModeValidatesEachSpec) {
  AblateOptions Opts;
  Opts.Mode = SweepMode::Custom;
  Opts.CustomSpecs = {"vectorize,whiletodo", "dce"};
  DiagnosticEngine Diags;
  auto Cells = enumerateSpecs(Opts, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Cells.size(), 3u); // full + 2 custom
  EXPECT_EQ(Cells[1].Id, "custom:0");
  EXPECT_EQ(Cells[1].Spec, "vectorize,whiletodo");

  Opts.CustomSpecs = {"vectorize,,dce"};
  DiagnosticEngine Diags2;
  EXPECT_TRUE(enumerateSpecs(Opts, Diags2).empty());
  EXPECT_TRUE(Diags2.hasErrors());
}

//===----------------------------------------------------------------------===//
// Registry shadowing (the documented later-registration-wins contract)
//===----------------------------------------------------------------------===//

TEST(PassRegistryShadowing, LatestRegistrationWinsWithoutDuplicates) {
  pipeline::PassRegistry Reg;
  Reg.registerPass("first", pipeline::createDCEPass);
  Reg.registerPass("target", pipeline::createDCEPass);
  Reg.registerPass("last", pipeline::createDCEPass);
  // Shadow "target" with a different factory.
  Reg.registerPass("target", pipeline::createVectorizePass);

  // names() keeps registration order, with no duplicate token — a
  // duplicate would make an ablation sweep enumerate the pass twice.
  auto Names = Reg.names();
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "first");
  EXPECT_EQ(Names[1], "target"); // shadowing does not reorder
  EXPECT_EQ(Names[2], "last");
  std::set<std::string> Unique(Names.begin(), Names.end());
  EXPECT_EQ(Unique.size(), Names.size());

  // create() honors the latest registration.
  auto P = Reg.create("target");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(std::string(P->name()), "vectorize");
  EXPECT_TRUE(Reg.contains("target"));
}

//===----------------------------------------------------------------------===//
// Attribution math on synthetic rows
//===----------------------------------------------------------------------===//

CellResult cell(const std::string &Id, const std::string &Spec, double Cycles,
                double Mflops, uint64_t VInstr, double CompileMs,
                const std::string &Ablated = "", int PrefixLen = -1) {
  CellResult C;
  C.Kernel = "synthetic";
  C.Spec = {Id, Spec, Ablated, PrefixLen};
  C.Ok = true;
  C.Cycles = Cycles;
  C.Mflops = Mflops;
  C.VectorInstrs = VInstr;
  C.CompileMillis = CompileMs;
  return C;
}

TEST(Attribution, TwoSampleShapleySeparatesEnablerFromWorker) {
  // The daxpy shape in miniature: "conv" enables "vec"; removing either
  // kills vectorization, but only adding vec (after conv) realizes the
  // win.  Universe: conv, vec.
  std::vector<std::string> Base = {"conv", "vec"};
  std::vector<CellResult> Cells;
  Cells.push_back(cell("full", "conv,vec", 800, 2.0, 40, 1.0));
  Cells.push_back(cell("-conv", "vec", 2400, 0.7, 0, 0.8, "conv"));
  Cells.push_back(cell("-vec", "conv", 1200, 1.3, 0, 0.9, "vec"));
  Cells.push_back(cell("prefix:0", "", 2400, 0.7, 0, 0.1, "", 0));
  Cells.push_back(cell("prefix:1", "conv", 2400, 0.7, 0, 0.5, "", 1));

  auto Ranked = attributeKernel(Cells, Base);
  ASSERT_EQ(Ranked.size(), 2u);

  // vec: leave-one-out delta 0.7, prefix delta 2.0 - 0.7 = 1.3 (the
  // prefix through the last pass is the full cell) -> contribution 1.0.
  EXPECT_EQ(Ranked[0].Pass, "vec");
  EXPECT_TRUE(Ranked[0].HaveLeaveOneOut);
  EXPECT_TRUE(Ranked[0].HavePrefix);
  EXPECT_DOUBLE_EQ(Ranked[0].MflopsDelta, 2.0 - 1.3);
  EXPECT_DOUBLE_EQ(Ranked[0].PrefixMflopsDelta, 2.0 - 0.7);
  EXPECT_DOUBLE_EQ(Ranked[0].Contribution, (0.7 + 1.3) / 2.0);
  EXPECT_DOUBLE_EQ(Ranked[0].MarginalCycles, 1200 - 800);
  EXPECT_EQ(Ranked[0].VectorInstrsDelta, 40);
  EXPECT_DOUBLE_EQ(Ranked[0].CompileMillisCost, 1.0 - 0.9);

  // conv: leave-one-out delta 1.3 (it absorbs the vectorization loss),
  // prefix delta 0.0 (conversion alone buys nothing) -> 0.65 < 1.0: the
  // enabler ranks below the worker even though its removal hurts more.
  EXPECT_EQ(Ranked[1].Pass, "conv");
  EXPECT_DOUBLE_EQ(Ranked[1].MflopsDelta, 2.0 - 0.7);
  EXPECT_DOUBLE_EQ(Ranked[1].PrefixMflopsDelta, 0.0);
  EXPECT_DOUBLE_EQ(Ranked[1].Contribution, 1.3 / 2.0);
}

TEST(Attribution, FailedCellsDropTheirMarginalOnly) {
  std::vector<std::string> Base = {"a", "b"};
  std::vector<CellResult> Cells;
  Cells.push_back(cell("full", "a,b", 100, 4.0, 8, 1.0));
  CellResult Bad = cell("-a", "b", 0, 0, 0, 0, "a");
  Bad.Ok = false;
  Bad.Error = "injected";
  Cells.push_back(Bad);
  Cells.push_back(cell("-b", "a", 200, 2.0, 0, 0.5, "b"));

  auto Ranked = attributeKernel(Cells, Base);
  // "a" has no usable marginal at all (no prefix cells either); only
  // "b" is attributed.
  ASSERT_EQ(Ranked.size(), 1u);
  EXPECT_EQ(Ranked[0].Pass, "b");
  EXPECT_TRUE(Ranked[0].HaveLeaveOneOut);
  EXPECT_FALSE(Ranked[0].HavePrefix);
  EXPECT_DOUBLE_EQ(Ranked[0].Contribution, 2.0);
}

TEST(Attribution, NoFullCellMeansNoAttribution) {
  std::vector<std::string> Base = {"a"};
  std::vector<CellResult> Cells;
  CellResult Bad = cell("full", "a", 0, 0, 0, 0);
  Bad.Ok = false;
  Cells.push_back(Bad);
  Cells.push_back(cell("-a", "", 100, 1.0, 0, 0.5, "a"));
  EXPECT_TRUE(attributeKernel(Cells, Base).empty());
}

TEST(Attribution, CustomCellsDiffAgainstFull) {
  std::vector<std::string> Base = {"a", "b"};
  std::vector<CellResult> Cells;
  Cells.push_back(cell("full", "a,b", 100, 4.0, 8, 1.0));
  Cells.push_back(cell("custom:0", "b,a", 150, 3.0, 8, 1.1));
  auto Ranked = attributeKernel(Cells, Base);
  ASSERT_EQ(Ranked.size(), 1u);
  EXPECT_NE(Ranked[0].Pass.find("custom:0"), std::string::npos);
  EXPECT_NE(Ranked[0].Pass.find("b,a"), std::string::npos);
  EXPECT_DOUBLE_EQ(Ranked[0].MflopsDelta, 1.0);
  EXPECT_DOUBLE_EQ(Ranked[0].MarginalCycles, 50.0);
}

//===----------------------------------------------------------------------===//
// JSON-Lines writers
//===----------------------------------------------------------------------===//

TEST(JsonLines, ConcurrentAppendersStayLineAtomic) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "tcc_ablate_atomic_test";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  std::string Path = (Dir / "rows.json").string();

  // Two writers, distinct recognizable rows, long enough that an
  // interleaved partial write would be visible.
  const int RowsPerWriter = 200;
  auto Writer = [&](char Tag) {
    std::string Row = "{\"writer\": \"";
    Row += Tag;
    Row += "\", \"payload\": \"";
    Row += std::string(512, Tag);
    Row += "\"}";
    for (int I = 0; I < RowsPerWriter; ++I)
      ASSERT_TRUE(json::appendJsonLine(Path, Row));
  };
  std::thread A(Writer, 'a');
  std::thread B(Writer, 'b');
  A.join();
  B.join();

  std::ifstream IS(Path);
  ASSERT_TRUE(IS.good());
  std::string Line;
  int Count = 0, CountA = 0;
  while (std::getline(IS, Line)) {
    ++Count;
    // Every line is exactly one whole row from one writer.
    ASSERT_EQ(Line.size(), 542u) << "interleaved or truncated row: " << Line;
    ASSERT_EQ(Line.front(), '{');
    ASSERT_EQ(Line.back(), '}');
    char Tag = Line[12];
    ASSERT_TRUE(Tag == 'a' || Tag == 'b') << Line;
    ASSERT_EQ(Line.find(Tag == 'a' ? 'b' : 'a', 28), std::string::npos)
        << "mixed-writer row: " << Line;
    if (Tag == 'a')
      ++CountA;
  }
  EXPECT_EQ(Count, 2 * RowsPerWriter);
  EXPECT_EQ(CountA, RowsPerWriter);
  fs::remove_all(Dir);
}

TEST(JsonLines, DoubleFormattingIsExactForCycleCounts) {
  // Cycle counts above 1e6 used to round through %.6g; the ablation
  // differ subtracts them, so they must survive exactly.
  std::ostringstream OS;
  json::JSONWriter W(OS, 0);
  W.beginArray();
  W.value(12345678.0);       // integral: exact integer text
  W.value(0.5);              // short non-integral: stays short
  W.value(0.6924330000000001); // needs full round-trip precision
  W.endArray();
  EXPECT_EQ(OS.str(), "[12345678,0.5,0.6924330000000001]");
}

TEST(JsonLines, CellRowsParseAndRoundTripFields) {
  CellResult C = cell("-vectorize", "inline,dce", 2500000.0, 1.25, 0, 3.5,
                      "vectorize");
  C.MissedByPass.emplace_back("vectorize", 3u);
  std::string Row = cellJsonRow(C);
  EXPECT_EQ(Row.find('\n'), std::string::npos);
  EXPECT_NE(Row.find("\"kind\": \"cell\""), std::string::npos);
  EXPECT_NE(Row.find("\"cycles\": 2500000"), std::string::npos);
  EXPECT_NE(Row.find("\"ablated\": \"vectorize\""), std::string::npos);
  EXPECT_NE(Row.find("\"vectorize\": 3"), std::string::npos);

  PassAttribution A;
  A.Pass = "vectorize";
  A.HaveLeaveOneOut = true;
  A.Contribution = 0.75;
  A.MarginalCycles = 405;
  std::string ARow = attributionJsonRow("daxpy", A);
  EXPECT_NE(ARow.find("\"kind\": \"attribution\""), std::string::npos);
  EXPECT_NE(ARow.find("\"marginalCycles\": 405"), std::string::npos);
}

TEST(JsonLines, PipelineRowParserReadsBenchRows) {
  PipelineRow Row;
  ASSERT_TRUE(parsePipelineRow(
      R"row({"kernel": "daxpy", "variant": "inline+vector (1 proc)", "region": true, "cycles": 812, "mflops": 1.97, "vectorInstrs": 40})row",
      Row));
  EXPECT_EQ(Row.Kernel, "daxpy");
  EXPECT_EQ(Row.Variant, "inline+vector (1 proc)");
  EXPECT_DOUBLE_EQ(Row.Cycles, 812.0);
  EXPECT_DOUBLE_EQ(Row.Mflops, 1.97);
  EXPECT_TRUE(Row.Region);

  // Pre-"region" rows still parse (scope defaults to whole-run).
  ASSERT_TRUE(parsePipelineRow(
      R"({"kernel": "k", "variant": "v", "cycles": 10, "mflops": 0.5})", Row));
  EXPECT_FALSE(Row.Region);

  EXPECT_FALSE(parsePipelineRow("not json at all", Row));
  EXPECT_FALSE(parsePipelineRow(R"({"kernel": "k"})", Row));
}

//===----------------------------------------------------------------------===//
// Sweeps
//===----------------------------------------------------------------------===//

/// Temp-dir JSON path helper: sweeps write JSON lines; tests park them
/// in an isolated file.
struct TempJson {
  std::filesystem::path Dir;
  std::string Path;
  TempJson(const char *Name) {
    Dir = std::filesystem::temp_directory_path() / Name;
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
    Path = (Dir / "BENCH_ablation.json").string();
  }
  ~TempJson() { std::filesystem::remove_all(Dir); }
  std::vector<std::string> lines() const {
    std::vector<std::string> Out;
    std::ifstream IS(Path);
    std::string Line;
    while (std::getline(IS, Line))
      Out.push_back(Line);
    return Out;
  }
};

TEST(Sweep, FaultingSpecCellFailsWithoutKillingTheSweep) {
  TempJson Json("tcc_ablate_fault_test");
  AblateOptions Opts;
  Opts.Mode = SweepMode::Custom;
  Opts.CustomSpecs = {"inline,vectorize", "whiletodo,ivsub,vectorize"};
  Opts.Kernels = {"daxpy"};
  // "inline" is a module pass: an injected fault there is a clean
  // compile error, i.e. a failed *cell*.
  Opts.FaultInject = "inline:*:throw";
  Opts.JsonPath = Json.Path;
  Opts.PipelineJsonPath.clear();
  Opts.Workers = 2;

  DiagnosticEngine Diags;
  SweepResult R = runSweep(Opts, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  // full (contains inline) and custom:0 (contains inline) fail; the
  // inline-free custom:1 survives.
  ASSERT_EQ(R.Cells.size(), 3u);
  EXPECT_EQ(R.FailedCells, 2u);
  for (const CellResult &C : R.Cells) {
    if (C.Spec.Spec.find("inline") != std::string::npos) {
      EXPECT_FALSE(C.Ok) << C.Spec.Id;
      EXPECT_NE(C.Error.find("inline"), std::string::npos) << C.Error;
    } else {
      EXPECT_TRUE(C.Ok) << C.Spec.Id << ": " << C.Error;
      EXPECT_GT(C.Mflops, 0.0);
    }
  }
  // Failed cells still serialize (ok:false plus the error), and every
  // line is a complete single-line object.
  auto Lines = Json.lines();
  EXPECT_GE(Lines.size(), 3u);
  for (const std::string &L : Lines) {
    EXPECT_EQ(L.front(), '{');
    EXPECT_EQ(L.back(), '}');
  }
  // The report names the failures instead of hiding them.
  std::string Report = renderReport(R);
  EXPECT_NE(Report.find("failed cells (2)"), std::string::npos) << Report;
}

TEST(Sweep, ContainedFunctionPassFaultIsACellFinding) {
  TempJson Json("tcc_ablate_contained_test");
  AblateOptions Opts;
  Opts.Mode = SweepMode::Custom;
  Opts.CustomSpecs = {"whiletodo,ivsub,vectorize"};
  Opts.Kernels = {"whileconv"};
  // vectorize is a function pass: the sandbox contains the fault, the
  // cell still measures (unvectorized), and the fault count surfaces.
  Opts.FaultInject = "vectorize:*:throw";
  Opts.JsonPath = Json.Path;
  Opts.PipelineJsonPath.clear();

  DiagnosticEngine Diags;
  SweepResult R = runSweep(Opts, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  for (const CellResult &C : R.Cells) {
    if (C.Spec.Spec.find("vectorize") == std::string::npos)
      continue;
    EXPECT_TRUE(C.Ok) << C.Spec.Id << ": " << C.Error;
    EXPECT_GT(C.ContainedFaults, 0u) << C.Spec.Id;
  }
}

TEST(Sweep, DaxpyLeaveOneOutRanksVectorizeDominant) {
  TempJson Json("tcc_ablate_daxpy_test");
  AblateOptions Opts;
  Opts.Mode = SweepMode::LeaveOneOut;
  Opts.Kernels = {"daxpy"};
  Opts.JsonPath = Json.Path;
  Opts.PipelineJsonPath.clear();
  Opts.Workers = 2;

  DiagnosticEngine Diags;
  SweepResult R = runSweep(Opts, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(R.FailedCells, 0u);
  ASSERT_EQ(R.Attribution.size(), 1u);
  const KernelAttribution &KA = R.Attribution[0];
  EXPECT_EQ(KA.Kernel, "daxpy");
  ASSERT_FALSE(KA.Passes.empty());
  // The acceptance property: the two-sample estimate credits the
  // vectorize pass, not its enablers, with the dominant MFLOPS win.
  EXPECT_EQ(KA.Passes[0].Pass, "vectorize") << renderReport(R);
  EXPECT_GT(KA.Passes[0].Contribution, 0.0);
  // And removing vectorize zeroes the vector instructions.
  for (const PassAttribution &A : KA.Passes) {
    if (A.Pass == "vectorize") {
      EXPECT_GT(A.VectorInstrsDelta, 0);
    }
  }
  // Attribution rows landed in the JSON too.
  bool SawAttribution = false;
  for (const std::string &L : Json.lines())
    if (L.find("\"kind\": \"attribution\"") != std::string::npos)
      SawAttribution = true;
  EXPECT_TRUE(SawAttribution);
}

TEST(Sweep, WorkerCountsAgreeOnMeasurements) {
  // The pool fills cells by index: 1 worker and 4 workers must produce
  // identical measurements (compileMillis excepted — it is wall-clock).
  AblateOptions Opts;
  Opts.Mode = SweepMode::LeaveOneOut;
  Opts.Kernels = {"striplen"};
  Opts.JsonPath.clear();
  Opts.PipelineJsonPath.clear();

  DiagnosticEngine D1, D4;
  Opts.Workers = 1;
  SweepResult R1 = runSweep(Opts, D1);
  Opts.Workers = 4;
  SweepResult R4 = runSweep(Opts, D4);
  ASSERT_EQ(R1.Cells.size(), R4.Cells.size());
  for (size_t I = 0; I < R1.Cells.size(); ++I) {
    EXPECT_EQ(R1.Cells[I].Spec.Id, R4.Cells[I].Spec.Id);
    EXPECT_EQ(R1.Cells[I].Ok, R4.Cells[I].Ok);
    EXPECT_DOUBLE_EQ(R1.Cells[I].Cycles, R4.Cells[I].Cycles);
    EXPECT_DOUBLE_EQ(R1.Cells[I].Mflops, R4.Cells[I].Mflops);
    EXPECT_EQ(R1.Cells[I].VectorInstrs, R4.Cells[I].VectorInstrs);
  }
}

TEST(Sweep, UnknownKernelIsDiagnosed) {
  AblateOptions Opts;
  Opts.Kernels = {"frobnicate"};
  Opts.JsonPath.clear();
  Opts.PipelineJsonPath.clear();
  DiagnosticEngine Diags;
  runSweep(Opts, Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unknown kernel"), std::string::npos);
  EXPECT_NE(Diags.str().find("daxpy"), std::string::npos); // teaches
}

} // namespace
