//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence-analysis differential: every corpus program and every
/// bench kernel is compiled and run under both -depanalysis= modes
/// (the conservative reachdef baseline and the Andersen points-to +
/// MemorySSA stack), and the simulator's global memory must come back
/// byte-identical.  Swapping the memory-dependence implementation may
/// change which loops vectorize — never what the program computes.
///
//===----------------------------------------------------------------------===//

#include "ablate/Kernels.h"
#include "dependence/DependenceAnalysis.h"
#include "driver/Compiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace tcc;

namespace {

/// One differential input: a name for the test ID plus the C source.
struct DiffInput {
  std::string Name;
  std::string Source;
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<DiffInput> diffInputs() {
  std::vector<DiffInput> Out;
  const std::filesystem::path Dir(TCC_CORPUS_DIR);
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &P : Paths)
    Out.push_back({"corpus_" + std::filesystem::path(P).stem().string(),
                   readFile(P)});
  for (const ablate::BenchKernel &K : ablate::benchKernels())
    Out.push_back({"kernel_" + K.Name, K.Source});
  return Out;
}

driver::CompilerOptions optionsFor(dep::DepAnalysisKind Kind) {
  driver::CompilerOptions O = driver::CompilerOptions::full();
  O.DepAnalysis = Kind;
  return O;
}

/// Byte-for-byte comparison of every named global between the two runs.
/// Same source, same pipeline toggles: layouts could still differ if the
/// two modes vectorize different loops (temporary globals), so compare
/// by (name, contents) rather than raw memory images.
void compareGlobals(const driver::RunOutcome &Ref,
                    const driver::RunOutcome &Var, const std::string &Name) {
  const titan::TitanProgram &RefP = Ref.Compile->Machine;
  const titan::TitanProgram &VarP = Var.Compile->Machine;
  std::vector<std::pair<std::string, int64_t>> Extents(
      RefP.GlobalAddresses.begin(), RefP.GlobalAddresses.end());
  std::sort(Extents.begin(), Extents.end(),
            [](const auto &A, const auto &B) { return A.second < B.second; });
  for (size_t I = 0; I < Extents.size(); ++I) {
    int64_t End =
        (I + 1 < Extents.size()) ? Extents[I + 1].second : RefP.GlobalSize;
    auto It = VarP.GlobalAddresses.find(Extents[I].first);
    ASSERT_NE(It, VarP.GlobalAddresses.end())
        << Name << ": global '" << Extents[I].first
        << "' missing under memssa";
    int64_t Words = (End - Extents[I].second) / 4;
    for (int64_t W = 0; W < Words; ++W) {
      int32_t R = Ref.Machine->readInt(Extents[I].second + 4 * W);
      int32_t V = Var.Machine->readInt(It->second + 4 * W);
      ASSERT_EQ(R, V) << Name << ": global '" << Extents[I].first
                      << "' word " << W
                      << " diverges between -depanalysis modes";
    }
  }
}

class DepAnalysisDifferential : public ::testing::TestWithParam<DiffInput> {};

std::string testName(const ::testing::TestParamInfo<DiffInput> &Info) {
  std::string N = Info.param.Name;
  for (char &C : N)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

} // namespace

TEST_P(DepAnalysisDifferential, IdenticalMemory) {
  const DiffInput &In = GetParam();
  ASSERT_FALSE(In.Source.empty()) << In.Name;

  driver::RunOutcome Ref = driver::compileAndRun(
      In.Source, optionsFor(dep::DepAnalysisKind::ReachDef));
  ASSERT_TRUE(Ref.Compile->ok())
      << In.Name << ": reachdef compile failed";
  ASSERT_TRUE(Ref.Run.Ok) << In.Name << ": reachdef run failed: "
                          << Ref.Run.Error;

  driver::RunOutcome Var = driver::compileAndRun(
      In.Source, optionsFor(dep::DepAnalysisKind::MemSSA));
  ASSERT_TRUE(Var.Compile->ok()) << In.Name << ": memssa compile failed";
  ASSERT_TRUE(Var.Run.Ok) << In.Name
                          << ": memssa run failed: " << Var.Run.Error;

  compareGlobals(Ref, Var, In.Name);
}

TEST(DepAnalysisDifferential, InputsArePresent) {
  // Both sides of the sweep must be found: the corpus glob and the
  // kernel suite.  An empty list would pass vacuously.
  size_t Corpus = 0, Kernels = 0;
  for (const DiffInput &In : diffInputs())
    (In.Name.rfind("corpus_", 0) == 0 ? Corpus : Kernels) += 1;
  EXPECT_GE(Corpus, 10u);
  EXPECT_GE(Kernels, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, DepAnalysisDifferential,
                         ::testing::ValuesIn(diffInputs()), testName);
