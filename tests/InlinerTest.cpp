//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the inliner: call-site expansion (the Section 9 in_ temp
/// shape), recursion guards, procedure catalogs, static demotion and
/// externalization, and array-row argument promotion.
///
//===----------------------------------------------------------------------===//

#include "inliner/Inliner.h"

#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::inliner;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

TEST(InlinerTest, SimpleExpansion) {
  auto C = compileToIL(R"(
    int g;
    int twice(int x) { return x + x; }
    void main() { g = twice(21); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  // No call remains; the parameter temp carries the in_ prefix.
  EXPECT_EQ(Printed.find("twice("), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in_x = 21;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("lb_"), std::string::npos) << Printed;
}

TEST(InlinerTest, DaxpyShapeMatchesPaper) {
  auto C = compileToIL(R"(
    float a[100], b[100], c[100];
    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0) return;
      if (alpha == 0) return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }
    void main()
    {
      daxpy(a, b, c, 1.0, 100);
    }
  )");
  inlineCalls(*C->P, C->Diags);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  // Parameter temporaries as in the Section 9 listing.
  EXPECT_NE(Printed.find("in_x = &a;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in_y = &b;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in_z = &c;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in_n = 100;"), std::string::npos) << Printed;
  // Returns became gotos to the end label.
  EXPECT_NE(Printed.find("goto lb_"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("while (in_n)"), std::string::npos) << Printed;
}

TEST(InlinerTest, NestedInliningBottomUp) {
  auto C = compileToIL(R"(
    int g;
    int inner(int x) { return x * 2; }
    int outer(int x) { return inner(x) + 1; }
    void main() { g = outer(10); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  // inner into outer, then the expanded outer into main.
  EXPECT_EQ(Stats.CallsInlined, 2u);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  EXPECT_EQ(Printed.find("outer("), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("inner("), std::string::npos) << Printed;
}

TEST(InlinerTest, RecursionNotExpanded) {
  auto C = compileToIL(R"(
    int g;
    int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
    void main() { g = fact(5); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_GT(Stats.RecursionSkipped, 0u);
  // fact's recursive body still calls fact.
  std::string Printed = printFunction(*C->P->findFunction("fact"));
  EXPECT_NE(Printed.find("fact("), std::string::npos) << Printed;
}

TEST(InlinerTest, MutualRecursionNotExpanded) {
  auto C = compileToIL(R"(
    int g;
    int isOdd(int n);
    int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
    int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
    void main() { g = isEven(10); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_GT(Stats.RecursionSkipped, 0u);
}

TEST(InlinerTest, NeverInlineRespected) {
  auto C = compileToIL(R"(
    int g;
    int f(int x) { return x + 1; }
    void main() { g = f(1); }
  )");
  InlineOptions Opts;
  Opts.NeverInline.insert("f");
  InlineStats Stats = inlineCalls(*C->P, C->Diags, Opts);
  EXPECT_EQ(Stats.CallsInlined, 0u);
  EXPECT_EQ(Stats.CallsLeft, 1u);
}

TEST(InlinerTest, SizeLimitRespected) {
  auto C = compileToIL(R"(
    int g;
    int big(int x) {
      x += 1; x += 2; x += 3; x += 4; x += 5;
      x += 6; x += 7; x += 8; x += 9; x += 10;
      return x;
    }
    void main() { g = big(0); }
  )");
  InlineOptions Opts;
  Opts.MaxCalleeStmts = 3;
  InlineStats Stats = inlineCalls(*C->P, C->Diags, Opts);
  EXPECT_EQ(Stats.CallsInlined, 0u);
}

TEST(InlinerTest, StaticExternalized) {
  auto C = compileToIL(R"(
    int g;
    int counter() {
      static int count = 5;
      count += 1;
      return count;
    }
    void main() { g = counter() + counter(); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.StaticsExternalized, 1u);
  // The global carries the function-qualified name and the initializer.
  Symbol *G = C->P->findGlobal("counter.count");
  ASSERT_NE(G, nullptr);
  ASSERT_TRUE(G->hasInit());
  EXPECT_EQ(G->getInit().IntValue, 5);
  // Both inlined copies reference the shared global.
  std::string Printed = printFunction(*C->P->findFunction("main"));
  EXPECT_NE(Printed.find("counter.count"), std::string::npos) << Printed;
}

TEST(InlinerTest, ReinitializedStaticDemoted) {
  // The static is assigned before every use: it cannot observe a prior
  // invocation and demotes to automatic storage (paper Section 7).
  auto C = compileToIL(R"(
    int g;
    int scratch(int x) {
      static int t;
      t = x * 2;
      return t + 1;
    }
    void main() { g = scratch(4); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.StaticsDemoted, 1u);
  EXPECT_EQ(Stats.StaticsExternalized, 0u);
  EXPECT_EQ(C->P->findGlobal("scratch.t"), nullptr);
}

TEST(InlinerTest, CatalogRoundTrip) {
  // Build a library program, store into a catalog, inline into a fresh
  // program that only has a prototype.
  auto Lib = compileToIL(R"(
    float dot(float *a, float *b, int n) {
      float s; int i;
      s = 0.0;
      for (i = 0; i < n; i++) s = s + a[i] * b[i];
      return s;
    }
  )");
  ProcedureCatalog Catalog;
  Catalog.store(*Lib->P->findFunction("dot"));
  EXPECT_TRUE(Catalog.contains("dot"));

  auto App = compileToIL(R"(
    float x[8], y[8]; float r;
    float dot(float *a, float *b, int n);
    void main() { r = dot(x, y, 8); }
  )");
  InlineStats Stats = inlineCalls(*App->P, App->Diags, {}, &Catalog);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  std::string Printed = printFunction(*App->P->findFunction("main"));
  EXPECT_EQ(Printed.find("dot("), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in_a"), std::string::npos) << Printed;
}

TEST(InlinerTest, CatalogSerializeDeserialize) {
  auto Lib = compileToIL(R"(
    int half(int x) { return x / 2; }
    int third(int x) { return x / 3; }
  )");
  ProcedureCatalog Catalog;
  Catalog.store(*Lib->P->findFunction("half"));
  Catalog.store(*Lib->P->findFunction("third"));
  std::string Text = Catalog.serialize();
  ProcedureCatalog Restored = ProcedureCatalog::deserialize(Text);
  EXPECT_TRUE(Restored.contains("half"));
  EXPECT_TRUE(Restored.contains("third"));
  EXPECT_EQ(Restored.entries().size(), 2u);
}

TEST(InlinerTest, ArrayRowArgumentPromoted) {
  // Passing a matrix row by reference: the address argument is
  // substituted into the body so references become named-array accesses.
  auto C = compileToIL(R"(
    float m[4][4]; float r;
    float rowsum(float *row, int n) {
      float s; int j;
      s = 0.0;
      for (j = 0; j < n; j++) s = s + row[j];
      return s;
    }
    void main() {
      int i; float total;
      total = 0.0;
      for (i = 0; i < 4; i++)
        total = total + rowsum(&m[i][0], 4);
      r = total;
    }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  EXPECT_GE(Stats.RowArgsPromoted, 1u);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  // The body references &m[i][0] directly rather than the opaque in_row.
  EXPECT_NE(Printed.find("&m[i][0]"), std::string::npos) << Printed;
}

TEST(InlinerTest, BumpedPointerArgNotPromoted) {
  // daxpy reassigns its pointer formals, so substitution must not fire.
  auto C = compileToIL(R"(
    float a[10], b[10];
    void copy(float *x, float *y, int n) {
      for (; n; n--) *x++ = *y++;
    }
    void main() { copy(a, b, 10); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  EXPECT_EQ(Stats.RowArgsPromoted, 0u);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  EXPECT_NE(Printed.find("in_x = &a;"), std::string::npos) << Printed;
}

TEST(InlinerTest, VoidCallAndResultCall) {
  auto C = compileToIL(R"(
    int g; int h;
    void setg(int v) { g = v; }
    int getg() { return g; }
    void main() {
      setg(7);
      h = getg() + 1;
    }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.CallsInlined, 2u);
  std::string Printed = printFunction(*C->P->findFunction("main"));
  EXPECT_NE(Printed.find("g = in_v;"), std::string::npos) << Printed;
}

TEST(InlinerTest, LabelsUniquifiedAcrossTwoSites) {
  auto C = compileToIL(R"(
    int g;
    int clamp(int x) {
      if (x > 10) goto high;
      return x;
      high: return 10;
    }
    void main() { g = clamp(4) + clamp(40); }
  )");
  InlineStats Stats = inlineCalls(*C->P, C->Diags);
  EXPECT_EQ(Stats.CallsInlined, 2u);
  // Two distinct copies of the label exist.
  std::string Printed = printFunction(*C->P->findFunction("main"));
  EXPECT_NE(Printed.find("in1_L_high"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("in2_L_high"), std::string::npos) << Printed;
}

} // namespace
