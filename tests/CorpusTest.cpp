//===----------------------------------------------------------------------===//
///
/// \file
/// Corpus replay: every checked-in program under tests/corpus/ — bench
/// kernels, pinned generator output, and reduced reproducers of past
/// findings — is swept through the differential oracle and must come
/// back clean: -O0 compiles and runs, and every sampled pass pipeline
/// produces byte-identical global memory.
///
/// This is the regression net under the fuzzing fleet: a campaign finds
/// a bug once, the reducer shrinks it, the reproducer lands here, and
/// from then on the exact shape is re-checked on every ctest run.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace tcc;
using namespace tcc::fuzz;

namespace {

std::vector<std::string> corpusEntries() {
  std::vector<std::string> Out;
  const std::filesystem::path Dir(TCC_CORPUS_DIR);
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".c")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

std::string testName(const ::testing::TestParamInfo<std::string> &Info) {
  std::string Stem = std::filesystem::path(Info.param).stem().string();
  for (char &C : Stem)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Stem;
}

} // namespace

TEST_P(CorpusReplay, OracleClean) {
  const std::string Source = readFile(GetParam());
  ASSERT_FALSE(Source.empty()) << GetParam();

  OracleOptions OO;
  OO.Variants = 4;
  // A fixed sample seed: the corpus run is the same set of pipelines
  // every time, so a red entry is reproducible by name alone.
  OO.SampleSeed = 0x7c0a5u;
  OracleResult R = runOracle(Source, OO);
  ASSERT_TRUE(R.RefOk) << GetParam() << ": " << R.RefError;
  for (const VariantResult &V : R.Variants)
    EXPECT_EQ(V.Class, DivergenceClass::Ok)
        << GetParam() << " under -passes=" << V.Spec << ": " << V.Detail;
}

TEST(CorpusReplay, CorpusIsPresent) {
  // The glob must find the checked-in entries; an empty corpus means the
  // TCC_CORPUS_DIR wiring broke and every replay silently vanished.
  EXPECT_GE(corpusEntries().size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllEntries, CorpusReplay,
                         ::testing::ValuesIn(corpusEntries()), testName);
