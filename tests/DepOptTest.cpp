//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the dependence-driven optimizations of paper Section 6:
/// scalar replacement of distance-1 recurrences and strength reduction
/// of address arithmetic (with invariant hoisting and CSE).
///
//===----------------------------------------------------------------------===//

#include "depopt/DepOpt.h"

#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::depopt;

namespace {

struct Compiled {
  ast::AstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> P;
};

std::unique_ptr<Compiled> compileToIL(const std::string &Source) {
  auto R = std::make_unique<Compiled>();
  R->P = std::make_unique<il::Program>();
  Lexer L(Source, R->Diags);
  Parser Parse(L.lexAll(), R->Ctx, R->P->getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, *R->P, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors()) << R->Diags.str();
  return R;
}

Function *prepare(Compiled &C, const std::string &Name) {
  Function *F = C.P->findFunction(Name);
  EXPECT_NE(F, nullptr);
  scalar::convertWhileLoops(*F);
  scalar::substituteInductionVariables(*F);
  scalar::propagateConstants(*F);
  scalar::eliminateDeadCode(*F);
  return F;
}

const char *BacksolveSource = R"(
  float x[1001], y[1000], z[1000];
  void backsolve(int n) {
    float *p; float *q; int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
  }
)";

TEST(ScalarReplaceTest, BacksolvePullsValueIntoRegister) {
  auto C = compileToIL(BacksolveSource);
  Function *F = prepare(*C, "backsolve");
  ScalarReplaceStats Stats = applyScalarReplacement(*F);
  EXPECT_EQ(Stats.LoopsApplied, 1u);
  EXPECT_GE(Stats.LoadsEliminated, 1u);
  std::string Printed = printFunction(*F);
  // The register temp appears (the paper's f_reg1), preloaded before the
  // loop, used in place of the q load, and fed by the computed value.
  EXPECT_NE(Printed.find("f_reg_"), std::string::npos) << Printed;
  // The store now writes the register.
  EXPECT_NE(Printed.find("= f_reg_"), std::string::npos) << Printed;
}

TEST(ScalarReplaceTest, NoReplacementWithoutRecurrence) {
  auto C = compileToIL(R"(
    float a[100], b[100];
    void f() {
      int i;
      float s;
      s = 0.0;
      for (i = 0; i < 100; i++)
        s = s + a[i] * b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  ScalarReplaceStats Stats = applyScalarReplacement(*F);
  EXPECT_EQ(Stats.LoopsApplied, 0u);
}

TEST(ScalarReplaceTest, DistanceTwoNotReplaced) {
  auto C = compileToIL(R"(
    float x[1002];
    void f(int n) {
      int i;
      for (i = 2; i < n; i++)
        x[i] = x[i - 2] + 1.0;
    }
  )");
  Function *F = prepare(*C, "f");
  ScalarReplaceStats Stats = applyScalarReplacement(*F);
  EXPECT_EQ(Stats.LoopsApplied, 0u);
}

TEST(StrengthReduceTest, EliminatesMultipliesInBacksolve) {
  auto C = compileToIL(BacksolveSource);
  Function *F = prepare(*C, "backsolve");
  applyScalarReplacement(*F);
  StrengthReduceStats Stats = applyStrengthReduction(*F);
  EXPECT_EQ(Stats.LoopsApplied, 1u);
  EXPECT_GE(Stats.AddressTemps, 3u); // p-store, z, y
  std::string Printed = printFunction(*F);
  // The loop body carries no `4 * i` multiplies; pointer temps bump by 4.
  DoLoopStmt *D = nullptr;
  forEachStmt(F->getBody(), [&D](Stmt *S) {
    if (!D && S->getKind() == Stmt::DoLoopKind)
      D = static_cast<DoLoopStmt *>(S);
  });
  ASSERT_NE(D, nullptr);
  std::string Body = printBlock(D->getBody());
  // No index multiplies remain in the body; pointer temps bump by 4.
  EXPECT_EQ(Body.find("* temp_i"), std::string::npos) << Printed;
  EXPECT_NE(Body.find("temp_p"), std::string::npos) << Printed;
  EXPECT_NE(Body.find("+ 4;"), std::string::npos) << Printed;
}

TEST(StrengthReduceTest, CommonAddressesShareTemp) {
  auto C = compileToIL(R"(
    float a[100], b[100];
    void f(int n) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = b[i] * b[i] + 1.0;
    }
  )");
  Function *F = prepare(*C, "f");
  StrengthReduceStats Stats = applyStrengthReduction(*F);
  // b[i] appears twice with the same address form: one temp, one CSE hit.
  EXPECT_EQ(Stats.AddressTemps, 2u);
  EXPECT_GE(Stats.SharedTemps, 1u);
}

TEST(StrengthReduceTest, InvariantAddressHoisted) {
  auto C = compileToIL(R"(
    float a[100], b[100];
    void f(int n, int k) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = b[k];
    }
  )");
  Function *F = prepare(*C, "f");
  StrengthReduceStats Stats = applyStrengthReduction(*F);
  EXPECT_GE(Stats.InvariantsHoisted, 1u);
}

TEST(StrengthReduceTest, VectorLoopsUntouched) {
  auto C = compileToIL(R"(
    float a[100], b[100];
    void f() {
      int i;
      for (i = 0; i < 100; i++)
        a[i] = b[i];
    }
  )");
  Function *F = prepare(*C, "f");
  StrengthReduceStats Stats = applyStrengthReduction(*F);
  // Applied to the serial loop version is fine; this test just checks it
  // doesn't crash and reports coherent stats.
  EXPECT_LE(Stats.SharedTemps, Stats.RefsRewritten);
}

TEST(StrengthReduceTest, OuterLoopIndexTreatedInvariant) {
  // Row pointer arithmetic in a nest: the inner loop reduces `m[i][j]`
  // with the outer index folded into the invariant offset.
  auto C = compileToIL(R"(
    float m[8][8]; float v[8]; float r[8];
    void f() {
      int i; int j;
      for (i = 0; i < 8; i++) {
        float s;
        s = 0.0;
        for (j = 0; j < 8; j++)
          s = s + m[i][j] * v[j];
        r[i] = s;
      }
    }
  )");
  Function *F = prepare(*C, "f");
  StrengthReduceStats Stats = applyStrengthReduction(*F);
  EXPECT_GE(Stats.LoopsApplied, 1u);
}

} // namespace
