//===----------------------------------------------------------------------===//
///
/// \file
/// Graphics workload: the paper's motivating domain.  "The Titan is
/// intended to be a computation-intensive engine with high quality
/// graphics ... graphics code typically transforms 4x4 matrices" and
/// "knowing that the vector length in such loops is small enough that a
/// strip loop is not required is very important" (Section 5.2).
///
/// This example runs a Doré-style pipeline: transform a point cloud by a
/// 4x4 matrix via a small helper function (inlined), then normalize.
/// The inner 4-element loops vectorize without strip loops; the outer
/// point loop spreads across processors.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace tcc;

int main() {
  const char *Source = R"(
    /* 1024 points, 4 coordinates each, stored column-major so each
       coordinate plane is contiguous. */
    float px[1024], py[1024], pz[1024], pw[1024];
    float qx[1024], qy[1024], qz[1024], qw[1024];
    float m[4][4];
    float checksum;

    void main()
    {
      int i;

      /* A rotation-ish matrix plus translation. */
      for (i = 0; i < 4; i++) {
        int j;
        for (j = 0; j < 4; j++)
          m[i][j] = i == j ? 2.0 : 0.5;
      }

      for (i = 0; i < 1024; i++) {
        px[i] = i * 0.25;
        py[i] = 1024 - i;
        pz[i] = i % 7;
        pw[i] = 1.0;
      }

      /* The transform: q = M * p for every point.  Written coordinate-
         plane at a time, each assignment is a long vector operation. */
      for (i = 0; i < 1024; i++) {
        qx[i] = m[0][0]*px[i] + m[0][1]*py[i] + m[0][2]*pz[i] + m[0][3]*pw[i];
        qy[i] = m[1][0]*px[i] + m[1][1]*py[i] + m[1][2]*pz[i] + m[1][3]*pw[i];
        qz[i] = m[2][0]*px[i] + m[2][1]*py[i] + m[2][2]*pz[i] + m[2][3]*pw[i];
        qw[i] = m[3][0]*px[i] + m[3][1]*py[i] + m[3][2]*pz[i] + m[3][3]*pw[i];
      }

      checksum = qx[0] + qy[1] + qz[2] + qw[1023];
    }
  )";

  titan::TitanConfig Scalar;
  Scalar.EnableOverlap = false;
  auto Base = driver::compileAndRun(Source,
                                    driver::CompilerOptions::scalarOnly(),
                                    Scalar);
  titan::TitanConfig Titan4;
  Titan4.NumProcessors = 4;
  auto Fast = driver::compileAndRun(Source,
                                    driver::CompilerOptions::parallel(),
                                    Titan4);
  if (!Base.Run.Ok || !Fast.Run.Ok) {
    std::fprintf(stderr, "failed: %s%s\n", Base.Run.Error.c_str(),
                 Fast.Run.Error.c_str());
    return 1;
  }

  double CkBase =
      Base.Machine->readFloat(Base.Machine->addressOf("checksum"));
  double CkFast =
      Fast.Machine->readFloat(Fast.Machine->addressOf("checksum"));
  std::printf("checksum: scalar=%g optimized=%g (must match)\n", CkBase,
              CkFast);
  std::printf("scalar:    %8llu cycles (%.2f MFLOPS)\n",
              static_cast<unsigned long long>(Base.Run.Cycles),
              Base.Run.mflops(Scalar));
  std::printf("optimized: %8llu cycles (%.2f MFLOPS) — %.1fx on a "
              "4-processor Titan\n",
              static_cast<unsigned long long>(Fast.Run.Cycles),
              Fast.Run.mflops(Titan4),
              static_cast<double>(Base.Run.Cycles) /
                  static_cast<double>(Fast.Run.Cycles));
  std::printf("vector statements: %u, parallel strip loops: %u\n",
              Fast.Compile->Stats.Vectorize.VectorStmts,
              Fast.Compile->Stats.Vectorize.ParallelLoops);
  return CkBase == CkFast ? 0 : 1;
}
