//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-ablate — the ablation sweep driver: which pass buys what?
///
///   tcc-ablate [-mode=leave-one-out|prefix|custom] [-specs=S;S...]
///              [-kernels=a,b] [-passes=BASE] [-P n] [-j<N>] [-cache=STEM]
///              [-o FILE] [-pipeline-json=FILE] [-fault-inject=S] [-q]
///
///   -mode=M          leave-one-out (default): full pipeline, each pass
///                    removed once, plus the prefix chain — attribution
///                    averages both marginals (a two-sample Shapley
///                    estimate) so enabler passes don't absorb the
///                    vectorizer's credit.
///                    prefix: the prefix chain only (in-order increments).
///                    custom: the -specs= list, each diffed against full.
///   -specs=S;S...    custom mode cells, ';'-separated -passes= strings
///   -kernels=a,b     kernel subset (default: the whole bench suite)
///   -passes=BASE     the pass universe, comma-separated registered names
///                    (default: the full default pipeline; with -P > 1 it
///                    grows the "spread" pass so the sweep ablates it too)
///   -P n             simulated processors (1-4): every cell compiles for
///                    and runs on an n-processor Titan; invalid counts
///                    are rejected, counts above the Titan's four clamp
///   -j<N>            worker threads over cells (-j0 = all hardware
///                    threads; default)
///   -cache=STEM      compile-cache manifest stem: each (kernel, spec)
///                    cell caches in STEM.<kernel>.<spec>, so a re-run
///                    sweep recompiles nothing that didn't change
///   -o FILE          JSON-Lines output (default BENCH_ablation.json;
///                    "" disables)
///   -pipeline-json=F cross-reference bench rows from F (default
///                    BENCH_pipeline.json; missing file is fine)
///   -fault-inject=S  deterministic fault injection forwarded to every
///                    cell compile (TCC_FAULT_INJECT appends)
///   -q               suppress the report (JSON only)
///
/// Every cell compiles through the pass sandbox: a faulting spec is a
/// failed *cell* in the report and the JSON, never a dead sweep — the
/// tool exits 0 as long as the sweep itself ran.  Exit 2 is reserved for
/// usage errors and unwritable output.
///
//===----------------------------------------------------------------------===//

#include "ablate/Ablate.h"
#include "ablate/Kernels.h"
#include "titan/TitanMachine.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace tcc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tcc-ablate [-mode=leave-one-out|prefix|custom] [-specs=S;S...]\n"
      "                  [-kernels=a,b] [-passes=BASE] [-P n] [-j<N>] "
      "[-cache=STEM]\n"
      "                  [-o FILE] [-pipeline-json=FILE] [-fault-inject=S] "
      "[-q]\n"
      "                  [-depanalysis=reachdef|memssa]\n"
      "       tcc-ablate -dump-kernels=DIR   write each bench kernel to\n"
      "                                      DIR/<name>.c and exit\n");
}

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t At = S.find(Sep, Start);
    if (At == std::string::npos) {
      if (Start < S.size())
        Out.push_back(S.substr(Start));
      break;
    }
    Out.push_back(S.substr(Start, At - Start));
    Start = At + 1;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  ablate::AblateOptions Opts;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-dump-kernels=", 0) == 0) {
      // Materializes the embedded bench suite as real .c files — CI's
      // way of driving the same seven kernels through tcc, tcc-client,
      // and tccd from the shell.
      std::string Dir = Arg.substr(std::strlen("-dump-kernels="));
      for (const ablate::BenchKernel &K : ablate::benchKernels()) {
        std::string Path = Dir + "/" + K.Name + ".c";
        std::FILE *F = std::fopen(Path.c_str(), "w");
        if (!F) {
          std::fprintf(stderr, "tcc-ablate: cannot write '%s'\n",
                       Path.c_str());
          return 2;
        }
        std::fwrite(K.Source.data(), 1, K.Source.size(), F);
        std::fclose(F);
        std::printf("%s\n", Path.c_str());
      }
      return 0;
    }
    if (Arg.rfind("-mode=", 0) == 0) {
      std::string M = Arg.substr(std::strlen("-mode="));
      if (M == "leave-one-out") {
        Opts.Mode = ablate::SweepMode::LeaveOneOut;
      } else if (M == "prefix") {
        Opts.Mode = ablate::SweepMode::Prefix;
      } else if (M == "custom") {
        Opts.Mode = ablate::SweepMode::Custom;
      } else {
        std::fprintf(stderr, "tcc-ablate: unknown mode '%s'\n", M.c_str());
        usage();
        return 2;
      }
    } else if (Arg.rfind("-specs=", 0) == 0) {
      Opts.CustomSpecs = splitOn(Arg.substr(std::strlen("-specs=")), ';');
    } else if (Arg.rfind("-kernels=", 0) == 0) {
      Opts.Kernels = splitOn(Arg.substr(std::strlen("-kernels=")), ',');
    } else if (Arg.rfind("-passes=", 0) == 0) {
      Opts.BasePasses = splitOn(Arg.substr(std::strlen("-passes=")), ',');
    } else if (Arg.rfind("-j", 0) == 0 && Arg != "-j") {
      Opts.Workers = static_cast<unsigned>(std::atoi(Arg.c_str() + 2));
    } else if (Arg == "-j" && I + 1 < argc) {
      Opts.Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "-P" && I + 1 < argc) {
      const char *Val = argv[++I];
      char *End = nullptr;
      long N = std::strtol(Val, &End, 10);
      if (End == Val || *End != '\0' || N <= 0) {
        std::fprintf(stderr,
                     "tcc-ablate: invalid -P value '%s' (expected a "
                     "processor count of at least 1)\n",
                     Val);
        usage();
        return 2;
      }
      if (N > titan::TitanConfig::MaxProcessors)
        N = titan::TitanConfig::MaxProcessors;
      Opts.NumProcessors = static_cast<int>(N);
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg == "-o" && I + 1 < argc) {
      Opts.JsonPath = argv[++I];
    } else if (Arg.rfind("-o=", 0) == 0) {
      Opts.JsonPath = Arg.substr(std::strlen("-o="));
    } else if (Arg.rfind("-pipeline-json=", 0) == 0) {
      Opts.PipelineJsonPath = Arg.substr(std::strlen("-pipeline-json="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg.rfind("-depanalysis=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("-depanalysis="));
      if (!dep::parseDepAnalysisKind(Name, Opts.DepAnalysis)) {
        std::fprintf(stderr, "tcc-ablate: unknown -depanalysis value '%s'\n",
                     Name.c_str());
        usage();
        return 2;
      }
    } else if (Arg == "-q") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "tcc-ablate: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (const char *Env = std::getenv("TCC_FAULT_INJECT"); Env && *Env) {
    if (!Opts.FaultInject.empty())
      Opts.FaultInject += ',';
    Opts.FaultInject += Env;
  }

  DiagnosticEngine Diags;
  ablate::SweepResult R = ablate::runSweep(Opts, Diags);
  for (const auto &D : Diags.diagnostics())
    std::fprintf(stderr, "tcc-ablate: %s\n", D.Message.c_str());
  if (Diags.hasErrors())
    return 2;

  if (!Quiet)
    std::fputs(ablate::renderReport(R).c_str(), stdout);

  std::printf("tcc-ablate: %s sweep, %zu cells (%u failed), %.1f ms%s%s\n",
              ablate::sweepModeName(Opts.Mode), R.Cells.size(), R.FailedCells,
              R.TotalMillis, Opts.JsonPath.empty() ? "" : " -> ",
              Opts.JsonPath.c_str());
  // Failed cells are a finding, not a tool failure: the sweep completed
  // and reported them, so downstream automation can keep consuming the
  // JSON.
  return 0;
}
