/* The paper's Section 2 kernel: daxpy with a while-style loop and a
 * scalar recurrence.  The daxpy loop inlines and vectorizes; the
 * partial-sum loop is refused (cyclic dependence on s) — compile with
 * -remarks=- to see both decisions.
 *
 *   tcc -passes=whiletodo,ivsub,vectorize -verify-each -remarks=- \
 *       examples/daxpy.c
 */
float a[1024], b[1024], c[1024];
float s;

void daxpy(float *x, float *y, float *z, float alpha, int n)
{
  if (n <= 0) return;
  if (alpha == 0) return;
  for (; n; n--)
    *x++ = *y++ + alpha * *z++;
}

void main()
{
  int i;
  for (i = 0; i < 1024; i++) { b[i] = i; c[i] = 2 * i; }
  daxpy(a, b, c, 3.0, 1024);
  s = 0.0;
  for (i = 0; i < 1024; i++)
    s = s + a[i];
}
