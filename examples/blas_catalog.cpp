//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-file inlining from a procedure catalog (paper Section 7):
/// "math libraries can be 'compiled' into databases and used as a base
/// for inlining, much as include directories are used as a source for
/// header files."
///
/// Step 1 compiles a small BLAS-style library into a catalog of
/// serialized IL.  Step 2 compiles an application that only has
/// prototypes for the library routines; the inliner pulls the bodies out
/// of the catalog, after which the whole solver vectorizes.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Lower.h"
#include "inliner/Inliner.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace tcc;

/// Compiles library source to IL and stores every function in a catalog.
static bool buildCatalog(const char *LibrarySource,
                         inliner::ProcedureCatalog &Catalog) {
  DiagnosticEngine Diags;
  il::Program P;
  Lexer Lex(LibrarySource, Diags);
  ast::AstContext Ctx;
  Parser Parse(Lex.lexAll(), Ctx, P.getTypes(), Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  lowerTranslationUnit(TU, P, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "library failed to compile:\n%s", Diags.str().c_str());
    return false;
  }
  for (const auto &F : P.getFunctions()) {
    inliner::prepareFunctionForInlining(*F);
    Catalog.store(*F);
  }
  return true;
}

int main() {
  // ---- The "math library" translation unit ----
  const char *LibrarySource = R"(
    void vfill(float *x, float v, int n) {
      for (; n; n--)
        *x++ = v;
    }
    void vaxpy(float *x, float *y, float alpha, int n) {
      for (; n; n--) {
        *x = *x + alpha * *y++;
        x++;
      }
    }
    float vdot(float *x, float *y, int n) {
      float s;
      s = 0.0;
      for (; n; n--)
        s = s + *x++ * *y++;
      return s;
    }
  )";

  inliner::ProcedureCatalog Catalog;
  if (!buildCatalog(LibrarySource, Catalog))
    return 1;
  std::printf("catalog holds %zu procedures (%zu bytes serialized)\n",
              Catalog.entries().size(), Catalog.serialize().size());

  // The catalog round-trips through its on-disk text form.
  inliner::ProcedureCatalog Restored =
      inliner::ProcedureCatalog::deserialize(Catalog.serialize());

  // ---- The application: prototypes only ----
  const char *AppSource = R"(
    void vfill(float *x, float v, int n);
    void vaxpy(float *x, float *y, float alpha, int n);
    float vdot(float *x, float *y, int n);

    float u[2048], v[2048];
    float result;

    void main() {
      vfill(u, 3.0, 2048);
      vfill(v, 0.5, 2048);
      vaxpy(u, v, 2.0, 2048);     /* u = 3 + 2*0.5 = 4 everywhere */
      result = vdot(u, v, 2048);  /* 2048 * (4 * 0.5) = 4096 */
    }
  )";

  driver::CompilerOptions Opts = driver::CompilerOptions::parallel();
  Opts.Catalog = &Restored;
  titan::TitanConfig Titan2;
  Titan2.NumProcessors = 2;
  auto Out = driver::compileAndRun(AppSource, Opts, Titan2);
  if (!Out.Run.Ok) {
    std::fprintf(stderr, "app failed: %s\n", Out.Run.Error.c_str());
    return 1;
  }

  float Result = Out.Machine->readFloat(Out.Machine->addressOf("result"));
  std::printf("result = %g (expected 4096)\n", Result);
  std::printf("calls inlined from catalog: %u\n",
              Out.Compile->Stats.Inline.CallsInlined);
  std::printf("vector statements: %u (the fills and the axpy vectorize; "
              "the dot stays a serial reduction)\n",
              Out.Compile->Stats.Vectorize.VectorStmts);
  std::printf("cycles: %llu (%.2f MFLOPS on a 2-processor Titan)\n",
              static_cast<unsigned long long>(Out.Run.Cycles),
              Out.Run.mflops(Titan2));
  return Result == 4096.0f ? 0 : 1;
}
