//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-catalog — compiles C translation units into a procedure-catalog
/// database (paper Section 7) with a sharded worker pool.
///
///   tcc-catalog [-j<N>] [-o lib.tcat] [-cache=FILE] [-remarks=FILE]
///               [-v] a.c b.c ...
///
///   -j<N>            worker threads (default 1; -j0 = all hardware
///                    threads); the merged catalog is byte-identical for
///                    every worker count
///   -o FILE          output catalog path (default "lib.tcat")
///   -cache=FILE      incremental rebuild manifest: shards whose source
///                    text is unchanged are served from FILE without
///                    compiling; rebuilt shards are stored back
///   -remarks=FILE    write build telemetry (per-shard timings, counters,
///                    remarks) as JSON to FILE ("-" for stdout)
///   -fault-inject=S  deterministic fault injection over the worker pool:
///                    comma-separated catalog:<file>:kind[:nth] specs
///                    (TCC_FAULT_INJECT in the environment appends)
///   -v               print a per-shard summary table
///
/// A worker that dies (crash or injected fault) costs exactly its own
/// translation unit: the surviving shards still merge and the catalog is
/// still written, but the build exits 1 so callers see the partial
/// failure.
///
/// The produced catalog is loaded by `tcc -catalog=lib.tcat`, which pulls
/// procedure bodies out of the database at inlining time.
///
//===----------------------------------------------------------------------===//

#include "catalog/CatalogBuilder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

using namespace tcc;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: tcc-catalog [-j<N>] [-o lib.tcat] [-cache=file] "
               "[-remarks=file] [-fault-inject=spec] [-v] file.c...\n");
}

} // namespace

int main(int argc, char **argv) {
  catalog::CatalogBuildOptions Opts;
  std::string OutputPath = "lib.tcat";
  std::string RemarksPath;
  bool Verbose = false;
  catalog::CatalogBuilder Builder;
  DiagnosticEngine Diags;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-j", 0) == 0 && Arg != "-j") {
      Opts.Workers = static_cast<unsigned>(std::atoi(Arg.c_str() + 2));
    } else if (Arg == "-j" && I + 1 < argc) {
      Opts.Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "-o" && I + 1 < argc) {
      OutputPath = argv[++I];
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg.rfind("-remarks=", 0) == 0) {
      RemarksPath = Arg.substr(std::strlen("-remarks="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg == "-v") {
      Verbose = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "tcc-catalog: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else if (!Builder.addFile(Arg, Diags)) {
      std::fprintf(stderr, "tcc-catalog: %s\n",
                   Diags.diagnostics().back().Message.c_str());
      return 2;
    }
  }
  if (Builder.sourceCount() == 0) {
    usage();
    return 2;
  }
  if (const char *Env = std::getenv("TCC_FAULT_INJECT"); Env && *Env) {
    if (!Opts.FaultInject.empty())
      Opts.FaultInject += ',';
    Opts.FaultInject += Env;
  }

  catalog::CatalogBuildResult Result = Builder.build(Opts);
  for (const auto &D : Result.Diags.diagnostics())
    std::fprintf(stderr, "tcc-catalog: %s\n", D.str().c_str());

  // Telemetry is written even for failed builds: the per-shard record
  // shows exactly which translation unit broke.
  if (!RemarksPath.empty()) {
    if (RemarksPath == "-") {
      Result.Telemetry.writeJSON(std::cout);
    } else {
      std::ofstream OS(RemarksPath);
      if (!OS) {
        std::fprintf(stderr, "tcc-catalog: cannot write '%s'\n",
                     RemarksPath.c_str());
        return 2;
      }
      Result.Telemetry.writeJSON(OS);
    }
  }

  if (Verbose)
    for (const catalog::ShardReport &S : Result.Shards)
      std::printf("  %-28s %4u procedures %8zu bytes %8.3f ms%s%s\n",
                  S.File.c_str(), S.Procedures, S.SerializedBytes, S.Millis,
                  S.CacheHit ? "  [cached]" : "",
                  S.Ok ? "" : "  [failed]");

  // A partial failure (some shards died, others survived) still writes
  // the catalog of survivors — a library build that loses one TU should
  // not lose the other thousand — but exits 1 so callers notice.
  if (!catalog::saveCatalogFile(Result.Catalog, OutputPath, Diags)) {
    std::fprintf(stderr, "tcc-catalog: %s\n",
                 Diags.diagnostics().back().Message.c_str());
    return 2;
  }
  if (!Result.ok()) {
    unsigned FailedShards = 0;
    for (const catalog::ShardReport &S : Result.Shards)
      if (!S.Ok)
        ++FailedShards;
    std::fprintf(stderr,
                 "tcc-catalog: %u of %zu shards failed; wrote partial "
                 "catalog of %zu procedures to %s\n",
                 FailedShards, Result.Shards.size(),
                 Result.Catalog.entries().size(), OutputPath.c_str());
    return 1;
  }

  unsigned Workers =
      Opts.Workers ? Opts.Workers
                   : std::max(1u, std::thread::hardware_concurrency());
  unsigned CacheHits = 0;
  for (const catalog::ShardReport &S : Result.Shards)
    if (S.CacheHit)
      ++CacheHits;
  std::printf("tcc-catalog: %zu procedures from %zu files -> %s "
              "(%.3f ms, %u workers, %u shards cached)\n",
              Result.Catalog.entries().size(), Builder.sourceCount(),
              OutputPath.c_str(), Result.TotalMillis, Workers, CacheHits);
  return 0;
}
