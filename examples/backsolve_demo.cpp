//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 example: a backsolve-style recurrence that can
/// never vectorize, optimized by the dependence graph anyway — scalar
/// replacement pulls the loop-carried value into an FP register,
/// strength reduction turns subscript multiplies into pointer bumps, and
/// dependence-informed scheduling overlaps the remaining loads with the
/// floating point recurrence.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "il/ILPrinter.h"

#include <cstdio>

using namespace tcc;

int main() {
  const char *Source = R"(
    float x[2002], y[2000], z[2000];
    void titan_tic(void);
    void titan_toc(void);
    void main() {
      int i; int n;
      float *p; float *q;
      n = 2000;
      x[0] = 1.0;
      for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
      p = &x[1];
      q = &x[0];
      titan_tic();
      for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
      titan_toc();
    }
  )";

  titan::TitanConfig ScalarMachine;
  ScalarMachine.EnableOverlap = false;
  auto Scalar = driver::compileAndRun(
      Source, driver::CompilerOptions::scalarOnly(), ScalarMachine);

  titan::TitanConfig Machine;
  driver::CompilerOptions Full = driver::CompilerOptions::full();
  Full.CaptureStages = true;
  auto Fast = driver::compileAndRun(Source, Full, Machine);
  if (!Scalar.Run.Ok || !Fast.Run.Ok) {
    std::fprintf(stderr, "failed: %s%s\n", Scalar.Run.Error.c_str(),
                 Fast.Run.Error.c_str());
    return 1;
  }

  // Same math, very different machine behaviour.
  int64_t XA = Fast.Machine->addressOf("x");
  std::printf("x[5] = %g (both builds: %g)\n",
              Fast.Machine->readFloat(XA + 5 * 4),
              Scalar.Machine->readFloat(
                  Scalar.Machine->addressOf("x") + 5 * 4));

  std::printf("\nscalar optimization only: %.2f MFLOPS\n",
              Scalar.Run.regionMflops(ScalarMachine));
  std::printf("dependence-driven:        %.2f MFLOPS "
              "(paper: 0.5 -> 1.9)\n",
              Fast.Run.regionMflops(Machine));
  std::printf("loads: %llu -> %llu    integer multiplies: %llu -> %llu\n",
              static_cast<unsigned long long>(Scalar.Run.Loads),
              static_cast<unsigned long long>(Fast.Run.Loads),
              static_cast<unsigned long long>(Scalar.Run.IntMuls),
              static_cast<unsigned long long>(Fast.Run.IntMuls));

  std::printf("\n--- the loop after dependence-driven optimization ---\n%s",
              Fast.Compile->Stages.count("depopt")
                  ? Fast.Compile->Stages["depopt"].c_str()
                  : "(no snapshot)\n");
  return 0;
}
