//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-fuzz — the differential fuzzing fleet driver.
///
///   tcc-fuzz [-seed=N] [-n=N] [-j<N>] [-variants=N] [-wild-orders]
///            [-p-differential] [-blocks=MIN:MAX] [-leaves=N]
///            [-repro-dir=DIR] [-o FILE] [-fault-inject=S] [-no-reduce] [-q]
///   tcc-fuzz -gen=SEED              print the generated program and exit
///   tcc-fuzz -check=FILE [-variants=N] [-check-seed=N]
///                                   run one C file through the oracle
///
///   -seed=N          campaign seed (default 1); the program set is a pure
///                    function of it, independent of -j
///   -n=N             programs to sweep (default 100)
///   -j<N>            shards (-j0 = all hardware threads; default 1)
///   -variants=N      optimized variants per program: the full default
///                    pipeline plus N-1 sampled subsequences (default 5)
///   -wild-orders     sample arbitrary pass permutations, not just
///                    order-preserving subsequences of the registered
///                    pipeline (exploration mode; not the CI bar)
///   -p-differential  re-run every sampled spec as `@P4:<spec>` (outer-
///                    loop spreading armed at four processors) plus the
///                    full parallel pipeline; memory must still match -O0
///   -blocks=MIN:MAX  compute blocks per generated program (default 2:5)
///   -leaves=N        max generated leaf functions (default 2)
///   -repro-dir=DIR   where finding bundles land (default .tcc-fuzz;
///                    "" disables)
///   -o FILE          BENCH_fuzz.json path (default BENCH_fuzz.json;
///                    "" disables the row)
///   -fault-inject=S  deterministic fault injection: pass-level specs
///                    reach every variant compile; "fuzz:shard<k>:throw"
///                    quarantines shard k (TCC_FAULT_INJECT appends)
///   -no-reduce       skip delta-debugging (triage-speed scan)
///   -q               summary line only
///
/// Exit codes: 0 = campaign completed and every finding reduced (findings
/// themselves are data, reported and bundled, not a tool failure);
/// 1 = at least one finding could not be reduced to a fixed point;
/// 2 = usage error or campaign setup failure.  -check= exits 0 when all
/// variants agree with -O0, 1 on any divergence, 2 on errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace tcc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tcc-fuzz [-seed=N] [-n=N] [-j<N>] [-variants=N] [-wild-orders]\n"
      "                [-p-differential] [-blocks=MIN:MAX] [-leaves=N]\n"
      "                [-repro-dir=DIR] [-o FILE] [-fault-inject=S]\n"
      "                [-no-reduce] [-q]\n"
      "       tcc-fuzz -gen=SEED    print the program for SEED and exit\n"
      "       tcc-fuzz -check=FILE  differential-check one C file\n");
}

int checkFile(const std::string &Path, const fuzz::OracleOptions &OO) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "tcc-fuzz: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  fuzz::OracleResult R = fuzz::runOracle(Buf.str(), OO);
  if (!R.RefOk) {
    std::fprintf(stderr, "tcc-fuzz: %s: %s\n", Path.c_str(),
                 R.RefError.c_str());
    return 2;
  }
  for (const fuzz::VariantResult &V : R.Variants)
    std::printf("%-18s -passes=%s%s%s\n", fuzz::divergenceClassName(V.Class),
                V.Spec.c_str(), V.Detail.empty() ? "" : "  ",
                V.Detail.c_str());
  return R.worst() == fuzz::DivergenceClass::Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::CampaignOptions Opts;
  Opts.BenchPath = "BENCH_fuzz.json";
  bool Quiet = false;
  std::string CheckPath;
  bool HaveGen = false;
  uint64_t GenSeed = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-gen=", 0) == 0) {
      HaveGen = true;
      GenSeed = std::strtoull(Arg.c_str() + std::strlen("-gen="), nullptr, 0);
    } else if (Arg.rfind("-check=", 0) == 0) {
      CheckPath = Arg.substr(std::strlen("-check="));
    } else if (Arg.rfind("-check-seed=", 0) == 0) {
      Opts.Oracle.SampleSeed =
          std::strtoull(Arg.c_str() + std::strlen("-check-seed="), nullptr, 0);
    } else if (Arg.rfind("-seed=", 0) == 0) {
      Opts.Seed =
          std::strtoull(Arg.c_str() + std::strlen("-seed="), nullptr, 0);
    } else if (Arg.rfind("-n=", 0) == 0) {
      Opts.Programs =
          std::strtoull(Arg.c_str() + std::strlen("-n="), nullptr, 0);
    } else if (Arg.rfind("-j", 0) == 0 && Arg != "-j") {
      Opts.Shards = static_cast<unsigned>(std::atoi(Arg.c_str() + 2));
    } else if (Arg == "-j" && I + 1 < argc) {
      Opts.Shards = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg.rfind("-variants=", 0) == 0) {
      Opts.Oracle.Variants = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-variants=")));
    } else if (Arg == "-wild-orders") {
      Opts.Oracle.WildOrders = true;
    } else if (Arg == "-p-differential") {
      Opts.Oracle.PDifferential = true;
    } else if (Arg.rfind("-blocks=", 0) == 0) {
      unsigned Min = 0, Max = 0;
      if (std::sscanf(Arg.c_str() + std::strlen("-blocks="), "%u:%u", &Min,
                      &Max) != 2 ||
          Min == 0 || Max < Min) {
        std::fprintf(stderr, "tcc-fuzz: bad -blocks= value '%s'\n",
                     Arg.c_str());
        return 2;
      }
      Opts.Gen.MinBlocks = Min;
      Opts.Gen.MaxBlocks = Max;
    } else if (Arg.rfind("-leaves=", 0) == 0) {
      Opts.Gen.MaxLeafFunctions = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-leaves=")));
    } else if (Arg.rfind("-repro-dir=", 0) == 0) {
      Opts.ReproDir = Arg.substr(std::strlen("-repro-dir="));
    } else if (Arg == "-o" && I + 1 < argc) {
      Opts.BenchPath = argv[++I];
    } else if (Arg.rfind("-o=", 0) == 0) {
      Opts.BenchPath = Arg.substr(std::strlen("-o="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg == "-no-reduce") {
      Opts.ReduceFindings = false;
    } else if (Arg == "-q") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "tcc-fuzz: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (const char *Env = std::getenv("TCC_FAULT_INJECT"); Env && *Env) {
    if (!Opts.FaultInject.empty())
      Opts.FaultInject += ',';
    Opts.FaultInject += Env;
  }

  if (HaveGen) {
    fuzz::GenProgram P = fuzz::generateProgram(GenSeed, Opts.Gen);
    std::fwrite(P.Source.data(), 1, P.Source.size(), stdout);
    return 0;
  }
  if (!CheckPath.empty())
    return checkFile(CheckPath, Opts.Oracle);

  DiagnosticEngine Diags;
  fuzz::CampaignResult R = fuzz::runCampaign(Opts, Diags);
  for (const auto &D : Diags.diagnostics())
    std::fprintf(stderr, "tcc-fuzz: %s\n", D.Message.c_str());
  if (Diags.hasErrors())
    return 2;

  if (!Quiet) {
    for (size_t S = 0; S < R.Shards.size(); ++S) {
      const fuzz::ShardReport &Rep = R.Shards[S];
      if (Rep.Quarantined)
        std::printf("shard %zu QUARANTINED (%llu programs skipped): %s\n", S,
                    static_cast<unsigned long long>(Rep.Count),
                    Rep.Error.c_str());
      else if (Rep.Crashes)
        std::printf("shard %zu: %llu program(s) crashed the oracle\n", S,
                    static_cast<unsigned long long>(Rep.Crashes));
    }
    for (const fuzz::Finding &F : R.Findings) {
      std::printf("finding %-28s seed=%llu hits=%u %zu -> %zu lines%s\n",
                  F.Signature.c_str(),
                  static_cast<unsigned long long>(F.Seed), F.Hits,
                  F.OriginalLines, F.ReducedLines,
                  F.Reduced ? "" : " [UNREDUCED]");
      std::printf("  -passes=%s\n  %s\n", F.Spec.c_str(), F.Detail.c_str());
      if (!F.BundlePath.empty())
        std::printf("  bundle: %s\n", F.BundlePath.c_str());
    }
  }

  std::printf("tcc-fuzz: %llu/%llu programs, %zu shard(s), %zu unique "
              "bug(s) (%u unreduced), %llu ref-failure(s), %.1f prog/s%s%s\n",
              static_cast<unsigned long long>(R.Executed),
              static_cast<unsigned long long>(R.Programs), R.Shards.size(),
              R.Findings.size(), R.unreduced(),
              static_cast<unsigned long long>(R.RefFailures),
              R.ProgramsPerSec,
              Opts.BenchPath.empty() ? "" : " -> ", Opts.BenchPath.c_str());

  return R.unreduced() > 0 ? 1 : 0;
}
