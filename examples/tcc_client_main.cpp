//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-client — compile through a running tccd instead of in-process.
///
///   tcc-client [-socket=path] <any tcc options> file.c
///
/// Accepts exactly tcc's command line (the parser is shared —
/// driver/ToolMain.h — so a flag typo produces the same diagnostic
/// here as there), plus `-socket=PATH` naming the daemon socket
/// (default ".tccd.sock"; the TCCD_SOCKET environment variable
/// overrides the default).  The input file is read client-side and its
/// text shipped with the request; other paths on the command line
/// (-catalog=, -remarks=) resolve in the daemon's working directory, so
/// run the daemon where you run the client or pass absolute paths.
///
/// The response carries the exit code and the exact bytes a direct
/// `tcc` run would have printed; they are replayed verbatim.  Requests'
/// `-cache=` flags are overridden by the daemon (it owns its manifest),
/// and `-replay=` is rejected client-side — reproducer bundles replay
/// locally with `tcc -replay=`.
///
/// Exit codes: tcc's own (0 ok, 1 compile/run failure, 2 usage/IO
/// error), plus 3 when the daemon is unreachable or dies mid-request —
/// always a clean error, never a hang.
///
//===----------------------------------------------------------------------===//

#include "driver/ToolMain.h"
#include "server/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tcc;

int main(int argc, char **argv) {
  std::string SocketPath = ".tccd.sock";
  if (const char *Env = std::getenv("TCCD_SOCKET"); Env && *Env)
    SocketPath = Env;

  // Peel off the client-only -socket= flag; everything else is tcc's
  // surface, validated locally with the shared parser so diagnostics
  // match tcc byte-for-byte (tool-name prefix aside).
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-socket=", 0) == 0)
      SocketPath = Arg.substr(std::strlen("-socket="));
    else
      Args.push_back(std::move(Arg));
  }

  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(Args, Inv, Error)) {
    std::fprintf(stderr, "tcc-client: %s\n", Error.c_str());
    std::fprintf(stderr, "%s", driver::toolUsage("tcc-client").c_str());
    return 2;
  }
  if (!Inv.ReplayPath.empty()) {
    std::fprintf(stderr,
                 "tcc-client: -replay= runs locally (the bundle is on "
                 "this machine); use tcc -replay=\n");
    return 2;
  }
  if (Inv.InputPath.empty()) {
    std::fprintf(stderr, "%s", driver::toolUsage("tcc-client").c_str());
    return 2;
  }

  std::ifstream In(Inv.InputPath);
  if (!In) {
    std::fprintf(stderr, "tcc-client: cannot open '%s'\n",
                 Inv.InputPath.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  server::Request Req;
  Req.Args = Args;
  Req.Source = Buffer.str();
  server::Response Resp;
  if (!server::runRequest(SocketPath, Req, Resp, Error)) {
    std::fprintf(stderr, "tcc-client: %s\n", Error.c_str());
    return 3;
  }

  std::fwrite(Resp.Out.data(), 1, Resp.Out.size(), stdout);
  std::fwrite(Resp.Err.data(), 1, Resp.Err.size(), stderr);
  return Resp.Exit;
}
