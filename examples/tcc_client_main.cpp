//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-client — compile through a running tccd instead of in-process.
///
///   tcc-client [-socket=path] [client options] <any tcc options> file.c
///   tcc-client [-socket=path] -ping
///
/// Accepts exactly tcc's command line (the parser is shared —
/// driver/ToolMain.h — so a flag typo produces the same diagnostic
/// here as there), plus client-only flags:
///
///   -socket=PATH       daemon socket (default ".tccd.sock"; the
///                      TCCD_SOCKET environment variable overrides the
///                      default)
///   -timeout-ms=N      per-step deadline: connect and each whole frame
///                      must finish within N ms (default 60000; 0 = no
///                      deadline)
///   -retries=N         extra attempts after a retry-safe failure —
///                      connect refused, daemon died before responding,
///                      or a busy response (default 0)
///   -retry-budget-ms=N total wall-clock allowance for retries and
///                      backoff (default 2000)
///   -ping              send a health probe instead of a compile; prints
///                      the daemon's one-line status JSON
///
/// The response carries the exit code and the exact bytes a direct
/// `tcc` run would have printed; they are replayed verbatim.  Requests'
/// `-cache=` flags are overridden by the daemon (it owns its manifest),
/// and `-replay=` is rejected client-side — reproducer bundles replay
/// locally with `tcc -replay=`.
///
/// Exit codes: tcc's own (0 ok, 1 compile/run failure, 2 usage/IO
/// error), plus 3 when the daemon is unreachable or dies mid-request
/// after the retry budget is spent, and 4 when the daemon is shedding
/// load (`busy`) and retries could not get past it — always a clean
/// error, never a hang.
///
//===----------------------------------------------------------------------===//

#include "driver/ToolMain.h"
#include "server/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tcc;

int main(int argc, char **argv) {
  std::string SocketPath = ".tccd.sock";
  if (const char *Env = std::getenv("TCCD_SOCKET"); Env && *Env)
    SocketPath = Env;
  server::ClientOptions Copts;
  bool Ping = false;

  // Peel off the client-only flags; everything else is tcc's surface,
  // validated locally with the shared parser so diagnostics match tcc
  // byte-for-byte (tool-name prefix aside).
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-socket=", 0) == 0)
      SocketPath = Arg.substr(std::strlen("-socket="));
    else if (Arg.rfind("-timeout-ms=", 0) == 0)
      Copts.TimeoutMs = std::atoi(Arg.c_str() + std::strlen("-timeout-ms="));
    else if (Arg.rfind("-retries=", 0) == 0)
      Copts.Retries = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-retries=")));
    else if (Arg.rfind("-retry-budget-ms=", 0) == 0)
      Copts.RetryBudgetMs =
          std::atoi(Arg.c_str() + std::strlen("-retry-budget-ms="));
    else if (Arg == "-ping")
      Ping = true;
    else
      Args.push_back(std::move(Arg));
  }

  std::string Error;
  server::Request Req;
  if (Ping) {
    Req.Kind = "ping";
  } else {
    driver::ToolInvocation Inv;
    if (!driver::parseToolArgs(Args, Inv, Error)) {
      std::fprintf(stderr, "tcc-client: %s\n", Error.c_str());
      std::fprintf(stderr, "%s", driver::toolUsage("tcc-client").c_str());
      return 2;
    }
    if (!Inv.ReplayPath.empty()) {
      std::fprintf(stderr,
                   "tcc-client: -replay= runs locally (the bundle is on "
                   "this machine); use tcc -replay=\n");
      return 2;
    }
    if (Inv.InputPath.empty()) {
      std::fprintf(stderr, "%s", driver::toolUsage("tcc-client").c_str());
      return 2;
    }

    std::ifstream In(Inv.InputPath);
    if (!In) {
      std::fprintf(stderr, "tcc-client: cannot open '%s'\n",
                   Inv.InputPath.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Req.Args = Args;
    Req.Source = Buffer.str();
  }

  server::Response Resp;
  server::CallOutcome Outcome =
      server::runRequestWithRetry(SocketPath, Req, Copts, Resp, Error);
  if (!Outcome.Ok) {
    if (Outcome.Attempts > 1)
      std::fprintf(stderr, "tcc-client: %s (after %u attempts)\n",
                   Error.c_str(), Outcome.Attempts);
    else
      std::fprintf(stderr, "tcc-client: %s\n", Error.c_str());
    return 3;
  }

  std::fwrite(Resp.Out.data(), 1, Resp.Out.size(), stdout);
  std::fwrite(Resp.Err.data(), 1, Resp.Err.size(), stderr);
  // A surviving busy response means the daemon is up but shedding and
  // the retry budget ran out — exit BusyExit (4) so callers can tell
  // "overloaded" from "broken" (3).
  return Resp.Exit;
}
