//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small C program through the Titan pipeline, run
/// it on the simulated machine at two optimization levels, and show the
/// vectorized intermediate form.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "il/ILPrinter.h"

#include <cstdio>

using namespace tcc;

int main() {
  // The paper's running example: daxpy over 100-element arrays, called
  // with alpha = 1.0 so constant propagation can do its thing.
  const char *Source = R"(
    float a[100], b[100], c[100];

    void daxpy(float *x, float *y, float *z, float alpha, int n)
    {
      if (n <= 0)
        return;
      if (alpha == 0)
        return;
      for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    }

    void main()
    {
      int i;
      for (i = 0; i < 100; i++) { b[i] = i; c[i] = 100 - i; }
      daxpy(a, b, c, 1.0, 100);
    }
  )";

  // --- Compile and run with everything off ---
  titan::TitanConfig ScalarMachine;
  ScalarMachine.EnableOverlap = false;
  auto Baseline = driver::compileAndRun(
      Source, driver::CompilerOptions::noOpt(), ScalarMachine);
  if (!Baseline.Run.Ok) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 Baseline.Run.Error.c_str());
    return 1;
  }

  // --- Compile and run fully optimized on a 2-processor Titan ---
  titan::TitanConfig Titan2;
  Titan2.NumProcessors = 2;
  auto Optimized = driver::compileAndRun(
      Source, driver::CompilerOptions::parallel(), Titan2);
  if (!Optimized.Run.Ok) {
    std::fprintf(stderr, "optimized failed: %s\n",
                 Optimized.Run.Error.c_str());
    return 1;
  }

  // Both must compute the same answer.
  int64_t AAddr = Optimized.Machine->addressOf("a");
  std::printf("a[0]=%g a[50]=%g a[99]=%g   (every element should be 100)\n",
              Optimized.Machine->readFloat(AAddr + 0),
              Optimized.Machine->readFloat(AAddr + 50 * 4),
              Optimized.Machine->readFloat(AAddr + 99 * 4));

  std::printf("\nunoptimized: %8llu cycles\n",
              static_cast<unsigned long long>(Baseline.Run.Cycles));
  std::printf("optimized:   %8llu cycles  (%.1fx; %u call inlined, "
              "%u vector stmts, %u parallel loops)\n",
              static_cast<unsigned long long>(Optimized.Run.Cycles),
              static_cast<double>(Baseline.Run.Cycles) /
                  static_cast<double>(Optimized.Run.Cycles),
              Optimized.Compile->Stats.Inline.CallsInlined,
              Optimized.Compile->Stats.Vectorize.VectorStmts,
              Optimized.Compile->Stats.Vectorize.ParallelLoops);

  // The final intermediate form: the paper's Section 9 listing.
  std::printf("\n--- optimized IL for main ---\n%s",
              il::printFunction(
                  *Optimized.Compile->IL->findFunction("main"))
                  .c_str());
  return 0;
}
