//===----------------------------------------------------------------------===//
///
/// \file
/// tcc — the Titan C compiler driver, command-line edition.
///
///   tcc [options] file.c
///
///   -O0              front end only (no optimization)
///   -O1              scalar optimization
///   -O2              + vectorization (default)
///   -O3              + multiprocessor parallelization
///   -P <n>           simulate n processors (1-4, default 1; implies -O3)
///   -fno-inline      disable inlining
///   -ffortran-ptrs   pointer parameters never alias (paper Section 9)
///   -strip <n>       strip length for vector loops (default 32)
///   -catalog=FILE    load a procedure-catalog database built by
///                    tcc-catalog; the inliner pulls unknown callee
///                    bodies out of it (paper Section 7)
///   -passes=SPEC     run a custom pipeline (comma-separated registered
///                    pass names, e.g. whiletodo,ivsub,vectorize);
///                    overrides the -O level's phase selection
///   -cache=FILE      incremental recompilation manifest: functions whose
///                    serialized IL and pipeline configuration match FILE
///                    are restored instead of re-optimized; rebuilt
///                    functions are stored back
///   -whole-program   run the pipeline pass-major over the whole program
///                    (the pre-incremental scheduling; -print-after-all
///                    implies it)
///   -verify-each     run the IL verifier after every pass; a violated
///                    invariant fails the compile naming the pass
///   -print-il=PHASE  dump IL after PHASE ("lower" or any registered
///                    pass name; see -passes)
///   -print-after-all dump IL after the front end and every pass
///   -remarks=FILE    write optimization telemetry (per-pass timings,
///                    IL deltas, counters, source-located remarks) as
///                    JSON to FILE ("-" for stdout)
///   -S               print TitanISA assembly
///   -run             execute on the simulated Titan (default)
///   -no-run          compile only
///   -stats           print per-phase statistics
///
/// Fault containment (see DESIGN.md "Failure model"):
///
///   -no-sandbox      disable pass fault containment: pass exceptions
///                    escape and -verify-each violations fail the compile
///   -pass-budget=MS  wall-clock budget per function-pass invocation in
///                    milliseconds (default 1000; 0 disables)
///   -repro-dir=DIR   directory for crash-reproducer bundles (default
///                    ".tcc-repro"; empty disables writing them)
///   -fault-inject=S  deterministic fault injection: comma-separated
///                    pass:function:kind[:nth] specs (kinds: throw,
///                    corrupt-il, oom, slow; `*` wildcards either field);
///                    TCC_FAULT_INJECT in the environment appends to this
///   -replay=BUNDLE   re-run the single pass invocation recorded in a
///                    reproducer bundle; exit 0 when the recorded fault
///                    reproduces, 1 when it does not, 2 on a bad bundle
///
/// A compile with contained faults still exits 0: the output is correct,
/// just missing the quarantined pass on the affected function(s).
///
//===----------------------------------------------------------------------===//

#include "catalog/CatalogBuilder.h"
#include "driver/Compiler.h"
#include "il/ILPrinter.h"
#include "pipeline/PassRegistry.h"
#include "pipeline/PassSandbox.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace tcc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tcc [-O0|-O1|-O2|-O3] [-P n] [-fno-inline] [-ffortran-ptrs]\n"
      "           [-strip n] [-catalog=file] [-passes=spec] [-cache=file]\n"
      "           [-whole-program] [-verify-each] [-print-il=phase]\n"
      "           [-print-after-all] [-remarks=file]\n"
      "           [-no-sandbox] [-pass-budget=ms] [-repro-dir=dir]\n"
      "           [-fault-inject=spec] [-replay=bundle]\n"
      "           [-S] [-run|-no-run] [-stats] file.c\n"
      "registered passes: %s\n",
      pipeline::PassRegistry::instance().namesJoined().c_str());
}

} // namespace

int main(int argc, char **argv) {
  driver::CompilerOptions Opts = driver::CompilerOptions::full();
  titan::TitanConfig Machine;
  std::string PrintPhase;
  std::string RemarksPath;
  std::string CatalogPath;
  std::string ReplayPath;
  std::string InputPath;
  bool PrintAsm = false;
  bool PrintAfterAll = false;
  bool Run = true;
  bool PrintStats = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-O0") {
      Opts = driver::CompilerOptions::noOpt();
      Machine.EnableOverlap = false;
    } else if (Arg == "-O1") {
      Opts = driver::CompilerOptions::scalarOnly();
      Machine.EnableOverlap = false;
    } else if (Arg == "-O2") {
      Opts = driver::CompilerOptions::full();
    } else if (Arg == "-O3") {
      Opts = driver::CompilerOptions::parallel();
      if (Machine.NumProcessors < 2)
        Machine.NumProcessors = 2;
    } else if (Arg == "-P" && I + 1 < argc) {
      Machine.NumProcessors = std::atoi(argv[++I]);
      Opts.Vectorize.EnableParallel = Machine.NumProcessors > 1;
    } else if (Arg == "-fno-inline") {
      Opts.EnableInline = false;
    } else if (Arg == "-ffortran-ptrs") {
      Opts.Vectorize.FortranPointerSemantics = true;
    } else if (Arg == "-strip" && I + 1 < argc) {
      Opts.Vectorize.StripLength = std::atoll(argv[++I]);
    } else if (Arg.rfind("-catalog=", 0) == 0) {
      CatalogPath = Arg.substr(std::strlen("-catalog="));
    } else if (Arg.rfind("-passes=", 0) == 0) {
      Opts.Passes = Arg.substr(std::strlen("-passes="));
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg == "-whole-program") {
      Opts.WholeProgram = true;
    } else if (Arg == "-verify-each") {
      Opts.VerifyEach = true;
    } else if (Arg == "-no-sandbox") {
      Opts.SandboxPasses = false;
    } else if (Arg.rfind("-pass-budget=", 0) == 0) {
      Opts.PassBudgetMs = std::atof(Arg.c_str() + std::strlen("-pass-budget="));
    } else if (Arg.rfind("-repro-dir=", 0) == 0) {
      Opts.ReproDir = Arg.substr(std::strlen("-repro-dir="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg.rfind("-replay=", 0) == 0) {
      ReplayPath = Arg.substr(std::strlen("-replay="));
    } else if (Arg.rfind("-print-il=", 0) == 0) {
      PrintPhase = Arg.substr(std::strlen("-print-il="));
      Opts.CaptureStages = true;
    } else if (Arg == "-print-after-all") {
      PrintAfterAll = true;
      Opts.CaptureStages = true;
    } else if (Arg.rfind("-remarks=", 0) == 0) {
      RemarksPath = Arg.substr(std::strlen("-remarks="));
    } else if (Arg == "-S") {
      PrintAsm = true;
    } else if (Arg == "-run") {
      Run = true;
    } else if (Arg == "-no-run") {
      Run = false;
    } else if (Arg == "-stats") {
      PrintStats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "tcc: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty() && ReplayPath.empty()) {
    usage();
    return 2;
  }

  // Replay mode: re-run the single pass invocation a reproducer bundle
  // recorded, under the bundle's own containment policy, and report
  // whether the same fault fires.  No input file is compiled.
  if (!ReplayPath.empty()) {
    DiagnosticEngine ReplayDiags;
    pipeline::ReproBundle Bundle;
    if (!pipeline::loadReproBundle(ReplayPath, Bundle, ReplayDiags)) {
      for (const auto &D : ReplayDiags.diagnostics())
        std::fprintf(stderr, "tcc: %s: %s\n", ReplayPath.c_str(),
                     D.str().c_str());
      return 2;
    }
    if (!Bundle.Config.empty() &&
        Bundle.Config != driver::configFingerprint(Opts))
      std::fprintf(stderr,
                   "tcc: warning: bundle '%s' was recorded under a "
                   "different option fingerprint; replaying with the "
                   "current options\n",
                   ReplayPath.c_str());
    pipeline::ReplayResult RR = pipeline::replayBundle(
        Bundle, driver::makePipelineOptions(Opts), ReplayDiags);
    for (const auto &D : ReplayDiags.diagnostics())
      std::fprintf(stderr, "tcc: %s: %s\n", ReplayPath.c_str(),
                   D.str().c_str());
    if (!RR.Ran)
      return 2;
    if (RR.Reproduced) {
      std::printf("tcc: replay reproduced the recorded %s fault: pass "
                  "'%s' on function '%s' (%s)\n",
                  Bundle.Kind.c_str(), Bundle.Pass.c_str(),
                  Bundle.Function.c_str(), RR.Description.c_str());
      return 0;
    }
    std::printf("tcc: replay did NOT reproduce the recorded %s fault "
                "(pass '%s', function '%s'%s%s)\n",
                Bundle.Kind.c_str(), Bundle.Pass.c_str(),
                Bundle.Function.c_str(),
                RR.Kind.empty() ? "; the pass ran cleanly"
                                : "; observed instead: ",
                RR.Kind.c_str());
    return 1;
  }

  // The catalog must outlive the compile (CompilerOptions holds a
  // pointer).
  inliner::ProcedureCatalog Catalog;
  if (!CatalogPath.empty()) {
    DiagnosticEngine CatalogDiags;
    if (!catalog::loadCatalogFile(CatalogPath, Catalog, CatalogDiags)) {
      for (const auto &D : CatalogDiags.diagnostics())
        std::fprintf(stderr, "%s: %s\n", CatalogPath.c_str(),
                     D.str().c_str());
      return 2;
    }
    Opts.Catalog = &Catalog;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "tcc: cannot open '%s'\n", InputPath.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  auto Result = driver::compileSource(Buffer.str(), Opts);
  for (const auto &D : Result->Diags.diagnostics())
    std::fprintf(stderr, "%s: %s\n", InputPath.c_str(), D.str().c_str());

  // Contained faults degrade optimization, never correctness, so they are
  // summarized on stderr but do not change the exit code.
  if (!Result->Telemetry.Faults.empty())
    std::fprintf(stderr,
                 "tcc: %zu pass fault%s contained; output is correct but "
                 "the affected function%s skipped the quarantined pass%s\n",
                 Result->Telemetry.Faults.size(),
                 Result->Telemetry.Faults.size() == 1 ? "" : "s",
                 Result->Telemetry.Faults.size() == 1 ? "" : "s",
                 Result->Telemetry.Faults.size() == 1 ? "" : "es");

  // Telemetry is written even for failed compiles: the record of what ran
  // before the failure is exactly what a verifier diagnostic needs.
  if (!RemarksPath.empty()) {
    if (RemarksPath == "-") {
      Result->Telemetry.writeJSON(std::cout);
    } else {
      std::ofstream OS(RemarksPath);
      if (!OS) {
        std::fprintf(stderr, "tcc: cannot write '%s'\n",
                     RemarksPath.c_str());
        return 2;
      }
      Result->Telemetry.writeJSON(OS);
    }
  }

  if (!Result->ok())
    return 1;

  if (PrintAfterAll) {
    for (const std::string &Key : Result->StageOrder)
      std::printf("*** IL after %s ***\n%s\n", Key.c_str(),
                  Result->Stages[Key].c_str());
  } else if (!PrintPhase.empty()) {
    auto It = Result->Stages.find(PrintPhase);
    if (It == Result->Stages.end()) {
      std::fprintf(stderr,
                   "tcc: no IL snapshot for phase '%s' (captured: lower + "
                   "executed passes)\n",
                   PrintPhase.c_str());
      return 2;
    }
    std::printf("%s", It->second.c_str());
  }

  if (PrintAsm)
    for (const auto &F : Result->Machine.Functions)
      std::printf("%s\n", titan::disassemble(F).c_str());

  if (PrintStats) {
    const driver::PhaseStats &S = Result->Stats;
    std::printf("inline:      %u calls expanded, %u left, %u recursion "
                "guards, %u statics externalized, %u demoted\n",
                S.Inline.CallsInlined, S.Inline.CallsLeft,
                S.Inline.RecursionSkipped, S.Inline.StaticsExternalized,
                S.Inline.StaticsDemoted);
    std::printf("while->do:   %u of %u loops converted\n",
                S.WhileToDo.Converted, S.WhileToDo.Attempted);
    std::printf("iv-sub:      %u IVs, %u uses rewritten, %u forward "
                "substitutions, %u blocked, %u backtracks, %u passes\n",
                S.IVSub.FamilyMembers, S.IVSub.UsesRewritten,
                S.IVSub.Substitutions, S.IVSub.Blocked, S.IVSub.Backtracks,
                S.IVSub.Passes);
    std::printf("const-prop:  %u uses, %u branches folded, %u loops "
                "deleted, %u stmts removed, %u requeues\n",
                S.ConstProp.UsesReplaced, S.ConstProp.BranchesFolded,
                S.ConstProp.LoopsDeleted, S.ConstProp.StmtsRemoved,
                S.ConstProp.Requeues);
    std::printf("dce:         %u assigns, %u empty controls, %u labels\n",
                S.DCE.AssignsRemoved, S.DCE.EmptyControlRemoved,
                S.DCE.LabelsRemoved);
    std::printf("vectorize:   %u/%u loops, %u vector stmts, %u strip "
                "loops (%u parallel), %u serial\n",
                S.Vectorize.LoopsVectorized, S.Vectorize.LoopsConsidered,
                S.Vectorize.VectorStmts, S.Vectorize.StripLoops,
                S.Vectorize.ParallelLoops, S.Vectorize.SerialLoops);
    std::printf("dep-opt:     %u scalar-replaced loops (%u loads), %u "
                "strength-reduced loops (%u temps, %u CSE)\n",
                S.ScalarReplace.LoopsApplied,
                S.ScalarReplace.LoadsEliminated,
                S.StrengthReduce.LoopsApplied,
                S.StrengthReduce.AddressTemps,
                S.StrengthReduce.SharedTemps);
    std::printf("pipeline:    %.3f ms total\n", Result->Telemetry.TotalMillis);
    if (!Result->Telemetry.Functions.empty())
      std::printf("functions:   %zu scheduled, %llu served from cache\n",
                  Result->Telemetry.Functions.size(),
                  static_cast<unsigned long long>(
                      Result->Telemetry.cacheHits()));
    std::printf("faults:      %zu contained\n",
                Result->Telemetry.Faults.size());
    for (const auto &F : Result->Telemetry.Faults)
      std::printf("  %s on '%s': %s (%s)%s%s\n", F.Pass.c_str(),
                  F.Function.c_str(), F.Kind.c_str(), F.Description.c_str(),
                  F.ReproFile.empty() ? "" : "  repro: ",
                  F.ReproFile.c_str());
    for (const auto &Rec : Result->Telemetry.Passes)
      std::printf("  %-10s %8.3f ms  stmts %llu -> %llu%s\n",
                  Rec.Pass.c_str(), Rec.Millis,
                  static_cast<unsigned long long>(Rec.Before.Stmts),
                  static_cast<unsigned long long>(Rec.After.Stmts),
                  Rec.Verified ? "  [verified]" : "");
  }

  if (!Run)
    return 0;
  titan::TitanMachine M(Result->Machine, Machine);
  titan::RunResult R = M.run("main");
  if (!R.Ok) {
    std::fprintf(stderr, "tcc: run failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("[titan] %llu instructions, %llu cycles, %.3f ms simulated, "
              "%.2f MFLOPS",
              static_cast<unsigned long long>(R.Instructions),
              static_cast<unsigned long long>(R.Cycles),
              R.seconds(Machine) * 1e3, R.mflops(Machine));
  if (R.RegionCycles)
    std::printf(" (kernel region: %llu cycles, %.2f MFLOPS)",
                static_cast<unsigned long long>(R.RegionCycles),
                R.regionMflops(Machine));
  std::printf("\n");
  return 0;
}
