//===----------------------------------------------------------------------===//
///
/// \file
/// tcc — the Titan C compiler driver, command-line edition.
///
///   tcc [options] file.c
///
///   -O0              front end only (no optimization)
///   -O1              scalar optimization
///   -O2              + vectorization (default)
///   -O3              + multiprocessor parallelization
///   -P <n>           simulate n processors (1-4, default 1; >4 clamps;
///                    arms the spread pass and parallel strip loops)
///   -fno-inline      disable inlining
///   -ffortran-ptrs   pointer parameters never alias (paper Section 9)
///   -strip <n>       strip length for vector loops (default 32)
///   -catalog=FILE    load a procedure-catalog database built by
///                    tcc-catalog; the inliner pulls unknown callee
///                    bodies out of it (paper Section 7)
///   -passes=SPEC     run a custom pipeline (comma-separated registered
///                    pass names, e.g. whiletodo,ivsub,vectorize);
///                    overrides the -O level's phase selection
///   -cache=FILE      incremental recompilation manifest: functions whose
///                    serialized IL and pipeline configuration match FILE
///                    are restored instead of re-optimized; rebuilt
///                    functions are stored back
///   -whole-program   run the pipeline pass-major over the whole program
///                    (the pre-incremental scheduling; -print-after-all
///                    implies it)
///   -verify-each     run the IL verifier after every pass; a violated
///                    invariant fails the compile naming the pass
///   -print-il=PHASE  dump IL after PHASE ("lower" or any registered
///                    pass name; see -passes)
///   -print-after-all dump IL after the front end and every pass
///   -remarks=FILE    write optimization telemetry (per-pass timings,
///                    IL deltas, counters, source-located remarks) as
///                    JSON to FILE ("-" for stdout)
///   -S               print TitanISA assembly
///   -run             execute on the simulated Titan (default)
///   -no-run          compile only
///   -stats           print per-phase statistics
///
/// Fault containment (see DESIGN.md "Failure model"):
///
///   -no-sandbox      disable pass fault containment: pass exceptions
///                    escape and -verify-each violations fail the compile
///   -pass-budget=MS  wall-clock budget per function-pass invocation in
///                    milliseconds (default 1000; 0 disables)
///   -repro-dir=DIR   directory for crash-reproducer bundles (default
///                    ".tcc-repro"; empty disables writing them)
///   -fault-inject=S  deterministic fault injection: comma-separated
///                    pass:function:kind[:nth] specs (kinds: throw,
///                    corrupt-il, oom, slow; `*` wildcards either field);
///                    TCC_FAULT_INJECT in the environment appends to this
///   -replay=BUNDLE   re-run the single pass invocation recorded in a
///                    reproducer bundle; exit 0 when the recorded fault
///                    reproduces, 1 when it does not, 2 on a bad bundle.
///                    A fuzz-produced bundle (oracle/spec/csource records)
///                    instead re-runs the whole-program differential check
///                    and prints which oracle — output-divergence,
///                    verifier, or quarantine — it reproduces, under the
///                    same 0/1/2 exit convention
///
/// A compile with contained faults still exits 0: the output is correct,
/// just missing the quarantined pass on the affected function(s).
///
/// Flag parsing and everything after it live in driver/ToolMain.h,
/// shared with tcc-client and the compile server so a daemon-compiled
/// request is byte-identical to a direct run.  Only file IO and replay
/// mode (bundles are local) stay here.
///
//===----------------------------------------------------------------------===//

#include "driver/ToolMain.h"
#include "fuzz/Oracle.h"
#include "pipeline/PassSandbox.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace tcc;

int main(int argc, char **argv) {
  driver::ToolInvocation Inv;
  std::string Error;
  if (!driver::parseToolArgs(std::vector<std::string>(argv + 1, argv + argc),
                             Inv, Error)) {
    std::fprintf(stderr, "tcc: %s\n", Error.c_str());
    std::fprintf(stderr, "%s", driver::toolUsage("tcc").c_str());
    return 2;
  }
  if (Inv.InputPath.empty() && Inv.ReplayPath.empty()) {
    std::fprintf(stderr, "%s", driver::toolUsage("tcc").c_str());
    return 2;
  }

  // Replay mode: re-run the single pass invocation a reproducer bundle
  // recorded, under the bundle's own containment policy, and report
  // whether the same fault fires.  No input file is compiled.
  if (!Inv.ReplayPath.empty()) {
    DiagnosticEngine ReplayDiags;
    pipeline::ReproBundle Bundle;
    if (!pipeline::loadReproBundle(Inv.ReplayPath, Bundle, ReplayDiags)) {
      for (const auto &D : ReplayDiags.diagnostics())
        std::fprintf(stderr, "tcc: %s: %s\n", Inv.ReplayPath.c_str(),
                     D.str().c_str());
      return 2;
    }
    if (!Bundle.Config.empty() &&
        Bundle.Config != driver::configFingerprint(Inv.Opts))
      std::fprintf(stderr,
                   "tcc: warning: bundle '%s' was recorded under a "
                   "different option fingerprint; replaying with the "
                   "current options\n",
                   Inv.ReplayPath.c_str());

    // A fuzz-produced bundle carries the oracle class, the variant spec,
    // and the reduced C source: replay the *whole-program* differential
    // check (-O0 vs. the recorded -passes= spec) and say which oracle it
    // reproduces, instead of re-running a single pass invocation.
    if (!Bundle.Oracle.empty() && !Bundle.CSource.empty()) {
      fuzz::OracleOptions OO;
      if (!Bundle.InjectSpec.empty() && Bundle.InjectSpec != "-")
        OO.FaultInject = Bundle.InjectSpec;
      fuzz::DivergenceClass Want =
          fuzz::divergenceClassFromName(Bundle.Oracle);
      if (Want == fuzz::DivergenceClass::Ok) {
        std::fprintf(stderr,
                     "tcc: %s: unknown oracle class '%s' in fuzz bundle\n",
                     Inv.ReplayPath.c_str(), Bundle.Oracle.c_str());
        return 2;
      }
      fuzz::VariantResult VR =
          fuzz::checkVariant(Bundle.CSource, Bundle.VariantSpec, OO);
      if (VR.FaultPass == "reference") {
        std::fprintf(stderr, "tcc: %s: bundle C source no longer compiles "
                             "at -O0: %s\n",
                     Inv.ReplayPath.c_str(), VR.Detail.c_str());
        return 2;
      }
      const char *Observed = fuzz::divergenceClassName(VR.Class);
      if (VR.Class == Want) {
        std::printf("tcc: replay reproduced the recorded %s oracle "
                    "(pass '%s', -passes=%s): %s\n",
                    Bundle.Oracle.c_str(), Bundle.Pass.c_str(),
                    Bundle.VariantSpec.c_str(), VR.Detail.c_str());
        return 0;
      }
      std::printf("tcc: replay did NOT reproduce the recorded %s oracle "
                  "(pass '%s', -passes=%s); observed: %s%s%s\n",
                  Bundle.Oracle.c_str(), Bundle.Pass.c_str(),
                  Bundle.VariantSpec.c_str(), Observed,
                  VR.Detail.empty() ? "" : " — ", VR.Detail.c_str());
      return 1;
    }
    pipeline::ReplayResult RR = pipeline::replayBundle(
        Bundle, driver::makePipelineOptions(Inv.Opts), ReplayDiags);
    for (const auto &D : ReplayDiags.diagnostics())
      std::fprintf(stderr, "tcc: %s: %s\n", Inv.ReplayPath.c_str(),
                   D.str().c_str());
    if (!RR.Ran)
      return 2;
    if (RR.Reproduced) {
      std::printf("tcc: replay reproduced the recorded %s fault: pass "
                  "'%s' on function '%s' (%s)\n",
                  Bundle.Kind.c_str(), Bundle.Pass.c_str(),
                  Bundle.Function.c_str(), RR.Description.c_str());
      return 0;
    }
    std::printf("tcc: replay did NOT reproduce the recorded %s fault "
                "(pass '%s', function '%s'%s%s)\n",
                Bundle.Kind.c_str(), Bundle.Pass.c_str(),
                Bundle.Function.c_str(),
                RR.Kind.empty() ? "; the pass ran cleanly"
                                : "; observed instead: ",
                RR.Kind.c_str());
    return 1;
  }

  std::ifstream In(Inv.InputPath);
  if (!In) {
    std::fprintf(stderr, "tcc: cannot open '%s'\n", Inv.InputPath.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  // A one-shot session: the hot stores exist but die with the process.
  driver::CompilerSession Session;
  return driver::runToolInvocation(Inv, Buffer.str(), Session, std::cout,
                                   std::cerr);
}
