//===----------------------------------------------------------------------===//
///
/// \file
/// tccd — the persistent compile-server daemon.
///
///   tccd [options]
///
///   -socket=PATH     Unix socket to serve (default ".tccd.sock"; the
///                    TCCD_SOCKET environment variable overrides the
///                    default)
///   -cache=FILE      daemon-owned .tcc-cache manifest (default
///                    ".tcc-cache"; empty disables persistence).
///                    Requests' own -cache= flags are overridden — the
///                    daemon owns cache writes
///   -workers=N       concurrent request limit (default: hardware)
///   -hot-cache-max=N LRU cap on in-memory hot-cache entries (default
///                    4096; 0 = unbounded).  Evicting a finished body
///                    only costs a recompile or manifest re-read
///   -max-queue=N     admission bound: beyond N queued connections, new
///                    ones get an explicit `busy` response with a
///                    retry-after-ms hint (default 256; 0 = unbounded)
///   -request-deadline-ms=N
///                    per-request wall-clock deadline; a request still
///                    running after N ms is killed into an exit-2 error
///                    response (default 30000; 0 = no deadline)
///   -fault-inject=SPEC
///                    daemon-side fault specs (site:unit:kind[:nth],
///                    comma-separated).  The `server-accept` site drops
///                    or delays connections at admission — unit is the
///                    1-based connection ordinal
///   -verbose         per-request log lines on stderr
///
/// Serves tcc compile requests over the length-prefixed JSON protocol.
/// Responses are byte-identical to direct `tcc` runs: the daemon renders
/// requests through the same driver::runToolInvocation().
///
/// SIGTERM drains gracefully: the listener closes, in-flight requests
/// finish (or deadline out), the manifest flushes, a stats line prints,
/// and the daemon exits 0.  SIGINT is the fast stop: in-flight
/// connections close immediately.  kill -9 leaves a stale socket the
/// next start reclaims, and the flock-guarded manifest write-back keeps
/// the cache consistent.  Probe a running daemon with `tcc-client -ping`.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace tcc;

namespace {

server::Server *ActiveServer = nullptr;

void onSignal(int Sig) {
  // Both paths are async-signal-safe: atomic stores plus shutdown/close.
  if (!ActiveServer)
    return;
  if (Sig == SIGTERM)
    ActiveServer->requestDrain(); // Graceful: finish in-flight work.
  else
    ActiveServer->stop(); // Fast: drop everything now.
}

} // namespace

int main(int argc, char **argv) {
  server::ServerOptions Opts;
  if (const char *Env = std::getenv("TCCD_SOCKET"); Env && *Env)
    Opts.SocketPath = Env;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("-socket="));
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg.rfind("-workers=", 0) == 0) {
      Opts.Workers = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-workers=")));
    } else if (Arg.rfind("-hot-cache-max=", 0) == 0) {
      Opts.HotCacheMax = static_cast<size_t>(
          std::atoll(Arg.c_str() + std::strlen("-hot-cache-max=")));
    } else if (Arg.rfind("-max-queue=", 0) == 0) {
      Opts.MaxQueue = static_cast<size_t>(
          std::atoll(Arg.c_str() + std::strlen("-max-queue=")));
    } else if (Arg.rfind("-request-deadline-ms=", 0) == 0) {
      Opts.RequestDeadlineMs = std::atoi(
          Arg.c_str() + std::strlen("-request-deadline-ms="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg == "-verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr,
                   "tccd: unknown option '%s'\n"
                   "usage: tccd [-socket=path] [-cache=file] [-workers=n] "
                   "[-hot-cache-max=n] [-max-queue=n] "
                   "[-request-deadline-ms=n] [-fault-inject=spec] "
                   "[-verbose]\n",
                   Arg.c_str());
      return 2;
    }
  }

  server::Server Daemon(Opts);
  DiagnosticEngine Diags;
  if (!Daemon.start(Diags)) {
    for (const auto &D : Diags.diagnostics())
      std::fprintf(stderr, "tccd: %s\n", D.str().c_str());
    return 1;
  }
  ActiveServer = &Daemon;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A client that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "tccd: serving '%s' (cache: %s)\n",
               Opts.SocketPath.c_str(),
               Opts.CacheFile.empty() ? "<none>" : Opts.CacheFile.c_str());
  Daemon.run();

  // Finish shutdown off the signal path: drain or drop queued work per
  // the flags the handlers set, then join any watchdog zombies.
  Daemon.shutdown();
  std::fprintf(stderr, "tccd: shut down%s: %s\n",
               Daemon.draining() ? " (drained)" : "",
               Daemon.statsLine().c_str());
  return 0;
}
