//===----------------------------------------------------------------------===//
///
/// \file
/// tccd — the persistent compile-server daemon.
///
///   tccd [options]
///
///   -socket=PATH     Unix socket to serve (default ".tccd.sock"; the
///                    TCCD_SOCKET environment variable overrides the
///                    default)
///   -cache=FILE      daemon-owned .tcc-cache manifest (default
///                    ".tcc-cache"; empty disables persistence).
///                    Requests' own -cache= flags are overridden — the
///                    daemon owns cache writes
///   -workers=N       concurrent request limit (default: hardware)
///   -hot-cache-max=N LRU cap on in-memory hot-cache entries (default
///                    4096; 0 = unbounded).  Evicting a finished body
///                    only costs a recompile or manifest re-read
///   -verbose         per-request log lines on stderr
///
/// Serves tcc compile requests over the length-prefixed JSON protocol.
/// Responses are byte-identical to direct `tcc` runs: the daemon renders
/// requests through the same driver::runToolInvocation().  SIGINT or
/// SIGTERM shuts down cleanly (drains in-flight requests, removes the
/// socket file); kill -9 leaves a stale socket the next start reclaims,
/// and the flock-guarded manifest write-back keeps the cache consistent.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace tcc;

namespace {

server::Server *ActiveServer = nullptr;

void onSignal(int) {
  // stop() is async-signal-safe: an atomic store plus shutdown/close.
  if (ActiveServer)
    ActiveServer->stop();
}

} // namespace

int main(int argc, char **argv) {
  server::ServerOptions Opts;
  if (const char *Env = std::getenv("TCCD_SOCKET"); Env && *Env)
    Opts.SocketPath = Env;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("-socket="));
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg.rfind("-workers=", 0) == 0) {
      Opts.Workers = static_cast<unsigned>(
          std::atoi(Arg.c_str() + std::strlen("-workers=")));
    } else if (Arg.rfind("-hot-cache-max=", 0) == 0) {
      Opts.HotCacheMax = static_cast<size_t>(
          std::atoll(Arg.c_str() + std::strlen("-hot-cache-max=")));
    } else if (Arg == "-verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr,
                   "tccd: unknown option '%s'\n"
                   "usage: tccd [-socket=path] [-cache=file] [-workers=n] "
                   "[-hot-cache-max=n] [-verbose]\n",
                   Arg.c_str());
      return 2;
    }
  }

  server::Server Daemon(Opts);
  DiagnosticEngine Diags;
  if (!Daemon.start(Diags)) {
    for (const auto &D : Diags.diagnostics())
      std::fprintf(stderr, "tccd: %s\n", D.str().c_str());
    return 1;
  }
  ActiveServer = &Daemon;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A client that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "tccd: serving '%s' (cache: %s)\n",
               Opts.SocketPath.c_str(),
               Opts.CacheFile.empty() ? "<none>" : Opts.CacheFile.c_str());
  Daemon.run();

  server::ServerStats S = Daemon.stats();
  server::HotCacheStats H = Daemon.hotCache().stats();
  std::fprintf(stderr,
               "tccd: shut down after %llu request%s (%llu error%s, %llu "
               "contained fault%s; hot cache: %llu hit%s, %llu miss%s, "
               "%llu eviction%s)\n",
               static_cast<unsigned long long>(S.Requests),
               S.Requests == 1 ? "" : "s",
               static_cast<unsigned long long>(S.Errors),
               S.Errors == 1 ? "" : "s",
               static_cast<unsigned long long>(S.Faulted),
               S.Faulted == 1 ? "" : "s",
               static_cast<unsigned long long>(H.Hits),
               H.Hits == 1 ? "" : "s",
               static_cast<unsigned long long>(H.Misses),
               H.Misses == 1 ? "" : "es",
               static_cast<unsigned long long>(H.Evictions),
               H.Evictions == 1 ? "" : "s");
  return 0;
}
